//! Workspace root crate: hosts the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`). The library surface
//! simply re-exports the public crates so examples can use one import root.

pub use recstep;
pub use recstep_baselines as baselines;
pub use recstep_bitmatrix as bitmatrix;
pub use recstep_common as common;
pub use recstep_datalog as datalog;
pub use recstep_exec as exec;
pub use recstep_graphgen as graphgen;
pub use recstep_storage as storage;
