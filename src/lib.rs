//! Workspace root crate: hosts the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`). The library surface
//! re-exports the public crates so examples can use one import root.
//!
//! The engine's public API is the Engine / Database / PreparedProgram
//! triple (see `recstep`'s crate docs for the full story and migration
//! notes from the old `RecStep` object):
//!
//! ```
//! use recstep::{Database, Engine};
//!
//! let engine = Engine::builder().threads(2).build().unwrap();
//! let tc = engine
//!     .prepare("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).")
//!     .unwrap();
//! let mut db = Database::new().unwrap();
//! db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
//! tc.run(&mut db).unwrap();
//! assert_eq!(db.relation("tc").unwrap().len(), 3);
//! ```

pub use recstep;
pub use recstep_baselines as baselines;
pub use recstep_bitmatrix as bitmatrix;
pub use recstep_common as common;
pub use recstep_datalog as datalog;
pub use recstep_exec as exec;
pub use recstep_graphgen as graphgen;
pub use recstep_storage as storage;
