//! Differential testing across every engine in the repository: RecStep (in
//! multiple configurations), the set-based semi-naïve baseline, the
//! worklist CFL engine, the BDD engine — all checked against the naïve
//! oracle on generated workloads from every dataset family.

use std::collections::BTreeSet;

use recstep::{Config, Database, Engine, PbmeMode, Value};
use recstep_baselines::bdd;
use recstep_baselines::naive::NaiveEngine;
use recstep_baselines::setbased::SetEngine;
use recstep_baselines::worklist::{grammars, WorklistEngine};
use recstep_graphgen::{as_values, gnp::gnp, program_analysis as pa, rmat::rmat, with_weights};

type Rows = BTreeSet<Vec<Value>>;

fn recstep_rows(cfg: Config, loads: &[(&str, &[(Value, Value)])], src: &str, rel: &str) -> Rows {
    let engine = Engine::from_config(cfg.threads(4)).unwrap();
    let mut db = Database::new().unwrap();
    let mut tx = db.transaction();
    for (name, data) in loads {
        tx.load_edges(name, data).unwrap();
    }
    tx.commit().unwrap();
    engine.prepare(src).unwrap().run(&mut db).unwrap();
    db.relation(rel).unwrap().to_vec().into_iter().collect()
}

fn naive_rows(loads: &[(&str, &[(Value, Value)])], src: &str, rel: &str) -> Rows {
    let mut e = NaiveEngine::new();
    for (name, data) in loads {
        e.load_edges(name, data);
    }
    e.run_source(src).unwrap();
    e.rows(rel).unwrap().iter().cloned().collect()
}

fn setbased_rows(
    parallel: bool,
    loads: &[(&str, &[(Value, Value)])],
    src: &str,
    rel: &str,
) -> Rows {
    let mut e = SetEngine::new(parallel);
    for (name, data) in loads {
        e.load_edges(name, data);
    }
    e.run_source(src).unwrap();
    e.rows(rel).unwrap().iter().cloned().collect()
}

#[test]
fn tc_all_engines_agree_on_gnp() {
    let edges = as_values(&gnp(60, 0.03, 5));
    let loads: &[(&str, &[(Value, Value)])] = &[("arc", &edges)];
    let oracle = naive_rows(loads, recstep::programs::TC, "tc");
    assert_eq!(
        recstep_rows(Config::default(), loads, recstep::programs::TC, "tc"),
        oracle
    );
    assert_eq!(
        recstep_rows(Config::no_op(), loads, recstep::programs::TC, "tc"),
        oracle
    );
    assert_eq!(
        setbased_rows(true, loads, recstep::programs::TC, "tc"),
        oracle
    );
    // Worklist.
    let mut w = WorklistEngine::new(grammars::tc());
    w.load("arc", &edges).unwrap();
    w.run().unwrap();
    let got: Rows = w
        .edges_of("tc")
        .unwrap()
        .into_iter()
        .map(|(a, b)| vec![a, b])
        .collect();
    assert_eq!(got, oracle);
    // BDD.
    let (pairs, _) = bdd::bdd_tc(&edges);
    let got: Rows = pairs.into_iter().map(|(a, b)| vec![a, b]).collect();
    assert_eq!(got, oracle);
}

#[test]
fn sg_engines_agree_on_rmat() {
    let edges = as_values(&rmat(64, 200, 9));
    let loads: &[(&str, &[(Value, Value)])] = &[("arc", &edges)];
    let oracle = naive_rows(loads, recstep::programs::SG, "sg");
    for cfg in [
        Config::default().pbme(PbmeMode::Off),
        Config::default().pbme(PbmeMode::Force),
        Config::no_op(),
    ] {
        assert_eq!(
            recstep_rows(cfg, loads, recstep::programs::SG, "sg"),
            oracle
        );
    }
    assert_eq!(
        setbased_rows(false, loads, recstep::programs::SG, "sg"),
        oracle
    );
}

#[test]
fn andersen_engines_agree_on_generated_input() {
    let input = pa::andersen(80, 3);
    let loads: &[(&str, &[(Value, Value)])] = &[
        ("addressOf", &input.address_of),
        ("assign", &input.assign),
        ("load", &input.load),
        ("store", &input.store),
    ];
    let oracle = naive_rows(loads, recstep::programs::ANDERSEN, "pointsTo");
    assert_eq!(
        recstep_rows(
            Config::default(),
            loads,
            recstep::programs::ANDERSEN,
            "pointsTo"
        ),
        oracle
    );
    assert_eq!(
        setbased_rows(true, loads, recstep::programs::ANDERSEN, "pointsTo"),
        oracle
    );
    let mut w = WorklistEngine::new(grammars::andersen());
    for (name, data) in loads {
        w.load(name, data).unwrap();
    }
    w.run().unwrap();
    let got: Rows = w
        .edges_of("pointsTo")
        .unwrap()
        .into_iter()
        .map(|(a, b)| vec![a, b])
        .collect();
    assert_eq!(got, oracle);
}

#[test]
fn cspa_engines_agree_on_generated_input() {
    let input = pa::cspa(6, 6, 11);
    let loads: &[(&str, &[(Value, Value)])] = &[
        ("assign", &input.assign),
        ("dereference", &input.dereference),
    ];
    for rel in ["valueFlow", "valueAlias", "memoryAlias"] {
        let oracle = naive_rows(loads, recstep::programs::CSPA, rel);
        assert_eq!(
            recstep_rows(Config::default(), loads, recstep::programs::CSPA, rel),
            oracle,
            "recstep {rel}"
        );
        assert_eq!(
            setbased_rows(false, loads, recstep::programs::CSPA, rel),
            oracle,
            "set {rel}"
        );
        let mut w = WorklistEngine::new(grammars::cspa());
        for (name, data) in loads {
            w.load(name, data).unwrap();
        }
        w.run().unwrap();
        let got: Rows = w
            .edges_of(rel)
            .unwrap()
            .into_iter()
            .map(|(a, b)| vec![a, b])
            .collect();
        assert_eq!(got, oracle, "worklist {rel}");
    }
}

#[test]
fn csda_engines_agree_on_generated_chains() {
    let input = pa::csda(4, 60, 13);
    let loads: &[(&str, &[(Value, Value)])] =
        &[("arc", &input.arc), ("nullEdge", &input.null_edge)];
    let oracle = naive_rows(loads, recstep::programs::CSDA, "null");
    assert_eq!(
        recstep_rows(
            Config::default().pbme(PbmeMode::Off),
            loads,
            recstep::programs::CSDA,
            "null"
        ),
        oracle
    );
    // PBME auto mode takes the TC-shaped stratum; results must not change.
    assert_eq!(
        recstep_rows(Config::default(), loads, recstep::programs::CSDA, "null"),
        oracle
    );
    assert_eq!(
        setbased_rows(false, loads, recstep::programs::CSDA, "null"),
        oracle
    );
    let mut w = WorklistEngine::new(grammars::csda());
    for (name, data) in loads {
        w.load(name, data).unwrap();
    }
    w.run().unwrap();
    let got: Rows = w
        .edges_of("null")
        .unwrap()
        .into_iter()
        .map(|(a, b)| vec![a, b])
        .collect();
    assert_eq!(got, oracle);
}

#[test]
fn cc_and_sssp_agree_with_oracle_on_weighted_rmat() {
    let raw = rmat(50, 160, 21);
    let edges = as_values(&raw);
    let loads: &[(&str, &[(Value, Value)])] = &[("arc", &edges)];
    let oracle = naive_rows(loads, recstep::programs::CC, "cc3");
    assert_eq!(
        recstep_rows(Config::default(), loads, recstep::programs::CC, "cc3"),
        oracle
    );
    assert_eq!(
        setbased_rows(false, loads, recstep::programs::CC, "cc3"),
        oracle
    );

    // SSSP (ternary relation: load directly).
    let weighted = with_weights(&raw, 20, 5);
    let engine = Engine::from_config(Config::default().threads(4)).unwrap();
    let mut db = Database::new().unwrap();
    db.load_weighted_edges("arc", &weighted).unwrap();
    db.load_relation("id", 1, &[vec![0]]).unwrap();
    engine
        .prepare(recstep::programs::SSSP)
        .unwrap()
        .run(&mut db)
        .unwrap();
    let got: Rows = db.relation("sssp").unwrap().to_vec().into_iter().collect();
    let mut oracle = NaiveEngine::new();
    oracle.load("arc", weighted.iter().map(|&(a, b, w)| vec![a, b, w]));
    oracle.load("id", [vec![0]]);
    oracle.run_source(recstep::programs::SSSP).unwrap();
    let expect: Rows = oracle.rows("sssp").unwrap().iter().cloned().collect();
    assert_eq!(got, expect);
}

#[test]
fn reach_bdd_agrees() {
    let edges = as_values(&rmat(80, 240, 33));
    let mut oracle = NaiveEngine::new();
    oracle.load_edges("arc", &edges);
    oracle.load("id", [vec![7]]);
    oracle.run_source(recstep::programs::REACH).unwrap();
    let expect: BTreeSet<Value> = oracle.rows("reach").unwrap().iter().map(|r| r[0]).collect();
    let got: BTreeSet<Value> = bdd::bdd_reach(&edges, &[7]).into_iter().collect();
    assert_eq!(got, expect);
    let engine = Engine::from_config(Config::default().threads(4)).unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &edges).unwrap();
    db.load_relation("id", 1, &[vec![7]]).unwrap();
    engine
        .prepare(recstep::programs::REACH)
        .unwrap()
        .run(&mut db)
        .unwrap();
    let got: BTreeSet<Value> = db
        .relation("reach")
        .unwrap()
        .try_decode::<Value>()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn negation_program_agrees() {
    let edges = as_values(&gnp(12, 0.15, 17));
    let loads: &[(&str, &[(Value, Value)])] = &[("arc", &edges)];
    let oracle = naive_rows(loads, recstep::programs::NTC, "ntc");
    assert_eq!(
        recstep_rows(Config::default(), loads, recstep::programs::NTC, "ntc"),
        oracle
    );
    assert_eq!(
        setbased_rows(false, loads, recstep::programs::NTC, "ntc"),
        oracle
    );
}
