//! `docs/flags.md` is checked, not trusted: every public field of
//! `Config`, `EvalStats`, `IndexStats` and `ViewStats` must appear (as `` `name` ``)
//! in the flags table, and every CLI flag the binary parses must be
//! mentioned there and in the binary's usage string — so a new toggle or
//! counter cannot land undocumented.

const FLAGS_MD: &str = include_str!("../docs/flags.md");
const CONFIG_RS: &str = include_str!("../crates/core/src/config.rs");
const STATS_RS: &str = include_str!("../crates/core/src/stats.rs");
const BIN_RS: &str = include_str!("../crates/serve/src/bin/recstep.rs");

/// Public field names of the struct named `name` in `src` (brace-counted,
/// one `pub struct` per name assumed — true for these files).
fn pub_fields(src: &str, name: &str) -> Vec<String> {
    let header = format!("pub struct {name} {{");
    let start = src
        .find(&header)
        .unwrap_or_else(|| panic!("struct {name} not found"))
        + header.len();
    let mut depth = 1usize;
    let mut body_end = start;
    for (i, c) in src[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    body_end = start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &src[start..body_end];
    body.lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("pub ")?;
            let colon = rest.find(':')?;
            let name = rest[..colon].trim();
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
                .then(|| name.to_string())
        })
        .collect()
}

#[test]
fn every_config_field_is_documented() {
    let fields = pub_fields(CONFIG_RS, "Config");
    assert!(fields.len() >= 15, "parsed Config fields: {fields:?}");
    for f in fields {
        assert!(
            FLAGS_MD.contains(&format!("`{f}`")),
            "Config field `{f}` missing from docs/flags.md"
        );
    }
}

#[test]
fn every_stats_field_is_documented() {
    for strukt in ["EvalStats", "IndexStats", "ViewStats"] {
        let fields = pub_fields(STATS_RS, strukt);
        assert!(!fields.is_empty(), "no fields parsed for {strukt}");
        for f in fields {
            assert!(
                FLAGS_MD.contains(&format!("`{f}`")),
                "{strukt} field `{f}` missing from docs/flags.md"
            );
        }
    }
}

#[test]
fn every_cli_flag_is_documented_and_in_usage() {
    // Flags are the string-literal match arms of the binary's parser.
    let mut flags: Vec<String> = Vec::new();
    for line in BIN_RS.lines() {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("\"--") {
            if let Some(end) = rest.find('"') {
                let flag = &rest[..end];
                // Real flags are bare words; skip `println!` literals that
                // merely start with `--` (e.g. the --explain banner).
                if flag.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                    flags.push(format!("--{flag}"));
                }
            }
        }
    }
    assert!(
        flags.len() >= 15,
        "parsed CLI flags from the binary: {flags:?}"
    );
    let usage: String = BIN_RS
        .lines()
        .skip_while(|l| !l.contains("usage: recstep"))
        .take(10)
        .collect();
    for f in &flags {
        if f == "--help" {
            continue; // -h/--help prints the usage itself
        }
        assert!(
            FLAGS_MD.contains(f.as_str()),
            "CLI flag {f} missing from docs/flags.md"
        );
        assert!(
            usage.contains(f.as_str()),
            "CLI flag {f} missing from usage()"
        );
    }
    // The ablation trio the issue calls out must be mentioned together.
    for f in [
        "--no-index-reuse",
        "--no-fused-pipeline",
        "--no-shared-index-cache",
        "--index-cache-budget",
    ] {
        assert!(usage.contains(f), "{f} absent from --help usage");
    }
}
