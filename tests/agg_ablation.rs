//! Group-at-source streaming aggregation acceptance tests and the serial
//! agg bench gate (run directly with `cargo test --test agg_ablation`).
//!
//! Pinned claims:
//!
//! 1. **Fold at source**: on a CC workload with ≥ 20 fixpoint iterations
//!    and the default config, `EvalStats` shows *zero* pre-aggregation
//!    `Rt` merge bytes and a positive `agg_rows_folded_at_source` — every
//!    candidate row of the aggregated heads was absorbed into concurrent
//!    aggregate state at the probe site, never buffered.
//! 2. **Equivalence**: fused-agg and `--no-fused-agg` compute identical
//!    relations on CC (recursive `MIN`), SSSP (recursive `MIN` over
//!    weighted arcs) and GTC (`COUNT` group-by), across random graphs and
//!    in combination with the `fused_pipeline` toggle — and OOF-FA runs
//!    stream too, with their statistics sampled at the sink.
//! 3. **Throughput**: group-at-source is ≥ 1.1× the materializing
//!    aggregation path on a high-duplication CC workload (the `"agg"`
//!    block of `BENCH_pipeline.json` records the trajectory).

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use recstep::{Config, Database, Engine, EvalStats, OofMode, PbmeMode, Value};
use recstep_bench::{pipeline_workload, run_agg_bench};
use recstep_graphgen::gnp::gnp;

/// Serialize all tests in this binary: the bench gate below is a
/// wall-clock measurement and must not compete with the differential
/// tests for cores (cargo already runs test *binaries* sequentially).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

type Rows = BTreeSet<Vec<Value>>;

fn engine(cfg: Config) -> Engine {
    Engine::from_config(cfg.threads(2).pbme(PbmeMode::Off)).unwrap()
}

/// Run `program` over unweighted edges, returning every listed output
/// relation's row set plus the run statistics.
fn run_edges(
    program: &str,
    out_rels: &[&str],
    edges: &[(Value, Value)],
    cfg: Config,
) -> (Vec<Rows>, EvalStats) {
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    let stats = engine(cfg).prepare(program).unwrap().run(&mut db).unwrap();
    let rows = out_rels
        .iter()
        .map(|r| db.relation(r).unwrap().to_vec().into_iter().collect())
        .collect();
    (rows, stats)
}

/// Run SSSP over deterministically weighted edges from source 0.
fn run_sssp(edges: &[(Value, Value)], cfg: Config) -> (Rows, EvalStats) {
    let weighted: Vec<(Value, Value, Value)> = edges
        .iter()
        .map(|&(a, b)| (a, b, (a * 7 + b * 13) % 20 + 1))
        .collect();
    let mut db = Database::new().unwrap();
    db.load_weighted_edges("arc", &weighted).unwrap();
    db.load_relation("id", 1, &[vec![0]]).unwrap();
    let stats = engine(cfg)
        .prepare(recstep::programs::SSSP)
        .unwrap()
        .run(&mut db)
        .unwrap();
    let rows = db.relation("sssp").unwrap().to_vec().into_iter().collect();
    (rows, stats)
}

/// The ≥ 20-iteration acceptance workload (same shape as the pipeline
/// acceptance: dense cluster for duplication, long path for iterations).
fn acceptance_workload() -> Vec<(Value, Value)> {
    pipeline_workload(150, 0.16, 40, 11)
}

#[test]
fn fused_cc_folds_at_source_and_matches_unfused() {
    let _serial = serial();
    let edges = acceptance_workload();
    let rels = ["cc3", "cc2", "cc"];
    let (rows_on, on) = run_edges(recstep::programs::CC, &rels, &edges, Config::default());
    let (rows_off, off) = run_edges(
        recstep::programs::CC,
        &rels,
        &edges,
        Config::default().fused_agg(false),
    );
    assert!(
        on.iterations >= 20,
        "need ≥ 20 iterations, got {}",
        on.iterations
    );
    assert_eq!(rows_on, rows_off, "fused-agg must not change results");

    // Acceptance: nothing materialized a pre-aggregation Rt — every
    // candidate row of the aggregated heads folded at the probe site.
    assert_eq!(on.rt_merge_bytes, 0, "fused run merged pre-agg Rt bytes");
    assert!(on.agg_sink_runs > 0, "aggregated heads must stream");
    assert!(on.agg_rows_folded_at_source > 0);
    assert!(on.agg_groups_improved > 0);
    assert!(
        on.agg_groups_improved < on.agg_rows_folded_at_source,
        "folding at source must compress rows into groups"
    );
    // Both modes evaluate the identical candidate stream.
    assert_eq!(on.tuples_considered, off.tuples_considered);
    // The ablation path really is the materializing one.
    assert_eq!(off.agg_sink_runs, 0);
    assert_eq!(off.agg_rows_folded_at_source, 0);
    assert!(
        off.rt_merge_bytes > 0,
        "--no-fused-agg must materialize the pre-aggregation Rt"
    );
}

#[test]
fn differential_cc_sssp_gtc_agree_across_agg_modes() {
    let _serial = serial();
    for seed in 0..4u64 {
        let n = 24 + (seed as u32) * 8;
        let edges: Vec<(Value, Value)> = gnp(n, 0.09, seed)
            .into_iter()
            .map(|(a, b)| (a as Value, b as Value))
            .collect();
        // CC and GTC: fused, unfused, and fused-agg with the tuple
        // pipeline ablated (the toggles must compose).
        for (program, rels) in [
            (recstep::programs::CC, vec!["cc3", "cc2", "cc"]),
            (recstep::programs::GTC, vec!["gtc", "tc"]),
        ] {
            let (fused, fstats) = run_edges(program, &rels, &edges, Config::default());
            let (unfused, _) =
                run_edges(program, &rels, &edges, Config::default().fused_agg(false));
            let (mixed, _) = run_edges(
                program,
                &rels,
                &edges,
                Config::default().fused_pipeline(false),
            );
            assert_eq!(fused, unfused, "{rels:?} diverge on seed {seed}");
            assert_eq!(
                fused, mixed,
                "{rels:?} diverge with --no-fused-pipeline on seed {seed}"
            );
            assert_eq!(fstats.rt_merge_bytes, 0, "{rels:?} materialized Rt");
            assert!(fstats.agg_sink_runs > 0);
        }
        // SSSP: recursive MIN over a ternary EDB with arithmetic in the
        // aggregate argument.
        let (fused, fstats) = run_sssp(&edges, Config::default());
        let (unfused, _) = run_sssp(&edges, Config::default().fused_agg(false));
        assert_eq!(fused, unfused, "sssp diverges on seed {seed}");
        if !fused.is_empty() {
            assert!(fstats.agg_sink_runs > 0);
        }
    }
}

#[test]
fn oof_fa_streams_aggregated_heads_with_sink_sampled_stats() {
    let _serial = serial();
    let edges = acceptance_workload();
    let rels = ["cc3", "cc2", "cc"];
    let (rows_fa, fa) = run_edges(
        recstep::programs::CC,
        &rels,
        &edges,
        Config::default().oof(OofMode::Full),
    );
    let (rows_default, _) = run_edges(recstep::programs::CC, &rels, &edges, Config::default());
    assert_eq!(rows_fa, rows_default, "OOF-FA changes results");
    // OOF-FA no longer forces the materializing pipeline onto aggregated
    // heads: they stream, and the statistics pass consumed the sink's
    // reservoir instead of a materialized Rt.
    assert!(
        fa.agg_sink_runs > 0,
        "aggregated heads must stream under FA"
    );
    assert!(fa.agg_rows_folded_at_source > 0);
    assert!(
        fa.sink_stat_samples > 0,
        "OOF-FA must sample statistics from the sink"
    );
}

#[test]
fn count_group_by_streams_without_materializing() {
    let _serial = serial();
    let edges = acceptance_workload();
    let (rows_on, on) = run_edges(recstep::programs::GTC, &["gtc"], &edges, Config::default());
    let (rows_off, off) = run_edges(
        recstep::programs::GTC,
        &["gtc"],
        &edges,
        Config::default().fused_agg(false),
    );
    assert_eq!(rows_on, rows_off, "COUNT group-by diverges");
    assert_eq!(on.rt_merge_bytes, 0);
    assert!(on.agg_sink_runs > 0, "the group-by head must stream");
    // One-shot group-by: every result group is emitted as ∆ once.
    assert_eq!(
        on.agg_groups_improved,
        rows_on[0].len(),
        "group count must match the result"
    );
    assert_eq!(off.agg_sink_runs, 0);
}

#[test]
fn engine_level_sum_saturates_instead_of_wrapping() {
    let _serial = serial();
    // Two near-MAX contributions to one group: a wrapping SUM would go
    // negative; the engine must clamp at the i64 boundary (and agree
    // with the materializing path about it).
    let program = "s(x, SUM(y)) :- e(x, y).";
    let big = Value::MAX - 10;
    let rows = vec![vec![1, big], vec![1, big], vec![2, 5]];
    let run = |cfg: Config| -> Rows {
        let mut db = Database::new().unwrap();
        db.load_relation("e", 2, &rows).unwrap();
        engine(cfg).prepare(program).unwrap().run(&mut db).unwrap();
        db.relation("s").unwrap().to_vec().into_iter().collect()
    };
    let expect: Rows = [vec![1, Value::MAX], vec![2, 5]].into_iter().collect();
    assert_eq!(run(Config::default()), expect, "fused SUM must saturate");
    assert_eq!(
        run(Config::default().fused_agg(false)),
        expect,
        "materializing SUM must saturate"
    );
}

#[test]
fn bench_agg_gate_records_at_least_1_1x() {
    let _serial = serial();
    // The CI agg gate: CC over a high-duplication, high-iteration
    // workload (the per-iteration group-by setup the sink eliminates is
    // what the long path amplifies), measured
    // best-of-3 per mode (re-measured best-of-5 on a miss, like the
    // pipeline gate); `RECSTEP_SKIP_SPEEDUP_GATE=1` keeps the record but
    // skips the ratio assertion on heavily loaded machines.
    let edges = pipeline_workload(100, 0.25, 400, 11);
    let mut result = run_agg_bench("cc-cluster100-path400", &edges, 2, 3);
    if result.speedup() < 1.1 {
        result = run_agg_bench("cc-cluster100-path400", &edges, 2, 5);
    }
    if std::env::var_os("RECSTEP_SKIP_SPEEDUP_GATE").is_some() {
        eprintln!(
            "RECSTEP_SKIP_SPEEDUP_GATE set: recorded {:.2}x without asserting",
            result.speedup()
        );
        return;
    }
    assert!(
        result.speedup() >= 1.1,
        "group-at-source aggregation must be ≥ 1.1× the materializing path \
         on the high-duplication CC workload, measured {:.2}× ({:.4}s fused vs \
         {:.4}s unfused over {} folded rows)",
        result.speedup(),
        result.fused_secs,
        result.unfused_secs,
        result.rows_folded_at_source
    );
}
