//! Persistent-index acceptance tests and the rebuild-vs-incremental
//! ablation smoke target (run directly with
//! `cargo test --test index_ablation`).
//!
//! Three claims are pinned down here:
//!
//! 1. **Build-once**: on a transitive-closure fixpoint with ≥ 20
//!    iterations, the full-R dedup/set-difference table is built exactly
//!    once and appended every productive iteration thereafter
//!    (`EvalStats.index` counters).
//! 2. **Ablation**: `index_reuse = off` still reproduces the old
//!    per-iteration rebuild counts, and the reused run never does more
//!    full-table builds than iterations.
//! 3. **Equivalence**: reuse on, reuse off, and the sort-based dedup
//!    baseline compute identical relations on random G(n,p) graphs across
//!    TC, SG and a non-linear TC variant.

use std::collections::BTreeSet;

use recstep::{Config, Database, DedupImpl, Engine, EvalStats, PbmeMode, Value};
use recstep_graphgen::gnp::gnp;

/// Non-linear transitive closure: both recursive atoms read the IDB, so
/// Delta/Old views and the full-R index interact every iteration.
const TC_NONLINEAR: &str = "\
p(x, y) :- arc(x, y).\n\
p(x, y) :- p(x, z), p(z, y).";

fn run(
    program: &str,
    out_rel: &str,
    edges: &[(Value, Value)],
    cfg: Config,
) -> (BTreeSet<Vec<Value>>, EvalStats) {
    let engine = Engine::from_config(cfg.threads(2).pbme(PbmeMode::Off)).unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    let stats = engine.prepare(program).unwrap().run(&mut db).unwrap();
    let rows = db.relation(out_rel).unwrap().to_vec().into_iter().collect();
    (rows, stats)
}

#[test]
fn tc_long_fixpoint_builds_full_table_once_and_appends() {
    // A 25-node path: the recursive stratum runs one iteration per path
    // length, so the whole evaluation exceeds 20 iterations.
    let chain: Vec<(Value, Value)> = (0..24).map(|i| (i, i + 1)).collect();
    let (rows_on, on) = run(
        recstep::programs::TC,
        "tc",
        &chain,
        Config::default().index_reuse(true),
    );
    let (rows_off, off) = run(
        recstep::programs::TC,
        "tc",
        &chain,
        Config::default().index_reuse(false),
    );
    assert_eq!(rows_on, rows_off, "reuse must not change results");
    assert_eq!(rows_on.len(), 24 * 25 / 2);
    assert!(
        on.iterations >= 20,
        "need ≥ 20 iterations, got {}",
        on.iterations
    );

    // Acceptance: the full-R table is built exactly once for the stratum…
    assert_eq!(on.index.full_builds, 1, "full-R index must be built once");
    // …and appended on every productive iteration thereafter (the first
    // iteration lands in the build, the final iteration has an empty ∆R).
    assert!(
        on.index.full_appends >= on.iterations - 4,
        "expected ~one append per iteration, got {} for {} iterations",
        on.index.full_appends,
        on.iterations
    );
    assert!(on.index.append_rows > 0);
    assert!(on.fused_runs > 0, "fused dedup+setdiff must have run");
    assert_eq!(
        on.tpsd_runs, 0,
        "no per-iteration set difference under reuse"
    );

    // The old behaviour is still reproducible: one full-table rebuild per
    // productive iteration, never an append.
    assert!(
        off.index.full_builds >= off.iterations - 4,
        "rebuild path must rebuild per iteration, got {} builds / {} iterations",
        off.index.full_builds,
        off.iterations
    );
    assert_eq!(off.index.full_appends, 0);
    assert_eq!(off.fused_runs, 0);
    assert!(off.opsd_runs + off.tpsd_runs > 0);
}

#[test]
fn ablation_smoke_reused_run_builds_at_most_once_per_iteration() {
    // The CI smoke target: TC on a small G(n,p) graph, reuse on vs. off;
    // the reused run must not build more tables than it runs iterations.
    let edges: Vec<(Value, Value)> = gnp(60, 0.03, 7)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    let (rows_on, on) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().index_reuse(true),
    );
    let (rows_off, off) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().index_reuse(false),
    );
    assert_eq!(rows_on, rows_off);
    assert!(
        on.index.full_builds + on.index.join_builds <= on.iterations,
        "reused run built {} full + {} join tables over {} iterations",
        on.index.full_builds,
        on.index.join_builds,
        on.iterations
    );
    assert!(
        on.index.full_builds < off.index.full_builds.max(2),
        "reuse must build fewer full tables ({} vs {})",
        on.index.full_builds,
        off.index.full_builds
    );
    // Index memory is accounted for.
    assert!(on.index.bytes_peak > 0);
}

#[test]
fn differential_random_graphs_agree_across_modes() {
    // Random small programs over random graphs: persistent indexes, the
    // rebuild path, and the sort-dedup baseline must agree exactly.
    let programs: [(&str, &str); 3] = [
        (recstep::programs::TC, "tc"),
        (recstep::programs::SG, "sg"),
        (TC_NONLINEAR, "p"),
    ];
    for seed in 0..4u64 {
        let n = 24 + (seed as u32) * 7;
        let edges: Vec<(Value, Value)> = gnp(n, 0.06, seed)
            .into_iter()
            .map(|(a, b)| (a as Value, b as Value))
            .collect();
        for (program, out_rel) in programs {
            let (reuse, _) = run(
                program,
                out_rel,
                &edges,
                Config::default().index_reuse(true),
            );
            let (rebuild, _) = run(
                program,
                out_rel,
                &edges,
                Config::default().index_reuse(false),
            );
            let (sorted, _) = run(
                program,
                out_rel,
                &edges,
                Config::default().index_reuse(false).dedup(DedupImpl::Sort),
            );
            assert_eq!(
                reuse,
                rebuild,
                "reuse on/off diverge on {out_rel}, seed {seed}, {} edges",
                edges.len()
            );
            assert_eq!(
                reuse, sorted,
                "reuse vs sort-dedup diverge on {out_rel}, seed {seed}"
            );
        }
    }
}

#[test]
fn negation_and_aggregation_unaffected_by_reuse() {
    // Stratified negation probes cached anti-join tables; recursive
    // aggregation bypasses the fused path entirely. Both must agree with
    // the rebuild configuration.
    let edges: Vec<(Value, Value)> = gnp(18, 0.12, 11)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    // Complement-of-TC uses negation over a cross join.
    let ntc = "\
        node(x, x) :- arc(x, y).\n\
        node(y, y) :- arc(x, y).\n\
        tc(x, y) :- arc(x, y).\n\
        tc(x, y) :- tc(x, z), arc(z, y).\n\
        ntc(x, y) :- node(x, x), node(y, y), !tc(x, y).";
    let (on, _) = run(ntc, "ntc", &edges, Config::default().index_reuse(true));
    let (off, _) = run(ntc, "ntc", &edges, Config::default().index_reuse(false));
    assert_eq!(on, off, "negation results diverge under reuse");

    let (cc_on, _) = run(recstep::programs::CC, "cc3", &edges, Config::default());
    let (cc_off, _) = run(
        recstep::programs::CC,
        "cc3",
        &edges,
        Config::default().index_reuse(false),
    );
    assert_eq!(cc_on, cc_off, "recursive aggregation diverges under reuse");
}
