//! Incremental view maintenance acceptance suite.
//!
//! Pinned claims:
//!
//! 1. **Differential correctness**: over random programs (DAG joins,
//!    linear/non-linear recursion, same-generation, recursive heads with
//!    non-recursive tails) and random insert/delete sequences, a standing
//!    [`MaterializedView`] equals a from-scratch `run_shared` after every
//!    commit (proptest; case count tunable via `RECSTEP_PROPTEST_CASES`
//!    for the CI fast mode).
//! 2. **Failure isolation**: a refresh that errors or panics (injected at
//!    the `view::refresh` failpoint, grammar
//!    `RECSTEP_FAILPOINTS="view::refresh=panic"`) never serves a
//!    half-maintained view — the core view poisons itself and rebuilds,
//!    and the service drops the entry and recreates from scratch.
//! 3. **Ablation**: `--no-incremental` restores the seed service
//!    semantics (recompile + rerun per version bump) exactly.
//! 4. **Throughput**: the `"ivm"` block of `BENCH_pipeline.json` records
//!    scratch-rerun vs incremental-refresh latency; a ~1% insert delta on
//!    the ≥ 20-iteration TC workload must refresh ≥ 10× faster than the
//!    scratch rerun (best-of-5; `RECSTEP_SKIP_SPEEDUP_GATE=1` records
//!    without asserting).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;
use recstep::{Config, Database, MaterializedView, ServeConfig, Value};
use recstep_bench::{pipeline_workload, run_ivm_bench, splice_json_block};
use recstep_common::fail;
use recstep_serve::client::{get, post};
use recstep_serve::Server;

/// Failpoints are process-global and the bench test below takes
/// wall-clock measurements, so every test in this binary serializes.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const TC: &str = "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).";

/// The differential program pool: one entry per maintenance shape.
/// `(source, base relations, derived relations)`.
const PROGRAMS: [(&str, &[&str], &[&str]); 5] = [
    // Linear recursion: seeded inserts, DRed deletes.
    (TC, &["arc"], &["tc"]),
    // Non-linear recursion: both body atoms read the IDB.
    (
        "p(x, y) :- arc(x, y).\np(x, y) :- p(x, z), p(z, y).",
        &["arc"],
        &["p"],
    ),
    // Same generation: repeated base scans plus an inequality filter.
    (
        "sg(x, y) :- arc(p, x), arc(p, y), x != y.\nsg(x, y) :- arc(a, x), sg(a, b), arc(b, y).",
        &["arc"],
        &["sg"],
    ),
    // Stratified DAG over two base relations: counting maintenance with
    // a derived input (`g` reads `h`'s deltas).
    (
        "h(x, y) :- arc(x, z), brc(z, y).\ng(x, y) :- h(x, z), brc(z, y).",
        &["arc", "brc"],
        &["h", "g"],
    ),
    // Recursive cluster plus a counting-maintained tail reading it.
    (
        "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).\n\
         reach2(x, y) :- tc(x, z), arc(z, y).",
        &["arc"],
        &["tc", "reach2"],
    ),
];

fn cases(default: u32) -> u32 {
    std::env::var("RECSTEP_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn rows_sorted(out: &recstep::RunOutput, name: &str) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = out
        .relation(name)
        .map(|h| h.iter_rows().map(|r| r.to_vec()).collect())
        .unwrap_or_default();
    rows.sort();
    rows
}

/// Group `(rel, row)` pairs into the commit shape `/facts` hands a view.
fn group(
    rels: &[&str],
    picks: impl IntoIterator<Item = (usize, Vec<Value>)>,
) -> Vec<(String, Vec<Vec<Value>>)> {
    let mut by_rel: Vec<(String, Vec<Vec<Value>>)> =
        rels.iter().map(|r| (r.to_string(), Vec::new())).collect();
    for (pick, row) in picks {
        by_rel[pick % rels.len()].1.push(row);
    }
    by_rel.retain(|(_, rows)| !rows.is_empty());
    by_rel
}

fn apply_commit(
    db: &mut Database,
    inserts: &[(String, Vec<Vec<Value>>)],
    deletes: &[(String, Vec<Vec<Value>>)],
) {
    let mut tx = db.transaction();
    for (name, rows) in inserts {
        tx.load_rows(name, 2, rows.iter().map(Vec::as_slice))
            .unwrap();
    }
    for (name, rows) in deletes {
        tx.delete_rows(name, 2, rows.iter().map(Vec::as_slice))
            .unwrap();
    }
    tx.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    /// After every random commit, the maintained view equals a
    /// from-scratch shared run — for every program shape in the pool.
    #[test]
    fn maintained_view_equals_scratch_after_every_commit(
        prog_idx in 0usize..PROGRAMS.len(),
        init in proptest::collection::vec((0usize..2, 0i64..10, 0i64..10), 0..25),
        steps in proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(), 0usize..2, 0i64..10, 0i64..10),
                1..10,
            ),
            1..5,
        ),
    ) {
        let _serial = serial();
        let (src, rels, idbs) = PROGRAMS[prog_idx];
        let engine = recstep::Engine::builder().threads(1).build().unwrap();
        let prog = Arc::new(engine.prepare(src).unwrap());

        let mut db = Database::new().unwrap();
        {
            let mut tx = db.transaction();
            for (i, rel) in rels.iter().enumerate() {
                // Every base relation exists with at least one row, so
                // deletes against it and empty-relation edge cases both
                // have a home.
                let mut rows: Vec<Vec<Value>> = vec![vec![0, 1]];
                rows.extend(
                    init.iter()
                        .filter(|(pick, _, _)| pick % rels.len() == i)
                        .map(|&(_, a, b)| vec![a, b]),
                );
                tx.load_rows(rel, 2, rows.iter().map(Vec::as_slice)).unwrap();
            }
            tx.commit().unwrap();
        }

        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        prop_assert!(view.incremental(), "pool programs are all maintainable");
        for step in &steps {
            let inserts = group(
                rels,
                step.iter()
                    .filter(|(is_ins, ..)| *is_ins)
                    .map(|&(_, pick, a, b)| (pick, vec![a, b])),
            );
            let deletes = group(
                rels,
                step.iter()
                    .filter(|(is_ins, ..)| !*is_ins)
                    .map(|&(_, pick, a, b)| (pick, vec![a, b])),
            );
            apply_commit(&mut db, &inserts, &deletes);
            view.refresh(&db, &inserts, &deletes).unwrap();

            let scratch = prog.run_shared(&db).unwrap();
            let out = view.output();
            for rel in idbs {
                prop_assert_eq!(
                    rows_sorted(&out, rel),
                    rows_sorted(&scratch, rel),
                    "program {} diverged on '{}' after {:?}",
                    prog_idx,
                    rel,
                    step
                );
            }
        }
        // The pool exercises real maintenance, not perpetual fallbacks.
        prop_assert_eq!(view.view_stats().view_fallbacks, 0);
    }
}

#[test]
fn panicking_refresh_poisons_the_view_and_rebuilds() {
    let _serial = serial();
    fail::teardown();
    let engine = recstep::Engine::builder().threads(1).build().unwrap();
    let prog = Arc::new(engine.prepare(TC).unwrap());
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();

    let inserts = vec![("arc".to_string(), vec![vec![3, 4]])];
    apply_commit(&mut db, &inserts, &[]);
    fail::cfg("view::refresh", "panic").unwrap();
    let panicked = catch_unwind(AssertUnwindSafe(|| view.refresh(&db, &inserts, &[])));
    fail::teardown();
    assert!(panicked.is_err(), "the armed failpoint must panic");

    // The panic marked the view: even a no-op refresh rebuilds from
    // scratch rather than serving the state that missed the commit.
    view.refresh(&db, &[], &[]).unwrap();
    assert!(view.view_stats().view_fallbacks >= 1);
    let scratch = prog.run_shared(&db).unwrap();
    assert_eq!(
        rows_sorted(&view.output(), "tc"),
        rows_sorted(&scratch, "tc")
    );
    assert_eq!(view.output().row_count("tc"), 6);
}

#[test]
fn erroring_refresh_poisons_the_view_and_rebuilds() {
    let _serial = serial();
    fail::teardown();
    let engine = recstep::Engine::builder().threads(1).build().unwrap();
    let prog = Arc::new(engine.prepare(TC).unwrap());
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();

    let inserts = vec![("arc".to_string(), vec![vec![3, 4]])];
    apply_commit(&mut db, &inserts, &[]);
    fail::cfg("view::refresh", "return_io_err").unwrap();
    let res = view.refresh(&db, &inserts, &[]);
    fail::teardown();
    assert!(res.is_err(), "the armed failpoint must fail the refresh");

    view.refresh(&db, &[], &[]).unwrap();
    assert!(view.view_stats().view_fallbacks >= 1);
    assert_eq!(view.output().row_count("tc"), 6);
}

const TC_JSON: &str = "tc(x, y) :- arc(x, y).\\ntc(x, y) :- tc(x, z), arc(z, y).";

fn counter(body: &str, key: &str) -> i64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap()
}

fn query_body(program: &str) -> String {
    format!("{{\"program\":\"{program}\"}}")
}

#[test]
fn serve_panicking_refresh_never_serves_a_half_maintained_view() {
    let _serial = serial();
    fail::teardown();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default().addr("127.0.0.1:0"),
        db,
    )
    .unwrap();
    let addr = server.addr();

    // Stand a view.
    let (status, body) = post(addr, "/query", &query_body(TC_JSON)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":3"), "{body}");

    // The commit's view refresh panics: the commit itself still succeeds
    // (durability and the base write happened first) and the broken view
    // is dropped, never served.
    fail::cfg("view::refresh", "panic").unwrap();
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"arc\":[[3,4]]}}").unwrap();
    fail::teardown();
    assert_eq!(status, 200, "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(counter(&stats, "panics") >= 1, "{stats}");

    // The next query recreates from scratch at the new version — the
    // stale contents are unreachable.
    let (status, body) = post(addr, "/query", &query_body(TC_JSON)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":6"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");

    // The recreated view maintains normally again.
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"arc\":[[4,5]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(addr, "/query", &query_body(TC_JSON)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":10"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");
    assert!(counter(&stats, "view_refreshes") >= 1, "{stats}");
    assert!(counter(&stats, "view_hits") >= 1, "{stats}");

    server.shutdown();
}

#[test]
fn no_incremental_ablation_restores_recompile_semantics() {
    let _serial = serial();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let server = Server::start(
        Config::default().threads(1).incremental_views(false),
        ServeConfig::default().addr("127.0.0.1:0"),
        db,
    )
    .unwrap();
    let addr = server.addr();

    let (status, body) = post(addr, "/query", &query_body(TC_JSON)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":3"), "{body}");
    // Identical program: the prepared cache answers, no view exists.
    post(addr, "/query", &query_body(TC_JSON)).unwrap();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "prepared_hits"), 1, "{stats}");
    assert_eq!(counter(&stats, "view_hits"), 0, "{stats}");
    assert_eq!(counter(&stats, "view_refreshes"), 0, "{stats}");

    // A commit forces the seed path: recompile + rerun.
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"arc\":[[3,4]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(addr, "/query", &query_body(TC_JSON)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":6"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");
    assert_eq!(counter(&stats, "view_hits"), 0, "{stats}");

    server.shutdown();
}

#[test]
fn bench_ivm_refresh_beats_scratch_and_records() {
    let _serial = serial();
    // The ≥ 20-iteration acceptance workload with a ~1% delta: every
    // 100th edge is held out and committed against the standing view.
    let edges = pipeline_workload(150, 0.16, 40, 11);
    let delta: Vec<(Value, Value)> = edges.iter().copied().step_by(100).collect();
    let held: BTreeSet<(Value, Value)> = delta.iter().copied().collect();
    let base: Vec<(Value, Value)> = edges
        .iter()
        .copied()
        .filter(|e| !held.contains(e))
        .collect();

    let mut tc_insert = run_ivm_bench(
        "tc-cluster150-path40-ins1pct",
        TC,
        "arc",
        "tc",
        &base,
        &delta,
        false,
        2,
        5,
    );
    if tc_insert.speedup() < 10.0 {
        // Wall-clock gates are noise-prone: one re-measure before failing.
        tc_insert = run_ivm_bench(
            "tc-cluster150-path40-ins1pct",
            TC,
            "arc",
            "tc",
            &base,
            &delta,
            false,
            2,
            5,
        );
    }
    let tc_delete = run_ivm_bench(
        "tc-cluster150-path40-del1pct",
        TC,
        "arc",
        "tc",
        &base,
        &delta,
        true,
        2,
        3,
    );
    let sg_edges: Vec<(Value, Value)> = recstep_graphgen::gnp::gnp(40, 0.10, 3)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    let sg_delta: Vec<(Value, Value)> = sg_edges.iter().copied().step_by(40).collect();
    let sg_held: BTreeSet<(Value, Value)> = sg_delta.iter().copied().collect();
    let sg_base: Vec<(Value, Value)> = sg_edges
        .iter()
        .copied()
        .filter(|e| !sg_held.contains(e))
        .collect();
    let sg_insert = run_ivm_bench(
        "sg-gnp40-ins",
        PROGRAMS[2].0,
        "arc",
        "sg",
        &sg_base,
        &sg_delta,
        false,
        2,
        3,
    );

    let block = format!(
        "{{\"tc_insert\": {}, \"tc_delete\": {}, \"sg_insert\": {}}}",
        tc_insert.to_json(),
        tc_delete.to_json(),
        sg_insert.to_json(),
    );
    let out = std::env::var("RECSTEP_BENCH_OUT").unwrap_or_else(|_| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("BENCH_pipeline.json")
            .to_string_lossy()
            .into_owned()
    });
    let path = std::path::PathBuf::from(out);
    splice_json_block(&path, "ivm", &block);
    let json = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"ivm\"",
        "\"tc_insert\"",
        "\"tc_delete\"",
        "\"sg_insert\"",
        "\"scratch_secs\"",
        "\"refresh_secs\"",
        "\"speedup\"",
    ] {
        assert!(json.contains(key), "BENCH_pipeline.json missing {key}");
    }

    if std::env::var_os("RECSTEP_SKIP_SPEEDUP_GATE").is_some() {
        eprintln!(
            "RECSTEP_SKIP_SPEEDUP_GATE set: recorded {:.1}x insert / {:.1}x delete without asserting",
            tc_insert.speedup(),
            tc_delete.speedup()
        );
        return;
    }
    assert!(
        tc_insert.speedup() >= 10.0,
        "a 1% insert delta must refresh ≥ 10× faster than the scratch rerun, \
         measured {:.1}× ({:.4}s refresh vs {:.4}s scratch)",
        tc_insert.speedup(),
        tc_insert.refresh_secs,
        tc_insert.scratch_secs
    );
}
