//! Crash-safety tests for the service's durability layer: exact
//! snapshot + WAL-tail recovery, torn/corrupt-tail truncation, the
//! WAL-before-apply acknowledgement contract under injected faults,
//! snapshot compaction, panic isolation and the client retry policy.
//!
//! Failpoints are process-global, so every test here serializes on
//! [`fp_lock`] — armed points must never leak into a concurrent test's
//! commits.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use recstep::{Config, Database, Durability, ServeConfig};
use recstep_common::fail;
use recstep_serve::client::{get, post, post_with_retry, RetryPolicy};
use recstep_serve::Server;

/// One lock around every test in this file: failpoints are global state.
fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recstep_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter(body: &str, key: &str) -> i64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap()
}

fn seed_db() -> Database {
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    db
}

fn start(dir: &Path, mode: Durability, snapshot_every: u64, db: Database) -> Server {
    Server::start(
        Config::default().threads(1),
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .data_dir(dir.to_str().unwrap())
            .durability(mode)
            .snapshot_every_n_commits(snapshot_every),
        db,
    )
    .unwrap()
}

const TC: &str = "tc(x, y) :- arc(x, y).\\ntc(x, y) :- tc(x, z), arc(z, y).";

fn tc_total(addr: SocketAddr) -> (u16, i64) {
    let (status, body) = post(addr, "/query", &format!("{{\"program\":\"{TC}\"}}")).unwrap();
    if status != 200 {
        return (status, -1);
    }
    (status, counter(&body, "total"))
}

fn insert_arc(addr: SocketAddr, from: i64, to: i64) -> (u16, String) {
    post(
        addr,
        "/facts",
        &format!("{{\"insert\":{{\"arc\":[[{from},{to}]]}}}}"),
    )
    .unwrap()
}

#[test]
fn acked_commits_survive_a_restart_exactly() {
    let _g = fp_lock();
    let dir = tempdir("exact");

    let server = start(&dir, Durability::Commit, 0, seed_db());
    let addr = server.addr();
    // Three acked commits on top of the boot snapshot of the seed facts.
    for (f, t) in [(3, 4), (4, 5), (5, 6)] {
        let (status, body) = insert_arc(addr, f, t);
        assert_eq!(status, 200, "{body}");
    }
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 15, "closure over the chain 1..=6");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 3, "{stats}");
    // The log holds the three commits plus the boot snapshot's barrier;
    // the boot snapshot itself covers the seed facts.
    assert_eq!(counter(&stats, "wal_records"), 4, "{stats}");
    assert!(counter(&stats, "snapshots") >= 1, "{stats}");
    server.shutdown();

    // Restart from an EMPTY database: everything must come from disk.
    let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 3, "{stats}");
    assert_eq!(counter(&stats, "recovered_records"), 3, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 15, "recovered closure identical");
    // The recovered server keeps committing where the old one stopped.
    let (status, body) = insert_arc(addr, 6, 7);
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "data_version"), 4, "{body}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_or_corrupt_wal_tail_truncates_to_the_last_good_commit() {
    let _g = fp_lock();
    let dir = tempdir("torn");

    let server = start(&dir, Durability::Commit, 0, seed_db());
    let addr = server.addr();
    for (f, t) in [(3, 4), (4, 5), (5, 6)] {
        insert_arc(addr, f, t);
    }
    server.shutdown();

    // Tear the last record: chop a few bytes off the log, as a crash
    // mid-write would.
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 5]).unwrap();

    let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 2, "{stats}");
    assert_eq!(counter(&stats, "recovered_records"), 2, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 10, "closure over 1..=5: the torn commit is gone");
    server.shutdown();

    // Now corrupt a byte INSIDE the second record: recovery must truncate
    // from there, keeping only the first commit.
    let bytes = std::fs::read(&log).unwrap();
    assert!(!bytes.is_empty(), "truncated recovery rewrote the log");
    let mut bytes = bytes;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&log, &bytes).unwrap();

    let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    let recovered = counter(&stats, "recovered_records");
    assert!(
        (0..=1).contains(&recovered),
        "corruption mid-log keeps at most the first commit: {stats}"
    );
    assert_eq!(counter(&stats, "data_version"), recovered, "{stats}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_wal_append_is_not_applied_and_not_acked() {
    let _g = fp_lock();
    let dir = tempdir("unacked");

    let server = start(&dir, Durability::Commit, 0, seed_db());
    let addr = server.addr();
    let (status, _) = insert_arc(addr, 3, 4);
    assert_eq!(status, 200);

    // A short write is the cruelest failure: bytes partially hit the
    // disk, the handle is poisoned, the commit must not be acknowledged
    // or applied.
    fail::cfg("wal::short_write", "short_write").unwrap();
    let (status, body) = insert_arc(addr, 4, 5);
    fail::remove("wal::short_write");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("commit not logged"), "{body}");

    // Nothing of the failed commit is visible; the version did not move.
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 6, "closure over 1..=4 only");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 1, "{stats}");
    assert_eq!(counter(&stats, "facts_commits"), 1, "{stats}");

    // The poisoned log refuses further commits until a restart — better
    // loudly unavailable than silently undurable.
    let (status, body) = insert_arc(addr, 4, 5);
    assert_eq!(status, 500, "{body}");
    server.shutdown();

    // Restart: the torn tail truncates away; the acked commit is intact,
    // and the log accepts writes again.
    let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 1, "{stats}");
    let (status, body) = insert_arc(addr, 4, 5);
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "data_version"), 2, "{body}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshots_compact_the_log_and_recover() {
    let _g = fp_lock();
    let dir = tempdir("compact");

    let server = start(&dir, Durability::Commit, 2, seed_db());
    let addr = server.addr();
    for (f, t) in [(3, 4), (4, 5), (5, 6), (6, 7)] {
        let (status, body) = insert_arc(addr, f, t);
        assert_eq!(status, 200, "{body}");
    }
    let (_, stats) = get(addr, "/stats").unwrap();
    // Boot snapshot + one per two commits; after the last compaction the
    // log holds only its barrier record.
    assert_eq!(counter(&stats, "snapshots"), 3, "{stats}");
    assert_eq!(counter(&stats, "wal_records"), 1, "{stats}");
    server.shutdown();

    let server = start(&dir, Durability::Commit, 2, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 4, "{stats}");
    // Everything came back through the snapshot, nothing through replay.
    assert_eq!(counter(&stats, "recovered_records"), 0, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 21, "closure over the chain 1..=7");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Scrape the sorted marker values out of a single-column relation in a
/// `/query` response body (rows render as `[[0],[1],...]`).
fn marks(body: &str, rel: &str) -> Vec<i64> {
    let pat = format!("\"{rel}\":{{\"rows\":[");
    let start = body.find(&pat).unwrap() + pat.len();
    let end = body[start..]
        .find("],\"total\"")
        .map_or(start, |e| start + e);
    let mut got: Vec<i64> = body[start..end]
        .split(|c: char| !c.is_ascii_digit() && c != '-')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    got.sort_unstable();
    got
}

#[test]
fn batch_durability_coalesces_fsyncs_and_survives_a_torn_tail() {
    let _g = fp_lock();
    let dir = tempdir("batch");

    let mut db = Database::new().unwrap();
    db.load_relation("a", 1, &[vec![0i64]]).unwrap();
    db.load_relation("b", 1, &[vec![0i64]]).unwrap();
    let server = start(&dir, Durability::Batch, 5, db);
    let addr = server.addr();
    // Sustained commit load: 23 sequential dual-relation marker commits,
    // every one acknowledged.
    for mark in 1..=23i64 {
        let (status, body) = post(
            addr,
            "/facts",
            &format!("{{\"insert\":{{\"a\":[[{mark}]],\"b\":[[{mark}]]}}}}"),
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(stats.contains("\"mode\":\"batch\""), "{stats}");
    assert_eq!(counter(&stats, "data_version"), 23, "{stats}");
    // Boot snapshot plus one per five commits (versions 5, 10, 15, 20):
    // those are the fsync points batch mode coalesces onto.
    assert_eq!(counter(&stats, "snapshots"), 5, "{stats}");
    // After the version-20 compaction the log holds its barrier plus the
    // three batched commits 21..=23.
    assert_eq!(counter(&stats, "wal_records"), 4, "{stats}");
    server.shutdown();

    // Crash simulation: batch mode may lose the OS-buffered log tail,
    // never a prefix and never anything a snapshot covered. Chop the log
    // in half — wherever the cut lands, recovery keeps some record
    // prefix on top of the fsynced version-20 snapshot.
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() / 2]).unwrap();

    let server = start(&dir, Durability::Batch, 5, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    let version = counter(&stats, "data_version");
    assert!(
        (20..=23).contains(&version),
        "the fsynced snapshot floor holds: {stats}"
    );
    // Exactly the marker prefix up to the recovered version, in BOTH
    // relations: commits acked after an fsync point are recovered, and
    // no commit is ever torn across relations.
    let (status, body) = post(
        addr,
        "/query",
        "{\"program\":\"ra(x) :- a(x).\\nrb(x) :- b(x).\",\"limit\":1000}",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let expect: Vec<i64> = (0..=version).collect();
    assert_eq!(marks(&body, "ra"), expect, "{body}");
    assert_eq!(marks(&body, "rb"), expect, "{body}");
    // The recovered log accepts further batched commits.
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"a\":[[99]],\"b\":[[99]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "data_version"), version + 1, "{body}");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delete_commits_replay_exactly_across_a_restart() {
    let _g = fp_lock();
    let dir = tempdir("delete");

    let server = start(&dir, Durability::Commit, 0, seed_db());
    let addr = server.addr();
    // Pure insert, pure delete, then a mixed commit — the three WAL
    // record shapes `Database::apply_wal_commit` must replay in order.
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"arc\":[[3,4],[4,5]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(addr, "/facts", "{\"delete\":{\"arc\":[[2,3]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(
        addr,
        "/facts",
        "{\"insert\":{\"arc\":[[2,3]]},\"delete\":{\"arc\":[[4,5]]}}",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    // Live arcs: (1,2), (2,3), (3,4) — the chain 1..=4.
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 6, "closure over the chain 1..=4");
    server.shutdown();

    // Restart from an EMPTY database: the deletes must replay through
    // the log exactly — insert-then-delete-then-reinsert ordering and
    // all.
    let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 3, "{stats}");
    assert_eq!(counter(&stats, "recovered_records"), 3, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(
        total, 6,
        "replayed deletes removed exactly the deleted rows"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durability_off_reproduces_the_undurable_server() {
    let _g = fp_lock();
    let dir = tempdir("off");

    let server = start(&dir, Durability::Off, 0, seed_db());
    let addr = server.addr();
    let (status, body) = insert_arc(addr, 3, 4);
    assert_eq!(status, 200, "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(stats.contains("\"mode\":\"off\""), "{stats}");
    assert_eq!(counter(&stats, "wal_records"), 0, "{stats}");
    server.shutdown();
    // Nothing was ever written: no directory, no log, no snapshot.
    assert!(!dir.exists(), "durability off must not touch the data dir");

    // And a restart starts from whatever the process loads — the commit
    // is gone, exactly like the pre-durability server.
    let server = start(&dir, Durability::Off, 0, seed_db());
    let addr = server.addr();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "data_version"), 0, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 3, "seed facts only");
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_fixpoint_is_one_500_not_a_dead_worker() {
    let _g = fp_lock();
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default().addr("127.0.0.1:0"),
        seed_db(),
    )
    .unwrap();
    let addr = server.addr();

    fail::cfg("eval::fixpoint", "panic").unwrap();
    let (status, body) = post(addr, "/query", &format!("{{\"program\":\"{TC}\"}}")).unwrap();
    fail::remove("eval::fixpoint");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("panicked"), "{body}");

    // The worker survived, the permit was released, the server still
    // answers — including the very query that just panicked.
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(counter(&stats, "panics") >= 1, "{stats}");
    let (status, total) = tc_total(addr);
    assert_eq!(status, 200);
    assert_eq!(total, 3);
    server.shutdown();
}

#[test]
fn client_retry_rides_out_shedding_and_refused_connections() {
    let _g = fp_lock();
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .max_concurrent_runs(1)
            .queue_depth(0),
        seed_db(),
    )
    .unwrap();
    let addr = server.addr();

    // Wedge the server, un-wedge it shortly after: the retrying client
    // sees 429 (+ Retry-After) first, then succeeds — one call.
    let sem = server.semaphore();
    let gate = match sem.acquire(Instant::now() + Duration::from_secs(30)) {
        recstep_common::sched::Admission::Admitted(g) => g,
        _ => panic!("test could not take the permit"),
    };
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(gate);
    });
    let policy = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(25),
        max_delay: Duration::from_millis(200),
    };
    let (status, body) =
        post_with_retry(addr, "/query", &format!("{{\"program\":\"{TC}\"}}"), policy).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":3"), "{body}");
    releaser.join().unwrap();

    // A bounded policy gives up and reports the last shed honestly.
    let gate = match sem.acquire(Instant::now() + Duration::from_secs(30)) {
        recstep_common::sched::Admission::Admitted(g) => g,
        _ => panic!("test could not take the permit"),
    };
    let quick = RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
    };
    // The first query left a standing materialized view behind, and view
    // hits answer before admission — the wedged server still serves the
    // cached program.
    let (status, body) = post(addr, "/query", &format!("{{\"program\":\"{TC}\"}}")).unwrap();
    assert_eq!(status, 200, "view hits bypass admission: {body}");
    // A program with no standing view needs a run permit and sheds.
    let fresh = "p(x, y) :- arc(x, y).\\np(x, y) :- p(x, z), p(z, y).";
    let (status, body) = post_with_retry(
        addr,
        "/query",
        &format!("{{\"program\":\"{fresh}\"}}"),
        quick,
    )
    .unwrap();
    assert_eq!(status, 429, "{body}");
    drop(gate);
    server.shutdown();

    // Connection refused (the server is gone) retries, then surfaces the
    // error once the budget is spent.
    let err = post_with_retry(addr, "/query", "{}", quick).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The recovery invariant under random fault injection: an
    /// acknowledged commit is never lost across a restart, and every
    /// commit — acked or not — is all-or-nothing. Each commit writes a
    /// marker row into TWO relations; atomicity means the relations
    /// always agree on which markers exist.
    #[test]
    fn random_crash_points_never_lose_an_acked_commit(sites in proptest::collection::vec(0usize..4, 1..6)) {
        let _g = fp_lock();
        fail::teardown();
        let dir = tempdir("prop");

        let mut db = Database::new().unwrap();
        // Seed both marker relations so programs over them always compile.
        db.load_relation("a", 1, &[vec![0i64]]).unwrap();
        db.load_relation("b", 1, &[vec![0i64]]).unwrap();
        let server = start(&dir, Durability::Commit, 0, db);
        let addr = server.addr();

        let mut acked: Vec<i64> = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let mark = i as i64 + 1;
            match site {
                1 => fail::cfg("wal::before_append", "return_io_err").unwrap(),
                2 => fail::cfg("wal::after_append", "return_io_err").unwrap(),
                3 => fail::cfg("wal::short_write", "short_write").unwrap(),
                _ => {}
            }
            let (status, _) = post(
                addr,
                "/facts",
                &format!("{{\"insert\":{{\"a\":[[{mark}]],\"b\":[[{mark}]]}}}}"),
            )
            .unwrap();
            fail::teardown();
            if status == 200 {
                acked.push(mark);
            }
        }
        server.shutdown();

        // Restart from scratch; only the durable state speaks now.
        let server = start(&dir, Durability::Commit, 0, Database::new().unwrap());
        let addr = server.addr();
        let (status, body) = post(
            addr,
            "/query",
            "{\"program\":\"ra(x) :- a(x).\\nrb(x) :- b(x).\",\"limit\":1000}",
        )
        .unwrap();
        prop_assert_eq!(status, 200, "{}", body);
        let marks = |rel: &str| -> Vec<i64> {
            let pat = format!("\"{rel}\":{{\"rows\":[");
            let start = body.find(&pat).unwrap() + pat.len();
            let end = body[start..]
                .find("],\"total\"")
                .map_or(start, |e| start + e);
            let mut got: Vec<i64> = body[start..end]
                .split(|c: char| !c.is_ascii_digit() && c != '-')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            got.sort_unstable();
            got
        };
        // Single-column rows render as [[0],[1],...]; the digit scrape
        // above recovers the marker set.
        let ra = marks("ra");
        let rb = marks("rb");
        prop_assert_eq!(&ra, &rb, "commits are atomic across relations");
        for m in &acked {
            prop_assert!(ra.contains(m), "acked commit {} lost: {:?}", m, ra);
        }
        let (_, stats) = get(addr, "/stats").unwrap();
        prop_assert_eq!(
            counter(&stats, "data_version") as usize, acked.len(),
            "{}", stats
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
