//! Worst-case optimal join acceptance tests and the serial wcoj bench
//! gate (run directly with `cargo test --test wcoj_ablation`).
//!
//! Pinned claims:
//!
//! 1. **Dispatch**: cyclic rule bodies (triangle enumeration) evaluate
//!    through the generic join under the default config
//!    (`EvalStats::wcoj_runs > 0`) and through the binary join chain
//!    under `--no-wcoj` (`wcoj_runs == 0`), with row-for-row identical
//!    results either way — also composed with `--no-fused-pipeline` and
//!    with residual predicates on the cyclic body.
//! 2. **Inertness**: acyclic bodies (non-linear TC) never dispatch to
//!    the generic join; the flag is a no-op there, proven differentially.
//! 3. **Throughput**: triangle enumeration through the generic join is
//!    ≥ 2× the binary chain *serially* on a G(n,p) workload whose 2-path
//!    intermediate dwarfs both the input and the output (the `"wcoj"`
//!    block of `BENCH_pipeline.json` records the trajectory, and a
//!    re-measured `"agg"` block rides along through the gated splicer).

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use recstep::{Config, Database, Engine, EvalStats, PbmeMode, Value};
use recstep_bench::{
    pipeline_workload, run_agg_bench, run_wcoj_bench, skewed_triangle_workload, splice_json_block,
};
use recstep_graphgen::gnp::gnp;

/// Serialize all tests in this binary: the bench gate below is a
/// wall-clock measurement and must not compete with the differential
/// tests for cores (cargo already runs test *binaries* sequentially).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

type Rows = BTreeSet<Vec<Value>>;

/// Non-linear transitive closure: recursive, but every body is a 2-atom
/// (α-acyclic) join — the planner must never attach a WCOJ plan.
const TC_NONLINEAR: &str = "\
p(x, y) :- arc(x, y).\n\
p(x, y) :- p(x, z), p(z, y).";

/// Triangle enumeration with a residual predicate over the cyclic body
/// (plans WCOJ; `x != z` filters bindings at the leaf).
const TRIANGLE_NE: &str = "t(x, y, z) :- arc(x, y), arc(y, z), arc(x, z), x != z.";

fn run(program: &str, out_rel: &str, edges: &[(Value, Value)], cfg: Config) -> (Rows, EvalStats) {
    let engine = Engine::from_config(cfg.threads(2).pbme(PbmeMode::Off)).unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    let stats = engine.prepare(program).unwrap().run(&mut db).unwrap();
    let rows = db.relation(out_rel).unwrap().to_vec().into_iter().collect();
    (rows, stats)
}

#[test]
fn triangle_wcoj_matches_binary_chain_across_graphs() {
    let _serial = serial();
    for seed in 0..4u64 {
        let n = 40 + (seed as u32) * 20;
        let edges: Vec<(Value, Value)> = gnp(n, 0.08, seed)
            .into_iter()
            .map(|(a, b)| (a as Value, b as Value))
            .collect();
        let (on, on_stats) = run(
            recstep::programs::TRIANGLE,
            "triangle",
            &edges,
            Config::default(),
        );
        let (off, off_stats) = run(
            recstep::programs::TRIANGLE,
            "triangle",
            &edges,
            Config::default().wcoj(false),
        );
        assert_eq!(on, off, "triangle sets diverge on seed {seed}");
        assert!(
            on_stats.wcoj_runs > 0,
            "the cyclic body must dispatch to the generic join"
        );
        assert!(
            !on.is_empty() || on_stats.wcoj_rows_emitted == 0,
            "emitted rows without results on seed {seed}"
        );
        assert_eq!(
            off_stats.wcoj_runs, 0,
            "--no-wcoj must keep the binary join chain"
        );
        assert_eq!(off_stats.wcoj_rows_emitted, 0);
        // The toggles compose: the generic join sinks into the
        // materializing path exactly as it sinks into the fused one.
        let (mixed, mixed_stats) = run(
            recstep::programs::TRIANGLE,
            "triangle",
            &edges,
            Config::default().fused_pipeline(false),
        );
        assert_eq!(on, mixed, "diverges with --no-fused-pipeline");
        assert!(mixed_stats.wcoj_runs > 0);
    }
}

#[test]
fn residual_predicates_filter_wcoj_bindings() {
    let _serial = serial();
    let edges: Vec<(Value, Value)> = gnp(60, 0.08, 7)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    let (on, on_stats) = run(TRIANGLE_NE, "t", &edges, Config::default());
    let (off, _) = run(TRIANGLE_NE, "t", &edges, Config::default().wcoj(false));
    assert_eq!(on, off, "residual-filtered triangles diverge");
    assert!(
        on_stats.wcoj_runs > 0,
        "x != z is a residual, not a scan filter"
    );
    assert!(on.iter().all(|row| row[0] != row[2]));
}

#[test]
fn nonlinear_tc_keeps_binary_plans_and_the_flag_is_inert() {
    let _serial = serial();
    for seed in 0..4u64 {
        let edges: Vec<(Value, Value)> = gnp(30 + (seed as u32) * 10, 0.09, seed)
            .into_iter()
            .map(|(a, b)| (a as Value, b as Value))
            .collect();
        let (on, on_stats) = run(TC_NONLINEAR, "p", &edges, Config::default());
        let (off, off_stats) = run(TC_NONLINEAR, "p", &edges, Config::default().wcoj(false));
        assert_eq!(on, off, "non-linear TC diverges on seed {seed}");
        // 2-atom bodies are α-acyclic: no plan, no dispatch, either way.
        assert_eq!(on_stats.wcoj_runs, 0, "acyclic bodies must stay binary");
        assert_eq!(off_stats.wcoj_runs, 0);
    }
}

#[test]
fn bench_wcoj_json_records_a_speedup_of_at_least_2x() {
    let _serial = serial();
    // The CI bench smoke: triangle enumeration on the degree-skew
    // workload — a G(500, 0.03) background (real triangles) plus a hub
    // whose 1000 in×out spoke pairs are 2-paths that never close, so the
    // binary plan materializes and discards a ~500k-row intermediate the
    // generic join never touches. Measured best-of-3 per mode *serially*
    // (threads = 1 — the gate is about the operator, not morsel
    // scaling). Wall-clock gates are noise-prone, so a miss re-measures
    // once with best-of-5 before failing; `RECSTEP_SKIP_SPEEDUP_GATE=1`
    // keeps the JSON record but skips the ratio assertion (for heavily
    // loaded machines — CI enforces it).
    let edges = skewed_triangle_workload(500, 0.03, 1000, 3);
    let mut result = run_wcoj_bench("triangle-skew-gnp500-hub1000", &edges, 1, 3);
    if result.speedup() < 2.0 {
        result = run_wcoj_bench("triangle-skew-gnp500-hub1000", &edges, 1, 5);
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_pipeline.json");
    // The agg block is re-measured (best-of-5, over the same
    // high-duplication workload its own ≥ 1.1× gate in
    // tests/agg_ablation.rs asserts) and re-spliced alongside: recording
    // both through the gated splicer is what keeps a stale or regressed
    // block from surviving in the committed record.
    let agg = run_agg_bench(
        "cc-cluster100-path400",
        &pipeline_workload(100, 0.25, 400, 11),
        2,
        5,
    );
    splice_json_block(&path, "agg", &agg.to_json());
    splice_json_block(&path, "wcoj", &result.to_json());
    let json = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"wcoj\"",
        "\"triangles\"",
        "\"wcoj_rows_emitted\"",
        "\"wcoj_secs\"",
        "\"binary_secs\"",
        "\"agg\"",
        "\"rows_folded_at_source\"",
    ] {
        assert!(json.contains(key), "BENCH_pipeline.json missing {key}");
    }
    if std::env::var_os("RECSTEP_SKIP_SPEEDUP_GATE").is_some() {
        eprintln!(
            "RECSTEP_SKIP_SPEEDUP_GATE set: recorded {:.2}x without asserting",
            result.speedup()
        );
        return;
    }
    assert!(
        result.speedup() >= 2.0,
        "generic join {:.3}s vs binary chain {:.3}s: {:.2}x < 2x on {} edges",
        result.wcoj_secs,
        result.binary_secs,
        result.speedup(),
        result.edges,
    );
}

#[test]
fn gated_splicer_refuses_regressed_blocks() {
    let _serial = serial();
    // A below-gate "wcoj" block must be refused (panic), not recorded.
    let dir = std::env::temp_dir().join(format!("wcoj-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_gate_probe.json");
    let refused = std::panic::catch_unwind(|| {
        splice_json_block(&path, "wcoj", "{\"speedup\": 1.250}");
    });
    assert!(refused.is_err(), "sub-gate wcoj block must be refused");
    assert!(!path.exists(), "refused block must not be written");
    // Ungated keys and above-gate blocks pass through unchanged.
    splice_json_block(&path, "wcoj", "{\"speedup\": 2.750}");
    splice_json_block(&path, "probe", "{\"speedup\": 0.100}");
    let doc = std::fs::read_to_string(&path).unwrap();
    assert!(doc.contains("\"wcoj\": {\"speedup\": 2.750}"));
    assert!(doc.contains("\"probe\": {\"speedup\": 0.100}"));
    std::fs::remove_dir_all(&dir).ok();
}
