//! Acceptance tests for the shared cross-run index cache (run directly
//! with `cargo test --test cache_shared`).
//!
//! The claims pinned down here:
//!
//! 1. **Build-once across concurrent runs**: N = 4 concurrent
//!    `PreparedProgram::run_shared` evaluations over *one* `Database`
//!    build each frozen EDB join index exactly once — verified through
//!    the `cache_hits` / `cache_misses` stats probe (misses sum to 1,
//!    hits to N − 1), not timing.
//! 2. **Spill-aware eviction**: under memory pressure the engine spills
//!    the shared tier (coldest-first) instead of reporting OOM, and a
//!    later run that needs the evicted index recovers by rebuilding —
//!    a cache miss is the rebuild signal, never a panic.
//! 3. **Ablation**: `--no-shared-index-cache` preserves the per-run
//!    behavior (every run builds, nothing is published), and results are
//!    identical with the cache on and off, fused and unfused.

use std::collections::BTreeSet;

use recstep::{Config, Database, Engine, PbmeMode, Value};

/// An anti-join whose build side is deterministically the EDB `arc` (the
/// negated relation is always the build side), so every run must index it.
const NONADJ: &str = "nonadj(x, y) :- node(x), node(y), !arc(x, y).";

fn db_nodes_arcs(n: Value, arcs: &[(Value, Value)]) -> Database {
    let mut db = Database::new().unwrap();
    let mut tx = db.transaction();
    tx.load_rows(
        "node",
        1,
        (0..n)
            .map(|i| vec![i])
            .collect::<Vec<_>>()
            .iter()
            .map(Vec::as_slice),
    )
    .unwrap();
    tx.load_edges("arc", arcs).unwrap();
    tx.commit().unwrap();
    db
}

fn sorted_pairs(rows: Vec<(Value, Value)>) -> BTreeSet<(Value, Value)> {
    rows.into_iter().collect()
}

fn nonadj_oracle(n: Value, arcs: &[(Value, Value)]) -> BTreeSet<(Value, Value)> {
    let arcs: BTreeSet<(Value, Value)> = arcs.iter().copied().collect();
    let mut out = BTreeSet::new();
    for x in 0..n {
        for y in 0..n {
            if !arcs.contains(&(x, y)) {
                out.insert((x, y));
            }
        }
    }
    out
}

#[test]
fn four_concurrent_shared_runs_build_each_edb_index_exactly_once() {
    const N: usize = 4;
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare(NONADJ).unwrap();
    let arcs: Vec<(Value, Value)> = (0..30).map(|i| (i, (i + 1) % 30)).collect();
    let db = db_nodes_arcs(30, &arcs);

    let outputs: Vec<recstep::RunOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| scope.spawn(|| prog.run_shared(&db).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let oracle = nonadj_oracle(30, &arcs);
    let mut misses = 0;
    let mut hits = 0;
    for out in &outputs {
        assert_eq!(
            sorted_pairs(out.relation("nonadj").unwrap().as_pairs().unwrap()),
            oracle,
            "every concurrent run computes the same complement"
        );
        misses += out.stats().index.cache_misses;
        hits += out.stats().index.cache_hits;
    }
    // The build-once probe: across all N runs, the arc index was built by
    // exactly one of them; every other run reused the published snapshot.
    assert_eq!(misses, 1, "exactly one run builds the EDB join index");
    assert_eq!(hits, N - 1, "every other run hits the shared cache");
    // The database itself is untouched by shared runs.
    assert_eq!(db.row_count("nonadj"), 0);
    assert!(
        db.index_cache().resident_bytes() > 0,
        "index stays published"
    );
}

#[test]
fn sequential_exclusive_runs_share_the_cache_too() {
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare(NONADJ).unwrap();
    let arcs: Vec<(Value, Value)> = (0..20).map(|i| (i, (i + 3) % 20)).collect();
    let mut db = db_nodes_arcs(20, &arcs);

    let first = prog.run(&mut db).unwrap();
    assert_eq!(first.index.cache_misses, 1, "first run builds");
    assert_eq!(first.index.cache_hits, 0);
    // IDB resets bump only the IDB's version; `arc` stays frozen, so the
    // second run probes the published snapshot instead of rebuilding.
    let second = prog.run(&mut db).unwrap();
    assert_eq!(second.index.cache_misses, 0, "second run reuses");
    assert_eq!(second.index.cache_hits, 1);
    // Mutating the EDB bumps its version: the cached snapshot goes stale
    // and the next run rebuilds against fresh data (no stale serving).
    db.load_edges("arc", &[(0, 5)]).unwrap();
    let third = prog.run(&mut db).unwrap();
    assert_eq!(third.index.cache_misses, 1, "stale version misses");
    let arcs_now: Vec<(Value, Value)> = {
        let mut a = arcs.clone();
        a.push((0, 5));
        a
    };
    assert_eq!(
        sorted_pairs(db.relation("nonadj").unwrap().as_pairs().unwrap()),
        nonadj_oracle(20, &arcs_now)
    );
}

#[test]
fn no_shared_index_cache_preserves_per_run_behavior() {
    let engine = Engine::builder()
        .threads(2)
        .shared_index_cache(false)
        .build()
        .unwrap();
    let prog = engine.prepare(NONADJ).unwrap();
    let arcs: Vec<(Value, Value)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
    let mut db = db_nodes_arcs(20, &arcs);
    for _ in 0..2 {
        let stats = prog.run(&mut db).unwrap();
        assert_eq!(stats.index.cache_misses, 0, "no shared-tier traffic");
        assert_eq!(stats.index.cache_hits, 0);
        assert_eq!(stats.index.cache_bytes, 0);
        assert_eq!(stats.index.join_builds, 1, "every run builds locally");
    }
    assert_eq!(db.index_cache().resident_bytes(), 0, "nothing published");
    assert_eq!(
        sorted_pairs(db.relation("nonadj").unwrap().as_pairs().unwrap()),
        nonadj_oracle(20, &arcs)
    );
}

/// Memory pressure mid-run spills the shared tier before reporting OOM:
/// the run that trips the budget check completes after eviction, and a
/// later run needing the evicted index rebuilds it (miss = rebuild
/// signal).
#[test]
fn pressure_spills_cache_and_later_runs_rebuild() {
    // A big unary EDB makes the published anti-join index dominate memory.
    let big_n: Value = 100_000;
    let mut db = Database::new().unwrap();
    {
        let rows: Vec<Vec<Value>> = (0..big_n).map(|i| vec![i]).collect();
        let mut tx = db.transaction();
        tx.load_rows("blocked", 1, rows.iter().map(Vec::as_slice))
            .unwrap();
        tx.load_rows("probe", 1, [vec![big_n + 1]].iter().map(Vec::as_slice))
            .unwrap();
        tx.commit().unwrap();
    }
    db.load_edges("tedge", &[(0, 1), (1, 2), (2, 3)]).unwrap();
    let miss_prog_src = "miss(x) :- probe(x), !blocked(x).";
    let tc_src = "t(x, y) :- tedge(x, y).\nt(x, y) :- t(x, z), tedge(z, y).";

    // Run 1 (ample budget) publishes the `blocked` index into the cache.
    let roomy = Engine::builder().threads(2).build().unwrap();
    let stats1 = roomy.prepare(miss_prog_src).unwrap().run(&mut db).unwrap();
    assert_eq!(stats1.index.cache_misses, 1);
    let cache_bytes = db.index_cache().resident_bytes();
    assert!(cache_bytes > 1 << 20, "index is MB-scale: {cache_bytes}");
    let heap = db.heap_bytes();

    // Run 2: a tiny TC whose budget fits the catalog but *not* catalog +
    // resident cache. The pressure path must evict the (cold, unpinned)
    // snapshot instead of failing with OOM.
    let tight = Engine::builder()
        .threads(2)
        .pbme(PbmeMode::Off)
        .mem_budget(heap + cache_bytes / 2 + (256 << 10))
        .build()
        .unwrap();
    let stats2 = tight.prepare(tc_src).unwrap().run(&mut db).unwrap();
    assert!(
        stats2.index.cache_evictions >= 1,
        "pressure evicted the cache: {:?}",
        stats2.index
    );
    assert_eq!(db.row_count("t"), 6);
    assert_eq!(db.index_cache().resident_bytes(), 0, "snapshot spilled");

    // Run 3: the evicted index is wanted again — the miss is the rebuild
    // signal; the engine rebuilds and answers correctly, no panic.
    let stats3 = roomy.prepare(miss_prog_src).unwrap().run(&mut db).unwrap();
    assert_eq!(stats3.index.cache_misses, 1, "rebuilt after eviction");
    assert_eq!(db.row_count("miss"), 1);
}

/// Explicitly dropping every cache entry between runs (the operator-driven
/// spill) is also just a rebuild signal — regression for callers assuming
/// a published index stays resident.
#[test]
fn explicit_eviction_between_runs_is_survivable() {
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare(NONADJ).unwrap();
    let arcs: Vec<(Value, Value)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
    let mut db = db_nodes_arcs(16, &arcs);
    prog.run(&mut db).unwrap();
    assert!(db.index_cache().resident_bytes() > 0);
    let (evicted, freed) = db.index_cache().evict_all();
    assert!(evicted >= 1 && freed > 0);
    let stats = prog.run(&mut db).unwrap();
    assert_eq!(stats.index.cache_misses, 1, "rebuild, not panic");
    assert_eq!(
        sorted_pairs(db.relation("nonadj").unwrap().as_pairs().unwrap()),
        nonadj_oracle(16, &arcs)
    );
}

/// A deliberately tight `--index-cache-budget`: publishing under it evicts
/// colder entries, every run still completes, and the cache never grows
/// past "the most recent build".
#[test]
fn tight_index_cache_budget_thrashes_but_never_fails() {
    let engine = Engine::builder()
        .threads(2)
        .index_cache_budget(1)
        .build()
        .unwrap();
    let nonadj = engine.prepare(NONADJ).unwrap();
    let complement = engine
        .prepare("far(x, y) :- node(x), node(y), !near(x, y).")
        .unwrap();
    let arcs: Vec<(Value, Value)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
    let mut db = db_nodes_arcs(12, &arcs);
    db.load_edges("near", &arcs).unwrap();

    // Alternate programs so each publish finds the other's (cold) entry.
    let mut evictions = 0;
    for _ in 0..3 {
        evictions += nonadj.run(&mut db).unwrap().index.cache_evictions;
        evictions += complement.run(&mut db).unwrap().index.cache_evictions;
    }
    assert!(evictions >= 5, "1-byte budget keeps evicting: {evictions}");
    assert_eq!(
        sorted_pairs(db.relation("nonadj").unwrap().as_pairs().unwrap()),
        nonadj_oracle(12, &arcs)
    );
}

/// A probe whose values escape any packed key layout must not publish (or
/// repeatedly "hit") a snapshot it can never use: the shared tier is
/// skipped up front and the run falls back to a local hashed build —
/// regression for phantom cache hits + budget squatting.
#[test]
fn escaping_probe_values_skip_the_shared_tier() {
    let mut db = Database::new().unwrap();
    {
        let blocked: Vec<Vec<Value>> = vec![vec![1], vec![2], vec![3]];
        let probe: Vec<Vec<Value>> = vec![vec![Value::MAX], vec![2]];
        let mut tx = db.transaction();
        tx.load_rows("blocked", 1, blocked.iter().map(Vec::as_slice))
            .unwrap();
        tx.load_rows("probe", 1, probe.iter().map(Vec::as_slice))
            .unwrap();
        tx.commit().unwrap();
    }
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare("miss(x) :- probe(x), !blocked(x).").unwrap();
    for run in 0..2 {
        let stats = prog.run(&mut db).unwrap();
        assert_eq!(
            stats.index.cache_misses, 0,
            "run {run}: no unusable snapshot published"
        );
        assert_eq!(stats.index.cache_hits, 0, "run {run}: no phantom hits");
        assert_eq!(stats.index.join_builds, 2, "local build + hashed rebuild");
        assert_eq!(db.index_cache().resident_bytes(), 0, "no budget squatting");
        let got: Vec<Value> = db
            .relation("miss")
            .unwrap()
            .iter_rows()
            .map(|r| r.get(0))
            .collect();
        assert_eq!(got, vec![Value::MAX], "run {run}: anti-join correct");
    }
}

/// A pinned packed snapshot must never be served to a *later* probe that
/// escapes its layout: with two key columns, an escaping low-column value
/// spills into the high column's bits and can alias a legitimate build
/// key exactly — and packed (exact) mode skips tuple re-verification, so
/// a stale pin means wrong join results, not just wasted work. Regression
/// for the admitted-then-escaping sequence across fixpoint iterations.
#[test]
fn pinned_snapshot_is_dropped_when_a_later_probe_escapes() {
    // blocked's layout: col0 in 0..=127 (7 bits), col1 in 0..=1 (1 bit,
    // shift 7). Probe row (128, 0) escapes col0 and packs to
    // 0 + (128 << 0) = 128 — exactly key(0, 1), a real blocked tuple.
    let src = "\
        r(x, y) :- seed(x, y).\n\
        r(x, y) :- keep(a, b), step(a, b, x, y).\n\
        keep(x, y) :- r(x, y), !blocked(x, y).";
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare(src).unwrap();
    let mut db = Database::new().unwrap();
    {
        let mut tx = db.transaction();
        tx.load_edges("seed", &[(1, 0)]).unwrap();
        tx.load_edges("blocked", &[(0, 1), (127, 0)]).unwrap();
        let step = [vec![1, 0, 128, 0]];
        tx.load_rows("step", 4, step.iter().map(Vec::as_slice))
            .unwrap();
        tx.commit().unwrap();
    }
    prog.run(&mut db).unwrap();
    // Iteration k probes (1, 0) in-bounds (snapshot pinned); a later
    // iteration probes (128, 0). Serving the stale pin would alias
    // (128, 0) to blocked (0, 1) and silently drop it from `keep`.
    assert_eq!(
        sorted_pairs(db.relation("keep").unwrap().as_pairs().unwrap()),
        [(1, 0), (128, 0)].into_iter().collect(),
        "escaping probe must fall back to a hashed index, not a stale pin"
    );
}

/// A monotonic-aggregate stratum clears and refills its IDB at stratum
/// end (row ids reassigned); later strata joining that relation must see
/// the refilled rows, not a stale cached index — regression for the
/// per-run JoinCache lifetime.
#[test]
fn agg_refilled_relation_joins_correctly_in_later_strata() {
    // lab: label propagation (recursive MIN) over a 2-cycle plus a tail;
    // odd: anti-joins the *final* lab relation in a later stratum.
    let src = "\
        lab(x, MIN(x)) :- arc(x, _).\n\
        lab(y, MIN(z)) :- lab(x, z), arc(x, y).\n\
        odd(x, y) :- cand(x, y), !lab(x, y).";
    let engine = Engine::builder().threads(2).build().unwrap();
    let prog = engine.prepare(src).unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(2, 1), (1, 2), (2, 3)]).unwrap();
    // lab fixpoint: lab(1,1), lab(2,1), lab(3,1).
    db.load_edges("cand", &[(1, 1), (2, 1), (2, 2), (3, 1), (3, 3)])
        .unwrap();
    prog.run(&mut db).unwrap();
    assert_eq!(
        sorted_pairs(db.relation("lab").unwrap().as_pairs().unwrap()),
        [(1, 1), (2, 1), (3, 1)].into_iter().collect()
    );
    assert_eq!(
        sorted_pairs(db.relation("odd").unwrap().as_pairs().unwrap()),
        [(2, 2), (3, 3)].into_iter().collect(),
        "anti-join must probe the refilled lab, never a stale index"
    );
    // Shared mode composes the same way.
    let out = prog.run_shared(&db).unwrap();
    assert_eq!(
        sorted_pairs(out.relation("odd").unwrap().as_pairs().unwrap()),
        [(2, 2), (3, 3)].into_iter().collect()
    );
}

/// Differential: cache on/off × fused/unfused agree on TC and SG over a
/// random-ish graph, in both exclusive and shared modes.
#[test]
fn cache_modes_are_result_equivalent() {
    let edges: Vec<(Value, Value)> = (0..40)
        .flat_map(|i| [(i, (i * 7 + 3) % 40), (i, (i + 1) % 40)])
        .collect();
    let programs = [recstep::programs::TC, recstep::programs::SG];
    let idbs = ["tc", "sg"];
    for (src, idb) in programs.iter().zip(idbs) {
        let mut reference: Option<BTreeSet<(Value, Value)>> = None;
        for cache_on in [true, false] {
            for fused in [true, false] {
                let cfg = Config::default()
                    .threads(2)
                    .pbme(PbmeMode::Off)
                    .shared_index_cache(cache_on)
                    .fused_pipeline(fused);
                let engine = Engine::from_config(cfg).unwrap();
                let prog = engine.prepare(src).unwrap();
                // Exclusive mode.
                let mut db = Database::new().unwrap();
                db.load_edges("arc", &edges).unwrap();
                prog.run(&mut db).unwrap();
                let got = sorted_pairs(db.relation(idb).unwrap().as_pairs().unwrap());
                // Shared mode over the same database.
                let out = prog.run_shared(&db).unwrap();
                let got_shared = sorted_pairs(out.relation(idb).unwrap().as_pairs().unwrap());
                assert_eq!(got, got_shared, "{idb}: shared ≡ exclusive");
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(
                            &got, want,
                            "{idb}: cache_on={cache_on} fused={fused} differs"
                        );
                    }
                }
            }
        }
    }
}
