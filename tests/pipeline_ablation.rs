//! Fused streaming delta pipeline acceptance tests and the bench smoke
//! target (run directly with `cargo test --test pipeline_ablation`).
//!
//! Pinned claims:
//!
//! 1. **No Rt materialization**: over a ≥ 20-iteration transitive closure
//!    with the fused pipeline on, `EvalStats` shows *zero* `Rt`
//!    column-merge bytes — duplicates die at the probe site — while the
//!    result is row-for-row identical to the `--no-fused-pipeline` run.
//! 2. **Equivalence**: fused, unfused, and the sort-dedup baseline compute
//!    identical relations on random G(n,p) TC / SG / non-linear-TC
//!    programs (plus negation and recursive aggregation sanity).
//! 3. **Throughput**: the emitted `BENCH_pipeline.json` shows fused
//!    ≥ 1.3× unfused candidate tuples/sec on the same workload, recording
//!    the perf trajectory for CI.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

use recstep::{Config, Database, DedupImpl, Engine, EvalStats, PbmeMode, Value};
use recstep_bench::{pipeline_workload, run_agg_bench, run_pipeline_bench};
use recstep_graphgen::gnp::gnp;

/// Every test in this binary takes this lock: the speedup gate below is a
/// wall-clock measurement, and cargo runs test *binaries* sequentially —
/// so serializing within the binary is what gives the timed runs a quiet
/// machine instead of competing with the differential tests for cores.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Non-linear transitive closure: both recursive atoms read the IDB.
const TC_NONLINEAR: &str = "\
p(x, y) :- arc(x, y).\n\
p(x, y) :- p(x, z), p(z, y).";

fn run(
    program: &str,
    out_rel: &str,
    edges: &[(Value, Value)],
    cfg: Config,
) -> (BTreeSet<Vec<Value>>, EvalStats) {
    let engine = Engine::from_config(cfg.threads(2).pbme(PbmeMode::Off)).unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    let stats = engine.prepare(program).unwrap().run(&mut db).unwrap();
    let rows = db.relation(out_rel).unwrap().to_vec().into_iter().collect();
    (rows, stats)
}

/// The ≥ 20-iteration acceptance workload: dense 150-node cluster (high
/// `Rt` duplication — every closure pair is re-derived once per incident
/// edge) plus a 40-edge path (forces ≥ 40 iterations).
fn acceptance_workload() -> Vec<(Value, Value)> {
    pipeline_workload(150, 0.16, 40, 11)
}

#[test]
fn fused_tc_merges_zero_rt_bytes_and_matches_unfused() {
    let _serial = serial();
    let edges = acceptance_workload();
    let (rows_on, on) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().fused_pipeline(true),
    );
    let (rows_off, off) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().fused_pipeline(false),
    );
    assert!(
        on.iterations >= 20,
        "need ≥ 20 iterations, got {}",
        on.iterations
    );
    assert_eq!(rows_on, rows_off, "fusing must not change results");

    // Acceptance: zero Rt column-merge bytes — the UNION-ALL intermediate
    // never materialized; duplicates were dropped at the probe site.
    assert_eq!(on.rt_merge_bytes, 0, "fused run merged Rt bytes");
    assert!(on.pipeline_runs > 0, "streaming pipeline must have run");
    assert!(
        on.rt_rows_skipped_at_source > 0,
        "a TC fixpoint must drop duplicates at source"
    );
    assert_eq!(
        on.rt_bytes_never_materialized,
        on.rt_rows_skipped_at_source * 2 * 8,
        "byte accounting follows the arity-2 row size"
    );
    // Both modes consider the identical candidate stream.
    assert_eq!(on.tuples_considered, off.tuples_considered);
    // The unfused run materialized what the fused run skipped (Rt =
    // fresh + skipped rows, 16 bytes per arity-2 row).
    assert!(off.rt_merge_bytes > 0, "unfused run must materialize Rt");
    assert_eq!(off.pipeline_runs, 0);
    assert_eq!(
        off.rt_merge_bytes,
        off.tuples_considered * 2 * 8,
        "unfused merge bytes cover every candidate row"
    );
    // The full-R index is still built exactly once (PR 2's invariant
    // survives the fusion).
    assert_eq!(on.index.full_builds, 1);
    assert!(on.index.full_appends > 0);
}

#[test]
fn differential_random_graphs_agree_across_pipeline_modes() {
    let _serial = serial();
    let programs: [(&str, &str); 3] = [
        (recstep::programs::TC, "tc"),
        (recstep::programs::SG, "sg"),
        (TC_NONLINEAR, "p"),
    ];
    for seed in 0..4u64 {
        let n = 22 + (seed as u32) * 9;
        let edges: Vec<(Value, Value)> = gnp(n, 0.07, seed)
            .into_iter()
            .map(|(a, b)| (a as Value, b as Value))
            .collect();
        for (program, out_rel) in programs {
            let (fused, fstats) = run(
                program,
                out_rel,
                &edges,
                Config::default().fused_pipeline(true),
            );
            let (unfused, _) = run(
                program,
                out_rel,
                &edges,
                Config::default().fused_pipeline(false),
            );
            let (sorted, _) = run(
                program,
                out_rel,
                &edges,
                Config::default()
                    .fused_pipeline(false)
                    .index_reuse(false)
                    .dedup(DedupImpl::Sort),
            );
            assert_eq!(
                fused,
                unfused,
                "fused vs unfused diverge on {out_rel}, seed {seed}, {} edges",
                edges.len()
            );
            assert_eq!(
                fused, sorted,
                "fused vs sort-dedup diverge on {out_rel}, seed {seed}"
            );
            assert_eq!(fstats.rt_merge_bytes, 0, "{out_rel} fused merged Rt");
        }
    }
}

#[test]
fn negation_and_aggregation_unaffected_by_fusing() {
    let _serial = serial();
    let edges: Vec<(Value, Value)> = gnp(18, 0.12, 5)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    let ntc = "\
        node(x, x) :- arc(x, y).\n\
        node(y, y) :- arc(x, y).\n\
        tc(x, y) :- arc(x, y).\n\
        tc(x, y) :- tc(x, z), arc(z, y).\n\
        ntc(x, y) :- node(x, x), node(y, y), !tc(x, y).";
    let (on, _) = run(ntc, "ntc", &edges, Config::default().fused_pipeline(true));
    let (off, _) = run(ntc, "ntc", &edges, Config::default().fused_pipeline(false));
    assert_eq!(on, off, "negation results diverge under the fused pipeline");

    // Aggregated IDBs stream through their own group-at-source sink
    // (PR 5): under the default config nothing materializes a
    // pre-aggregation Rt, and the results are identical whichever
    // pipeline toggles are off.
    let (cc_on, cc_stats) = run(recstep::programs::CC, "cc3", &edges, Config::default());
    let (cc_off, off_stats) = run(
        recstep::programs::CC,
        "cc3",
        &edges,
        Config::default().fused_pipeline(false),
    );
    assert_eq!(cc_on, cc_off, "recursive aggregation diverges");
    assert_eq!(
        cc_stats.rt_merge_bytes, 0,
        "aggregated heads must fold at source under the default config"
    );
    assert!(cc_stats.agg_sink_runs > 0);
    assert!(cc_stats.agg_rows_folded_at_source > 0);
    assert_eq!(off_stats.pipeline_runs, 0);
    // The ablation flag restores the materializing aggregation path.
    let (cc_unfused_agg, unfused_agg_stats) = run(
        recstep::programs::CC,
        "cc3",
        &edges,
        Config::default().fused_agg(false),
    );
    assert_eq!(cc_on, cc_unfused_agg, "--no-fused-agg diverges");
    assert_eq!(unfused_agg_stats.agg_sink_runs, 0);
    assert!(
        unfused_agg_stats.rt_merge_bytes > 0,
        "the ablation path must materialize the pre-aggregation Rt"
    );
}

#[test]
fn wide_values_overflow_the_packed_sink_without_losing_rows() {
    let _serial = serial();
    // Values escaping any packed layout exercise the overflow path and the
    // one-time hashed index rebuild mid-fixpoint.
    let wide: Value = 1 << 40;
    let edges: Vec<(Value, Value)> = vec![
        (0, 1),
        (1, 2),
        (2, wide),
        (wide, wide + 1),
        (wide + 1, 3),
        (3, 4),
    ];
    let (on, stats) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().fused_pipeline(true),
    );
    let (off, _) = run(
        recstep::programs::TC,
        "tc",
        &edges,
        Config::default().fused_pipeline(false),
    );
    assert_eq!(on, off, "overflow handling diverges");
    assert_eq!(stats.rt_merge_bytes, 0);
}

#[test]
fn bench_pipeline_json_records_a_speedup_of_at_least_1_3x() {
    let _serial = serial();
    // The CI bench smoke: same ≥ 20-iteration workload, measured
    // best-of-3 per mode, recorded as BENCH_pipeline.json. Wall-clock
    // gates are noise-prone, so a miss re-measures once with best-of-5
    // before failing; `RECSTEP_SKIP_SPEEDUP_GATE=1` keeps the JSON
    // record but skips the ratio assertion (for heavily loaded
    // machines — CI leaves it enforced).
    let edges = acceptance_workload();
    let mut result = run_pipeline_bench("tc-cluster150-path40", &edges, 2, 3);
    if result.speedup() < 1.3 {
        result = run_pipeline_bench("tc-cluster150-path40", &edges, 2, 5);
    }
    // The agg block rides along, recorded from the cheap acceptance
    // workload already in hand — the asserted ≥ 1.1× gate lives in
    // tests/agg_ablation.rs over its own heavier workload, so the
    // expensive measurement is not repeated here.
    result.agg = Some(run_agg_bench("cc-cluster150-path40", &edges, 2, 3));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_pipeline.json");
    result.write_json(&path).expect("write BENCH_pipeline.json");
    let json = std::fs::read_to_string(&path).unwrap();
    for key in [
        "\"workload\"",
        "\"fused\"",
        "\"unfused\"",
        "\"tuples_per_sec\"",
        "\"peak_bytes\"",
        "\"rt_rows_skipped_at_source\"",
        "\"speedup\"",
        "\"agg\"",
        "\"rows_folded_at_source\"",
        "\"groups_improved\"",
    ] {
        assert!(json.contains(key), "BENCH_pipeline.json missing {key}");
    }
    if std::env::var_os("RECSTEP_SKIP_SPEEDUP_GATE").is_some() {
        eprintln!(
            "RECSTEP_SKIP_SPEEDUP_GATE set: recorded {:.2}x without asserting",
            result.speedup()
        );
        return;
    }
    assert!(
        result.speedup() >= 1.3,
        "fused pipeline must be ≥ 1.3× unfused on the high-duplication TC \
         workload, measured {:.2}× ({:.4}s fused vs {:.4}s unfused over {} tuples)",
        result.speedup(),
        result.fused_secs,
        result.unfused_secs,
        result.tuples
    );
}
