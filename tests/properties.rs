#![allow(clippy::needless_range_loop, clippy::type_complexity)]
//! Property-based tests (proptest) over the core data structures and
//! cross-engine agreement on random inputs.

use proptest::prelude::*;
use recstep::{Config, Database, Engine, PbmeMode, Value};
use recstep_baselines::naive::NaiveEngine;
use recstep_baselines::setbased::SetEngine;
use recstep_exec::dedup::{deduplicate, DedupImpl};
use recstep_exec::key::KeyLayout;
use recstep_exec::setdiff::{set_difference, DsdState, SetDiffStrategy};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::collections::BTreeSet;

fn edges_strategy(n: Value, max_m: usize) -> impl Strategy<Value = Vec<(Value, Value)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tc_engines_agree(edges in edges_strategy(18, 60)) {
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(recstep::programs::TC).unwrap();
        let expect: BTreeSet<Vec<Value>> =
            oracle.rows("tc").unwrap().iter().cloned().collect();

        let engine = Engine::from_config(Config::default().threads(2)).unwrap();
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &edges).unwrap();
        engine.prepare(recstep::programs::TC).unwrap().run(&mut db).unwrap();
        let got: BTreeSet<Vec<Value>> =
            db.relation("tc").unwrap().to_vec().into_iter().collect();
        prop_assert_eq!(&got, &expect);

        let mut s = SetEngine::new(false);
        s.load_edges("arc", &edges);
        s.run_source(recstep::programs::TC).unwrap();
        let got: BTreeSet<Vec<Value>> = s.rows("tc").unwrap().iter().cloned().collect();
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn sg_pbme_agrees_with_tuples(edges in edges_strategy(16, 50)) {
        let run = |pbme| {
            let engine = Engine::from_config(Config::default().threads(2).pbme(pbme)).unwrap();
            let mut db = Database::new().unwrap();
            db.load_edges("arc", &edges).unwrap();
            engine.prepare(recstep::programs::SG).unwrap().run(&mut db).unwrap();
            db.relation("sg").unwrap().to_vec().into_iter().collect::<BTreeSet<Vec<Value>>>()
        };
        prop_assert_eq!(run(PbmeMode::Off), run(PbmeMode::Force));
    }

    #[test]
    fn cc_monotonic_agg_agrees(edges in edges_strategy(14, 40)) {
        let mut oracle = NaiveEngine::new();
        oracle.load_edges("arc", &edges);
        oracle.run_source(recstep::programs::CC).unwrap();
        let expect: BTreeSet<Vec<Value>> =
            oracle.rows("cc3").unwrap().iter().cloned().collect();
        let engine = Engine::from_config(Config::default().threads(2)).unwrap();
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &edges).unwrap();
        engine.prepare(recstep::programs::CC).unwrap().run(&mut db).unwrap();
        let got: BTreeSet<Vec<Value>> =
            db.relation("cc3").unwrap().to_vec().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn dedup_equals_hashset(rows in proptest::collection::vec((0i64..40, -20i64..20), 0..300)) {
        let ctx = ExecCtx::with_threads(3);
        let mut rel = Relation::new(Schema::with_arity("t", 2));
        for &(a, b) in &rows {
            rel.push_row(&[a, b]);
        }
        let expect: BTreeSet<(Value, Value)> = rows.iter().copied().collect();
        for imp in [DedupImpl::Fast, DedupImpl::Generic, DedupImpl::Sort] {
            let out = deduplicate(&ctx, rel.view(), imp, rows.len());
            let got: BTreeSet<(Value, Value)> = (0..out.cols[0].len())
                .map(|r| (out.cols[0][r], out.cols[1][r]))
                .collect();
            prop_assert_eq!(&got, &expect);
            prop_assert_eq!(out.cols[0].len(), expect.len());
        }
    }

    #[test]
    fn setdiff_algorithms_agree(
        delta in proptest::collection::vec((0i64..30, 0i64..30), 0..120),
        full in proptest::collection::vec((0i64..30, 0i64..30), 0..120),
    ) {
        let ctx = ExecCtx::with_threads(3);
        // Deduplicate delta first (the engine's precondition).
        let dset: BTreeSet<(Value, Value)> = delta.iter().copied().collect();
        let mut drel = Relation::new(Schema::with_arity("d", 2));
        for &(a, b) in &dset {
            drel.push_row(&[a, b]);
        }
        let mut frel = Relation::new(Schema::with_arity("f", 2));
        for &(a, b) in &full {
            frel.push_row(&[a, b]);
        }
        let fset: BTreeSet<(Value, Value)> = full.iter().copied().collect();
        let expect: BTreeSet<(Value, Value)> =
            dset.difference(&fset).copied().collect();
        for strat in [
            SetDiffStrategy::AlwaysOpsd,
            SetDiffStrategy::AlwaysTpsd,
            SetDiffStrategy::Dynamic,
        ] {
            let mut st = DsdState::default();
            let (out, _) = set_difference(&ctx, drel.view(), frel.view(), strat, &mut st);
            let got: BTreeSet<(Value, Value)> =
                (0..out[0].len()).map(|r| (out[0][r], out[1][r])).collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn cck_pack_unpack_roundtrip(
        vals in proptest::collection::vec((-1000i64..1000, 0i64..65536), 1..50)
    ) {
        let bounds = [(-1000i64, 1000i64), (0i64, 65535i64)];
        let layout = KeyLayout::from_bounds(&bounds).unwrap();
        let mut out = Vec::new();
        for &(a, b) in &vals {
            let key = layout.pack(&[a, b]);
            layout.unpack(key, &mut out);
            prop_assert_eq!(&out[..], &[a, b][..]);
        }
        // Distinct tuples get distinct keys.
        let keys: BTreeSet<u64> = vals.iter().map(|&(a, b)| layout.pack(&[a, b])).collect();
        let distinct: BTreeSet<(Value, Value)> = vals.iter().copied().collect();
        prop_assert_eq!(keys.len(), distinct.len());
    }

    #[test]
    fn parser_display_roundtrip(
        arity in 1usize..4,
        n_body in 1usize..4,
    ) {
        // Build a random-shaped but valid rule, render, parse, re-render.
        let vars = ["x", "y", "z"];
        let head_terms: Vec<String> =
            (0..arity).map(|i| vars[i % vars.len()].to_string()).collect();
        let body_atoms: Vec<String> = (0..n_body)
            .map(|i| {
                format!(
                    "b{i}({})",
                    (0..arity).map(|j| vars[(i + j) % vars.len()]).collect::<Vec<_>>().join(", ")
                )
            })
            .collect();
        let src = format!("h({}) :- {}.", head_terms.join(", "), body_atoms.join(", "));
        let prog = recstep::parser::parse(&src).unwrap();
        let rendered = prog.rules[0].display();
        let reparsed = recstep::parser::parse(&rendered).unwrap();
        prop_assert_eq!(&prog.rules[0], &reparsed.rules[0]);
    }

    #[test]
    fn bitmatrix_tc_agrees_with_warshall(edges in edges_strategy(20, 60)) {
        let pool = recstep_common::sched::ThreadPool::new(3);
        let e32: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (a as u32, b as u32)).collect();
        let m = recstep_bitmatrix::tc_closure(&pool, 20, &e32);
        // Warshall oracle.
        let mut reach = vec![[false; 20]; 20];
        for &(s, t) in &e32 {
            reach[s as usize][t as usize] = true;
        }
        for k in 0..20 {
            for i in 0..20 {
                if reach[i][k] {
                    for j in 0..20 {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..20 {
            for j in 0..20 {
                prop_assert_eq!(m.get(i, j), reach[i][j], "({}, {})", i, j);
            }
        }
    }
}
