//! Integration tests for the query service: compile-once under
//! concurrency, request batching, `/facts` invalidation, warmup
//! publication, load shedding and cooperative timeout — all driven
//! deterministically by holding the admission semaphore from the test.

use std::time::{Duration, Instant};

use recstep::{Config, Database, ServeConfig};
use recstep_common::sched::Admission;
use recstep_serve::client::{get, post};
use recstep_serve::Server;

const NEG: &str = "p(x) :- node(x), !blocked(x).";
const TC: &str = "tc(x, y) :- arc(x, y).\\ntc(x, y) :- tc(x, z), arc(z, y).";

fn neg_db() -> Database {
    let mut db = Database::new().unwrap();
    let nodes: Vec<Vec<i64>> = (1..=64).map(|v| vec![v]).collect();
    let blocked: Vec<Vec<i64>> = (1..=64).filter(|v| v % 2 == 1).map(|v| vec![v]).collect();
    db.load_relation("node", 1, &nodes).unwrap();
    db.load_relation("blocked", 1, &blocked).unwrap();
    db
}

/// Pull an integer counter out of a flat JSON body (good enough for the
/// service's deterministic, non-nested-key stats payloads).
fn counter(body: &str, key: &str) -> i64 {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        + pat.len();
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect::<String>()
        .parse()
        .unwrap()
}

fn query_body(program: &str) -> String {
    format!("{{\"program\":\"{program}\"}}")
}

#[test]
fn concurrent_identical_queries_compile_once_and_batch_onto_one_fixpoint() {
    let server = Server::start(
        Config::default().threads(2),
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .max_concurrent_runs(1)
            .queue_depth(8)
            .request_timeout_ms(60_000),
        neg_db(),
    )
    .unwrap();
    let addr = server.addr();

    // Hold the only run permit so the first requester (the leader) parks
    // in the admission queue while every later identical request joins
    // its in-flight batch.
    let sem = server.semaphore();
    let gate = match sem.acquire(Instant::now() + Duration::from_secs(30)) {
        Admission::Admitted(g) => g,
        _ => panic!("test could not take the permit"),
    };

    let clients: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || post(addr, "/query", &query_body(NEG)).unwrap()))
        .collect();

    // Followers are counted as they attach; once all 7 joined, release
    // the leader. Polling /stats keeps the test deterministic without
    // guessing at thread scheduling.
    let patience = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, stats) = get(addr, "/stats").unwrap();
        if counter(&stats, "batch_joins") == 7 {
            break;
        }
        assert!(
            Instant::now() < patience,
            "followers never joined the batch: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(gate);

    let mut batched = 0;
    for c in clients {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"total\":32"), "{body}");
        if body.contains("\"batched\":true") {
            batched += 1;
        }
    }
    assert_eq!(batched, 7, "exactly the 7 followers share the leader's run");

    let (_, stats) = get(addr, "/stats").unwrap();
    // One compile, one fixpoint, one frozen-index build for 8 clients.
    assert_eq!(counter(&stats, "compiles"), 1, "{stats}");
    assert_eq!(counter(&stats, "prepared_hits"), 0, "{stats}");
    assert_eq!(counter(&stats, "cache_misses"), 1, "{stats}");
    assert_eq!(counter(&stats, "shed_count"), 0, "{stats}");
    assert_eq!(counter(&stats, "queries"), 8, "{stats}");

    // A different program over the same EDB reuses the frozen index the
    // batch built: the cross-run cache grows hits, not misses.
    let (status, body) =
        post(addr, "/query", &query_body("q(x) :- node(x), !blocked(x).")).unwrap();
    assert_eq!(status, 200, "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");
    assert_eq!(counter(&stats, "cache_misses"), 1, "{stats}");
    assert!(counter(&stats, "cache_hits") >= 1, "{stats}");

    server.shutdown();
}

#[test]
fn facts_commit_bumps_data_version_and_invalidates_prepared_entries() {
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let server = Server::start(
        Config::default().threads(2),
        ServeConfig::default().addr("127.0.0.1:0"),
        db,
    )
    .unwrap();
    let addr = server.addr();

    let (status, body) = post(addr, "/query", &query_body(TC)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":3"), "{body}");
    // Identical program again: answered by the standing materialized
    // view — no fixpoint, no prepared-cache probe.
    post(addr, "/query", &query_body(TC)).unwrap();
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 1, "{stats}");
    assert_eq!(counter(&stats, "view_hits"), 1, "{stats}");

    // A write moves the data version: inserts + a whole-tuple delete in
    // one transaction.
    let (status, body) = post(
        addr,
        "/facts",
        "{\"insert\":{\"arc\":[[3,4],[9,9]]},\"delete\":{\"arc\":[[9,9]]}}",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(counter(&body, "data_version"), 1, "{body}");

    // The commit refreshed the standing view in place, so the same text
    // is answered at the new version without recompiling or re-running
    // ((1,2),(2,3),(3,4) closes to 6 pairs).
    let (status, body) = post(addr, "/query", &query_body(TC)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":6"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 1, "{stats}");
    assert_eq!(counter(&stats, "view_hits"), 2, "{stats}");
    assert_eq!(counter(&stats, "facts_commits"), 1, "{stats}");
    assert!(counter(&stats, "view_refreshes") >= 1, "{stats}");

    server.shutdown();
}

#[test]
fn facts_commit_invalidates_only_plans_reading_the_written_relations() {
    let mut db = neg_db();
    db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
    let server = Server::start(
        Config::default().threads(2),
        ServeConfig::default().addr("127.0.0.1:0"),
        db,
    )
    .unwrap();
    let addr = server.addr();

    // Two prepared plans over disjoint read sets.
    assert_eq!(post(addr, "/query", &query_body(TC)).unwrap().0, 200);
    assert_eq!(post(addr, "/query", &query_body(NEG)).unwrap().0, 200);
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");

    // Commit to `node` only: the TC program reads `arc`/`tc`, never
    // `node`, so its standing view absorbs the commit as a no-op and
    // still answers directly; the negation plan (ineligible for a view)
    // is stale and recompiles.
    let (status, body) = post(addr, "/facts", "{\"insert\":{\"node\":[[65]]}}").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(post(addr, "/query", &query_body(TC)).unwrap().0, 200);
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 2, "{stats}");
    assert_eq!(counter(&stats, "view_hits"), 1, "{stats}");

    let (status, body) = post(addr, "/query", &query_body(NEG)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"total\":33"),
        "node 65 is unblocked: {body}"
    );
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 3, "{stats}");

    server.shutdown();
}

#[test]
fn warmup_runs_exclusively_and_publishes_idb_indexes() {
    let dir = std::env::temp_dir().join(format!("recstep_warmup_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let warmup = dir.join("warm.datalog");
    std::fs::write(&warmup, format!("{NEG}\n")).unwrap();

    let server = Server::start(
        Config::default().threads(2),
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .warmup(warmup.to_str().unwrap()),
        neg_db(),
    )
    .unwrap();
    let addr = server.addr();

    // Before any client arrives: the warmup compiled and ran, published a
    // full-relation index over its final IDB, and left the shared index
    // cache warm.
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 1, "{stats}");
    assert!(counter(&stats, "published") >= 1, "{stats}");
    assert!(counter(&stats, "entries") >= 1, "{stats}");
    assert!(counter(&stats, "resident_bytes") > 0, "{stats}");

    // The warmup program itself is already prepared: first client request
    // is a prepared-cache hit, no compile, and its frozen-index need is
    // a cache hit against what warmup built.
    let (status, body) = post(addr, "/query", &query_body(NEG)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":32"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "compiles"), 1, "{stats}");
    assert_eq!(counter(&stats, "prepared_hits"), 1, "{stats}");
    assert!(counter(&stats, "cache_hits") >= 1, "{stats}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_overflow_sheds_with_429_and_retry_after() {
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .max_concurrent_runs(1)
            .queue_depth(0),
        neg_db(),
    )
    .unwrap();
    let addr = server.addr();

    let sem = server.semaphore();
    let gate = match sem.acquire(Instant::now() + Duration::from_secs(30)) {
        Admission::Admitted(g) => g,
        _ => panic!("test could not take the permit"),
    };

    // Permit held, zero queue slots: the next leader is shed immediately
    // with the standard backoff signal.
    let (status, head, body) =
        recstep_serve::client::post_full(addr, "/query", &query_body(NEG)).unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    assert!(head.contains("Retry-After:"), "{head}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(counter(&stats, "shed_count") >= 1, "{stats}");

    // Releasing the permit un-wedges the server completely.
    drop(gate);
    let (status, body) = post(addr, "/query", &query_body(NEG)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":32"), "{body}");

    server.shutdown();
}

#[test]
fn expired_deadline_cancels_the_run_and_does_not_poison_the_server() {
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default().addr("127.0.0.1:0"),
        neg_db(),
    )
    .unwrap();
    let addr = server.addr();

    // timeout_ms: 0 — admitted straight away (a permit is free) but the
    // cancel token's deadline has already passed, so the fixpoint aborts
    // at its first iteration boundary with Error::Cancelled.
    let (status, body) = post(
        addr,
        "/query",
        &format!("{{\"program\":\"{NEG}\",\"timeout_ms\":0}}"),
    )
    .unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("cancelled"), "{body}");
    let (_, stats) = get(addr, "/stats").unwrap();
    assert!(counter(&stats, "cancelled_runs") >= 1, "{stats}");
    assert!(counter(&stats, "timeouts") >= 1, "{stats}");

    // The aborted run leaked nothing: the same program with a sane
    // deadline evaluates cleanly on the same server.
    let (status, body) = post(addr, "/query", &query_body(NEG)).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total\":32"), "{body}");

    server.shutdown();
}

#[test]
fn bad_requests_are_clean_errors() {
    let server = Server::start(
        Config::default().threads(1),
        ServeConfig::default().addr("127.0.0.1:0"),
        neg_db(),
    )
    .unwrap();
    let addr = server.addr();

    // Unparsable body, missing field, bad program, unknown relation.
    assert_eq!(post(addr, "/query", "not json").unwrap().0, 400);
    assert_eq!(post(addr, "/query", "{}").unwrap().0, 400);
    assert_eq!(
        post(addr, "/query", "{\"program\":\"p(x :-\"}").unwrap().0,
        400
    );
    let (status, _) = post(
        addr,
        "/query",
        &format!("{{\"program\":\"{NEG}\",\"relation\":\"nope\"}}"),
    )
    .unwrap();
    assert_eq!(status, 404);
    // Facts: ragged rows are rejected atomically (nothing applies).
    let (status, _) = post(addr, "/facts", "{\"insert\":{\"arc\":[[1,2],[3]]}}").unwrap();
    assert_eq!(status, 400);
    let (_, stats) = get(addr, "/stats").unwrap();
    assert_eq!(counter(&stats, "facts_commits"), 0, "{stats}");
    assert_eq!(counter(&stats, "data_version"), 0, "{stats}");

    server.shutdown();
}
