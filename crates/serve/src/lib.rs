//! # recstep-serve — a long-lived query service over the RecStep engine
//!
//! The engine crate's serving story ends at the library boundary:
//! [`recstep::PreparedProgram::run_shared`] lets any number of threads
//! evaluate concurrently over one shared [`recstep::Database`]. This
//! crate turns that primitive into an actual service process:
//!
//! * a minimal HTTP/1.1 front end over `std::net` (no async runtime, no
//!   external dependencies) with four routes — `POST /query`,
//!   `POST /facts`, `GET /stats`, `GET /healthz`;
//! * a **prepared-program cache**: programs compile once per normalized
//!   text, stay fresh while the relations they read are unchanged, and
//!   are LRU-evicted;
//! * **request batching**: identical concurrent queries coalesce onto a
//!   single in-flight fixpoint whose output every requester shares;
//! * **admission control**: a semaphore caps concurrent runs, a bounded
//!   queue absorbs bursts, everything past it is shed with
//!   `429 Retry-After`, and per-request deadlines cancel over-budget
//!   fixpoints cooperatively at iteration boundaries;
//! * **crash-safe durability** (opt-in via `--data-dir`): `/facts`
//!   commits are WAL-logged before they are applied or acknowledged,
//!   snapshots compact the log, and restarts recover
//!   snapshot-then-WAL-tail ([`durability`]);
//! * **panic isolation**: fixpoints and request handlers run under
//!   `catch_unwind`, so a panic is one `500`, not a dead worker.
//!
//! The `recstep` binary lives here too: its classic one-shot evaluation
//! mode is unchanged, and `recstep serve PROGRAM...` starts the service.
//! See [`server::Server`] for the lifecycle and `ARCHITECTURE.md` § "The
//! service layer" for the request walk-through.

#![deny(missing_docs)]

pub mod client;
pub mod durability;
pub mod http;
pub mod json;
pub mod server;

pub use recstep::ServeConfig;
pub use server::{normalize_program, Server};
