//! The `recstep` command-line interface.
//!
//! Two modes share one flag surface:
//!
//! ```text
//! recstep PROGRAM.datalog [OPTIONS]     one-shot evaluation (paper §4)
//! recstep serve [OPTIONS]               long-lived HTTP/JSON query service
//!
//! Options:
//!   --facts DIR       directory with <input>.facts files      [default: .]
//!   --out DIR         directory for <output>.csv files        [default: ./out]
//!   --threads N       worker threads (0 = all cores)          [default: 0]
//!   --budget-mb MB    memory budget                           [default: 8192]
//!   --explain         print the generated SQL and exit
//!   --no-uie | --no-eost | --no-pbme | --oof-na | --oof-fa
//!   --dedup-generic | --setdiff-opsd | --setdiff-tpsd | --no-index-reuse
//!   --no-fused-pipeline | --no-fused-agg | --no-shared-index-cache
//!   --no-wcoj
//!                     turn individual optimizations off (the paper's
//!                     Figure 2 ablation switches, the persistent
//!                     incremental-index toggle, the fused streaming
//!                     delta pipeline toggle, the group-at-source
//!                     streaming aggregation toggle, and the shared
//!                     cross-run index cache toggle)
//!   --index-cache-budget MB
//!                     resident budget of the shared index cache
//!                     [default: 2048]
//!   --stats           print the evaluation statistics report (per-phase
//!                     pipeline timers and shared-cache counters included)
//!
//! Serve-mode options:
//!   --addr HOST:PORT  listen address                 [default: 127.0.0.1:7171]
//!   --max-concurrent-runs N
//!                     evaluations in flight at once             [default: 2]
//!   --queue-depth N   requests allowed to wait for a run permit;
//!                     the rest are shed with 429 Retry-After   [default: 32]
//!   --request-timeout-ms MS
//!                     per-request deadline (queue wait + evaluation;
//!                     over-budget fixpoints are cancelled)  [default: 30000]
//!   --warmup FILE     program evaluated at startup to pre-warm the
//!                     prepared-program and shared index caches (repeat
//!                     for several; their .input facts load from --facts)
//!   --data-dir DIR    durable state directory: /facts commits are
//!                     WAL-logged before they are acknowledged, and a
//!                     restart recovers snapshot + WAL tail from here
//!   --durability MODE off | commit | batch          [default: commit]
//!                     commit fsyncs the WAL on every /facts commit;
//!                     batch defers fsync to snapshots and shutdown;
//!                     off disables the WAL entirely
//!   --snapshot-every-n-commits N
//!                     WAL commits between snapshot + log compaction
//!                     (0 = never snapshot after boot)      [default: 64]
//! ```
//!
//! In serve mode every `<name>.facts` file found in `--facts` is loaded
//! into the database at startup — unless `--data-dir` already holds
//! recovered state, which then takes precedence; clients then POST
//! Datalog programs to `/query` and fact deltas to `/facts` (see
//! `docs/flags.md` and the README quickstart). Fault-injection points
//! for crash testing are armed via the `RECSTEP_FAILPOINTS` environment
//! variable (see `recstep_common::fail`).
//!
//! The program is compiled exactly once (`Engine::prepare`); evaluation
//! and the `--explain` rendering both reuse that compilation. The service
//! keeps that guarantee per program text via its prepared-program cache.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use recstep::io::run_datalog_file;
use recstep::{
    Config, Database, DedupImpl, Engine, OofMode, PbmeMode, ServeConfig, SetDiffStrategy,
};
use recstep_serve::Server;

struct Args {
    program: Option<PathBuf>,
    facts: PathBuf,
    out: PathBuf,
    cfg: Config,
    serve: Option<ServeConfig>,
    explain: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: recstep PROGRAM.datalog [--facts DIR] [--out DIR] [--threads N] \
         [--budget-mb MB] [--explain] [--stats] [--no-uie] [--no-eost] [--no-pbme] \
         [--oof-na] [--oof-fa] [--dedup-generic] [--setdiff-opsd] [--setdiff-tpsd] \
         [--no-index-reuse] [--no-fused-pipeline] [--no-fused-agg] [--no-wcoj] \
         [--no-shared-index-cache] [--index-cache-budget MB] [--no-incremental]\n\
         \x20      recstep serve [--addr HOST:PORT] [--max-concurrent-runs N] \
         [--queue-depth N] [--request-timeout-ms MS] [--warmup FILE]... \
         [--data-dir DIR] [--durability off|commit|batch] \
         [--snapshot-every-n-commits N] [--facts DIR] [engine options]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut program = None;
    let mut facts = PathBuf::from(".");
    let mut out = PathBuf::from("./out");
    let mut cfg = Config::default();
    let mut serve: Option<ServeConfig> = None;
    let mut explain = false;
    let mut stats = false;
    let mut it = std::env::args().skip(1).peekable();
    // Subcommand comes first: `recstep serve [options]`.
    if it.peek().map(String::as_str) == Some("serve") {
        it.next();
        serve = Some(ServeConfig::default());
    }
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--facts" => facts = PathBuf::from(value("--facts")),
            "--out" => out = PathBuf::from(value("--out")),
            "--threads" => cfg.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--budget-mb" => {
                cfg.mem_budget_bytes = value("--budget-mb")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    << 20
            }
            "--explain" => explain = true,
            "--stats" => stats = true,
            "--no-uie" => cfg.uie = false,
            "--no-eost" => cfg.eost = false,
            "--no-pbme" => cfg.pbme = PbmeMode::Off,
            "--oof-na" => cfg.oof = OofMode::None,
            "--oof-fa" => cfg.oof = OofMode::Full,
            "--dedup-generic" => cfg.dedup = DedupImpl::Generic,
            "--setdiff-opsd" => cfg.setdiff = SetDiffStrategy::AlwaysOpsd,
            "--setdiff-tpsd" => cfg.setdiff = SetDiffStrategy::AlwaysTpsd,
            "--no-index-reuse" => cfg.index_reuse = false,
            "--no-fused-pipeline" => cfg.fused_pipeline = false,
            "--no-fused-agg" => cfg.fused_agg = false,
            "--no-wcoj" => cfg.wcoj = false,
            "--no-shared-index-cache" => cfg.shared_index_cache = false,
            "--no-incremental" => cfg.incremental_views = false,
            "--index-cache-budget" => {
                cfg.index_cache_budget_bytes = value("--index-cache-budget")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    << 20
            }
            "--addr" => {
                let v = value("--addr");
                require_serve(&mut serve, "--addr").addr = v;
            }
            "--max-concurrent-runs" => {
                let n: usize = value("--max-concurrent-runs")
                    .parse()
                    .unwrap_or_else(|_| usage());
                require_serve(&mut serve, "--max-concurrent-runs").max_concurrent_runs = n.max(1);
            }
            "--queue-depth" => {
                let n = value("--queue-depth").parse().unwrap_or_else(|_| usage());
                require_serve(&mut serve, "--queue-depth").queue_depth = n;
            }
            "--request-timeout-ms" => {
                let ms = value("--request-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                require_serve(&mut serve, "--request-timeout-ms").request_timeout_ms = ms;
            }
            "--warmup" => {
                let path = value("--warmup");
                require_serve(&mut serve, "--warmup").warmup.push(path);
            }
            "--data-dir" => {
                let dir = value("--data-dir");
                require_serve(&mut serve, "--data-dir").data_dir = Some(dir);
            }
            "--durability" => {
                let v = value("--durability");
                let mode = recstep::Durability::parse(&v).unwrap_or_else(|| {
                    eprintln!("--durability takes off, commit or batch; got {v}");
                    usage()
                });
                require_serve(&mut serve, "--durability").durability = mode;
            }
            "--snapshot-every-n-commits" => {
                let n = value("--snapshot-every-n-commits")
                    .parse()
                    .unwrap_or_else(|_| usage());
                require_serve(&mut serve, "--snapshot-every-n-commits").snapshot_every_n_commits =
                    n;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            other => {
                if program.replace(PathBuf::from(other)).is_some() {
                    eprintln!("multiple program files given");
                    usage();
                }
            }
        }
    }
    if serve.is_none() && program.is_none() {
        usage();
    }
    if serve.is_some() && program.is_some() {
        eprintln!("serve mode takes no program file; use --warmup FILE");
        usage();
    }
    Args {
        program,
        facts,
        out,
        cfg,
        serve,
        explain,
        stats,
    }
}

/// Serve-mode flags reject cleanly outside `recstep serve`.
fn require_serve<'a>(serve: &'a mut Option<ServeConfig>, flag: &str) -> &'a mut ServeConfig {
    match serve {
        Some(s) => s,
        None => {
            eprintln!("{flag} is only valid after `recstep serve`");
            usage()
        }
    }
}

/// Load every `<name>.facts` file in `dir` (arity sniffed from the first
/// fact line; empty files are skipped).
fn preload_facts_dir(db: &mut Database, dir: &Path) -> Result<Vec<(String, usize)>, String> {
    let mut loaded = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(loaded), // missing dir: start empty
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("facts") {
            continue;
        }
        let Some(name) = path
            .file_stem()
            .and_then(|s| s.to_str())
            .map(str::to_string)
        else {
            continue;
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let Some(arity) = text
            .lines()
            .find_map(recstep::parser::parse_fact_line)
            .map(|vals| vals.len())
        else {
            continue;
        };
        let n = recstep::io::load_facts_file(db, &name, arity, &path).map_err(|e| e.to_string())?;
        loaded.push((name, n));
    }
    Ok(loaded)
}

fn serve_main(args: Args, serve: ServeConfig) -> ExitCode {
    let mut db = match Database::new() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    // On a restart with durable state, the snapshot + WAL are the truth;
    // preloading .facts files again would double-apply them on top of the
    // recovered relations. Fresh data dirs still preload (and the initial
    // snapshot then makes the preload itself durable).
    let recovering = serve.durability != recstep::Durability::Off
        && serve
            .data_dir
            .as_ref()
            .is_some_and(|d| recstep::wal::dir_has_state(Path::new(d)));
    if recovering {
        println!(
            "recovering from {} (skipping .facts preload)",
            serve.data_dir.as_deref().unwrap_or_default()
        );
    } else {
        match preload_facts_dir(&mut db, &args.facts) {
            Ok(loaded) => {
                for (name, rows) in &loaded {
                    println!("loaded {name}: {rows} facts");
                }
            }
            Err(e) => {
                eprintln!("recstep: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let server = match Server::start(args.cfg, serve, db) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("recstep-serve listening on http://{}", server.addr());
    // Serve until the process is killed (the CI smoke test and systemd
    // both stop us with a signal; there is no in-band shutdown route).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(serve) = args.serve.clone() {
        return serve_main(args, serve);
    }
    let program = args.program.clone().expect("checked in parse_args");
    let src = match std::fs::read_to_string(&program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("recstep: cannot read {}: {e}", program.display());
            return ExitCode::FAILURE;
        }
    };
    // --explain only renders SQL: compile without spawning any workers.
    let engine = {
        let mut cfg = args.cfg;
        if args.explain {
            cfg.threads = 1;
        }
        match Engine::from_config(cfg) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("recstep: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Compile once; --explain and evaluation both reuse this.
    let prepared = match engine.prepare(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain {
        println!(
            "-- index_reuse: {}",
            if engine.config().index_reuse {
                "on (persistent incremental indexes)"
            } else {
                "off (per-iteration rebuild)"
            }
        );
        println!(
            "-- fused_pipeline: {}",
            if engine.config().fused_pipeline {
                "on (dedup/set-difference at the join probe; Rt never materialized)"
            } else {
                "off (materialize Rt, absorb in a second pass)"
            }
        );
        println!(
            "-- fused_agg: {}",
            if engine.config().fused_agg {
                "on (aggregated heads group at source; pre-agg Rt never materialized)"
            } else {
                "off (group over a materialized pre-aggregation Rt)"
            }
        );
        println!(
            "-- shared_index_cache: {}",
            if engine.config().shared_index_cache {
                "on (frozen-relation join indexes shared across runs)"
            } else {
                "off (per-run indexes)"
            }
        );
        println!("{}", prepared.explain_sql());
        return ExitCode::SUCCESS;
    }
    let mut db = match Database::new() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_datalog_file(&prepared, &mut db, &args.facts, &args.out) {
        Ok((stats_out, written)) => {
            for (name, rows) in &written {
                println!("{name}: {rows} rows -> {}/{name}.csv", args.out.display());
            }
            if args.stats {
                println!("\nstrata: {}", stats_out.strata.len());
                println!("iterations: {}", stats_out.iterations);
                println!("queries issued: {}", stats_out.queries_issued);
                println!("tuples considered: {}", stats_out.tuples_considered);
                println!(
                    "set difference: {} OPSD / {} TPSD / {} fused ({} streaming)",
                    stats_out.opsd_runs,
                    stats_out.tpsd_runs,
                    stats_out.fused_runs,
                    stats_out.pipeline_runs
                );
                println!(
                    "fused pipeline: {} rows skipped at source, {} bytes never \
                     materialized; rt merge bytes: {}",
                    stats_out.rt_rows_skipped_at_source,
                    stats_out.rt_bytes_never_materialized,
                    stats_out.rt_merge_bytes
                );
                println!(
                    "streaming aggregation: {} sink passes, {} rows folded at \
                     source, {} groups improved, {} sampled stat rows",
                    stats_out.agg_sink_runs,
                    stats_out.agg_rows_folded_at_source,
                    stats_out.agg_groups_improved,
                    stats_out.sink_stat_samples
                );
                println!(
                    "worst-case optimal joins: {} runs, {} rows emitted",
                    stats_out.wcoj_runs, stats_out.wcoj_rows_emitted
                );
                println!(
                    "index tables: {} full builds / {} appends / {} scratch; \
                     joins {} built / {} appended / {} reused; peak {} bytes",
                    stats_out.index.full_builds,
                    stats_out.index.full_appends,
                    stats_out.index.scratch_builds,
                    stats_out.index.join_builds,
                    stats_out.index.join_appends,
                    stats_out.index.join_reuses,
                    stats_out.index.bytes_peak
                );
                println!(
                    "shared index cache: {} hits / {} misses / {} evictions; \
                     {} resident bytes ({} published)",
                    stats_out.index.cache_hits,
                    stats_out.index.cache_misses,
                    stats_out.index.cache_evictions,
                    stats_out.index.cache_bytes,
                    stats_out.index.published
                );
                println!("peak bytes (engine estimate): {}", stats_out.peak_bytes);
                println!(
                    "io: {} bytes in {} flushes",
                    stats_out.io_bytes, stats_out.io_flushes
                );
                println!("pbme: {}", stats_out.strata.iter().any(|s| s.pbme));
                let p = &stats_out.phase;
                println!(
                    "phase: pipeline {:?} / eval {:?} / dedup {:?} / setdiff {:?} / \
                     aggregate {:?} / merge {:?} / analyze {:?} / index {:?} / io {:?} / \
                     pbme {:?}",
                    p.pipeline,
                    p.eval,
                    p.dedup,
                    p.setdiff,
                    p.aggregate,
                    p.merge,
                    p.analyze,
                    p.index,
                    p.io,
                    p.pbme
                );
                println!("total: {:?}", stats_out.total);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("recstep: {e}");
            ExitCode::FAILURE
        }
    }
}
