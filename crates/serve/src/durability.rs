//! Service-side durability: the WAL + snapshot state behind `/facts`.
//!
//! [`DurabilityState`] wires [`recstep::wal`] into the server: it recovers
//! snapshot-then-WAL-tail at startup (exactly reconstructing
//! `data_version`), logs every `/facts` commit *before* it is applied and
//! acknowledged, and compacts the log by snapshotting after every
//! [`recstep::ServeConfig::snapshot_every_n_commits`] logged commits.

use std::path::{Path, PathBuf};

use recstep::wal::{self, Durability, Wal, WalBatch, WalCommit, WalRecord};
use recstep::{Database, Result, Value};

/// Durability counters surfaced as the `/stats` `"durability"` block.
pub struct DurabilityStats {
    /// Records currently in the log (since the last compaction).
    pub wal_records: u64,
    /// Valid bytes currently in the log.
    pub wal_bytes: u64,
    /// Snapshots written since this process started (including the
    /// first-boot snapshot of a fresh data dir).
    pub snapshots: u64,
    /// WAL commits replayed into the database at startup.
    pub recovered_records: u64,
}

/// The server's handle on its durable state. All methods are called with
/// the database write lock held (commits) or before the server starts
/// (recovery), so the WAL never sees interleaved commits.
pub struct DurabilityState {
    wal: Wal,
    dir: PathBuf,
    mode: Durability,
    snapshot_every: u64,
    commits_since_snapshot: u64,
    snapshots: u64,
    recovered_records: u64,
}

impl DurabilityState {
    /// Recover durable state from `dir` into `db` and open the WAL for
    /// appending. Returns the state plus the recovered `data_version`.
    ///
    /// Recovery order: load the snapshot (if any), then replay every WAL
    /// commit with a version beyond the snapshot's through a regular
    /// transaction. On a fresh data dir an initial snapshot is written
    /// immediately, so facts loaded outside the WAL (the binary's
    /// `.facts` preload, programmatic loads before `Server::start`)
    /// survive a crash too.
    pub fn open(
        dir: &Path,
        mode: Durability,
        snapshot_every: u64,
        db: &mut Database,
    ) -> Result<(Self, u64)> {
        std::fs::create_dir_all(dir)?;
        let snap = wal::read_snapshot(dir)?;
        let had_snapshot = snap.is_some();
        let mut version = 0u64;
        if let Some(s) = snap {
            version = s.version;
            let mut tx = db.transaction();
            for t in &s.tables {
                if t.arity == 0 {
                    continue;
                }
                tx.load_rows(&t.name, t.arity, t.rows.chunks(t.arity))?;
            }
            tx.commit()?;
        }

        let (wal, records, report) = Wal::recover(dir, mode)?;
        let mut recovered = 0u64;
        for rec in &records {
            match rec {
                WalRecord::Commit(c) if c.version > version => {
                    db.apply_wal_commit(c)?;
                    version = c.version;
                    recovered += 1;
                }
                WalRecord::Commit(_) => {}
                WalRecord::Barrier { version: v } => version = version.max(*v),
            }
        }

        let mut state = DurabilityState {
            wal,
            dir: dir.to_path_buf(),
            mode,
            snapshot_every,
            commits_since_snapshot: report.commits,
            snapshots: 0,
            recovered_records: recovered,
        };
        if !had_snapshot {
            state.snapshot(db, version)?;
        }
        Ok((state, version))
    }

    /// WAL sync policy in effect.
    pub fn mode(&self) -> Durability {
        self.mode
    }

    /// Log one `/facts` commit (WAL-before-apply). An `Err` means the
    /// record is *not* durable: the caller must fail the request without
    /// applying or acknowledging anything.
    pub fn append_commit(
        &mut self,
        version: u64,
        inserts: &[(String, Vec<Vec<Value>>)],
        deletes: &[(String, Vec<Vec<Value>>)],
    ) -> Result<()> {
        let to_batches = |secs: &[(String, Vec<Vec<Value>>)]| -> Vec<WalBatch> {
            secs.iter()
                // Zero-row and zero-arity sections carry no data and are
                // not representable in the record format; skip them.
                .filter(|(_, rows)| rows.first().is_some_and(|r| !r.is_empty()))
                .map(|(name, rows)| WalBatch {
                    name: name.clone(),
                    arity: rows[0].len(),
                    rows: rows.iter().flatten().copied().collect(),
                })
                .collect()
        };
        self.wal.append(&WalRecord::Commit(WalCommit {
            version,
            inserts: to_batches(inserts),
            deletes: to_batches(deletes),
        }))?;
        self.commits_since_snapshot += 1;
        Ok(())
    }

    /// Called after an applied commit: snapshot + compact the log when
    /// the threshold is reached. Returns whether a snapshot was written.
    pub fn maybe_snapshot(&mut self, db: &Database, version: u64) -> Result<bool> {
        if self.snapshot_every == 0 || self.commits_since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.snapshot(db, version)?;
        Ok(true)
    }

    fn snapshot(&mut self, db: &Database, version: u64) -> Result<()> {
        wal::write_snapshot(&self.dir, version, db.catalog().iter().map(|(_, rel)| rel))?;
        self.wal.reset(version)?;
        self.snapshots += 1;
        self.commits_since_snapshot = 0;
        Ok(())
    }

    /// Fsync the log — the [`Durability::Batch`] sync point, called at
    /// shutdown (Commit mode already synced every append).
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Current counters for `/stats`.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            snapshots: self.snapshots,
            recovered_records: self.recovered_records,
        }
    }
}
