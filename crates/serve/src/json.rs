//! Minimal JSON parsing and serialization for the service protocol.
//!
//! The wire format only needs objects, arrays, strings, 64-bit integers,
//! booleans and null — exactly what the query/facts endpoints exchange —
//! so a small hand-rolled parser in the offline-shims mold keeps the
//! service dependency-free. Numbers are parsed as `i64` (the engine's
//! [`recstep::Value`] domain); floats are rejected rather than silently
//! truncated.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value over the service's wire domain.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit integer (floats are rejected at parse time).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// The object field `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Serialize compactly (no whitespace); `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Convenience: build a JSON object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: escape-and-wrap a string literal.
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

/// Convenience: an integer value (anything that fits `i64`).
pub fn int(n: impl TryInto<i64>) -> Json {
    Json::Int(n.try_into().unwrap_or(i64::MAX))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_int(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_int(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!(
            "floating-point numbers are not supported (offset {start})"
        ));
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ascii");
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|e| format!("bad integer '{text}': {e}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        *pos += 4;
                        // Surrogate pairs are out of scope for this protocol;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => write_str(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"program":"tc(x,y) :- arc(x,y).","rows":[[1,2],[3,-4]],"ok":true,"n":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(
            v.get("rows").unwrap().as_arr().unwrap()[1],
            Json::Arr(vec![Json::Int(3), Json::Int(-4)])
        );
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let s = v.to_string();
        assert_eq!(Json::parse(&s).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Json::parse("1.5").is_err());
        assert!(Json::parse("1e3").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(
            Json::parse("9223372036854775807").unwrap().as_int(),
            Some(i64::MAX)
        );
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap().as_int(),
            Some(i64::MIN)
        );
        assert!(Json::parse("9223372036854775808").is_err());
    }
}
