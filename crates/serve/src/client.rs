//! A one-shot blocking HTTP client, just enough to talk to the service.
//!
//! Used by the integration tests and the serve benchmark; real clients
//! can use anything that speaks HTTP/1.1 (the CI smoke test uses `curl`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// `GET path` against `addr`; returns `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None).map(|(s, _, b)| (s, b))
}

/// `POST path` with a JSON body against `addr`; returns `(status, body)`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body)).map(|(s, _, b)| (s, b))
}

/// Like [`post`] but also returns the raw response head, for callers that
/// need to inspect headers (e.g. `Retry-After` on a 429).
pub fn post_full(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String, String)> {
    request(addr, "POST", path, Some(body))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or("");
    let body = parts.next().unwrap_or("").to_string();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, head.to_string(), body))
}
