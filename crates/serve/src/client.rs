//! A one-shot blocking HTTP client, just enough to talk to the service.
//!
//! Used by the integration tests and the serve benchmark; real clients
//! can use anything that speaks HTTP/1.1 (the CI smoke test uses `curl`).
//! [`post_with_retry`] adds the client half of the service's overload and
//! restart story: bounded, jittered exponential backoff that honors
//! `Retry-After` on a 429 and rides out connection-refused windows while
//! a crashed server comes back up.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// `GET path` against `addr`; returns `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, None).map(|(s, _, b)| (s, b))
}

/// `POST path` with a JSON body against `addr`; returns `(status, body)`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, Some(body)).map(|(s, _, b)| (s, b))
}

/// Like [`post`] but also returns the raw response head, for callers that
/// need to inspect headers (e.g. `Retry-After` on a 429).
pub fn post_full(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String, String)> {
    request(addr, "POST", path, Some(body))
}

/// Bounded retry for transient failures: `429` shed responses and the
/// connection errors a restarting server produces.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries, the first included. `0` behaves like `1`.
    pub max_attempts: u32,
    /// Backoff before the second try; doubles on every retry after that.
    pub base_delay: Duration,
    /// Ceiling on any single sleep, including an honored `Retry-After`.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): `Retry-After` when
    /// the server named one, else `base_delay * 2^retry`, jittered ±25%
    /// (deterministically, from the retry ordinal) so a shed burst of
    /// clients does not come back as a synchronized burst. Everything is
    /// clamped to `max_delay`.
    fn delay(&self, retry: u32, retry_after: Option<Duration>) -> Duration {
        if let Some(ra) = retry_after {
            return ra.min(self.max_delay);
        }
        let backoff = self
            .base_delay
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_delay);
        let nanos = backoff.as_nanos().min(u64::MAX as u128) as u64;
        // hash-derived jitter in [-25%, +25%] — no RNG dependency, and two
        // different retry ordinals land on different offsets.
        let jitter =
            (recstep_common::hash::mix64(0x9e37_79b9 ^ u64::from(retry)) % 512) as i64 - 256;
        let jittered = nanos as i64 + (nanos as i64 / 1024) * jitter;
        Duration::from_nanos(jittered.max(0) as u64).min(self.max_delay)
    }
}

/// `Retry-After: N` (integral seconds) from a raw response head.
fn retry_after(head: &str) -> Option<Duration> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok().map(Duration::from_secs))?
    })
}

/// Is this I/O error worth retrying? Connection-level failures are what a
/// restarting or overloaded server produces; anything else (bad address,
/// permission, protocol garbage) fails fast.
fn transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
    )
}

/// [`post`] with bounded retry: retries shed responses (`429`, honoring
/// `Retry-After`) and transient connection errors with jittered
/// exponential backoff, and returns the final outcome either way — a
/// still-shedding server yields its last `(429, body)`, a still-down
/// server its last error.
pub fn post_with_retry(
    addr: SocketAddr,
    path: &str,
    body: &str,
    policy: RetryPolicy,
) -> std::io::Result<(u16, String)> {
    let attempts = policy.max_attempts.max(1);
    let mut retry = 0u32;
    loop {
        let last = retry + 1 >= attempts;
        match request(addr, "POST", path, Some(body)) {
            Ok((429, head, resp)) if !last => {
                std::thread::sleep(policy.delay(retry, retry_after(&head)));
                let _ = resp;
            }
            Ok((status, _, resp)) => return Ok((status, resp)),
            Err(e) if transient(&e) && !last => {
                std::thread::sleep(policy.delay(retry, None));
            }
            Err(e) => return Err(e),
        }
        retry += 1;
    }
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut parts = text.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or("");
    let body = parts.next().unwrap_or("").to_string();
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, head.to_string(), body))
}
