//! A deliberately small HTTP/1.1 layer for the query service.
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length`, everything else rejected early with a 4xx. This is
//! all the service protocol needs, and it keeps the server a plain
//! thread-per-connection loop over `std::net` — no external runtime, per
//! the workspace's no-new-dependencies rule.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on declared body size; a request past it is shed with 413 before
/// any allocation of that size happens.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// Cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 << 10;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (query strings are not split off; the
    /// service routes on exact paths).
    pub path: String,
    /// Decoded body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped to the status the caller
/// should answer with.
#[derive(Debug)]
pub struct ParseError {
    /// HTTP status to answer with (400, 408, 413, 431, 505).
    pub status: u16,
    /// Human-readable reason, sent in the error body.
    pub reason: String,
}

impl ParseError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        ParseError {
            status,
            reason: reason.into(),
        }
    }
}

/// Read one request from the stream. `io_timeout` bounds each read so a
/// stalled client cannot pin a worker forever.
pub fn read_request(stream: &mut TcpStream, io_timeout: Duration) -> Result<Request, ParseError> {
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| ParseError::new(400, format!("set_read_timeout: {e}")))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    read_line(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::new(400, "empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::new(400, "missing request target"))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::new(505, format!("unsupported {version}")));
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        read_line(&mut reader, &mut line)?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::new(431, "request head too large"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::new(400, "bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::new(413, "body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ParseError::new(408, format!("short body: {e}")))?;
    Ok(Request { method, path, body })
}

fn read_line<R: BufRead>(reader: &mut R, line: &mut String) -> Result<(), ParseError> {
    match reader.read_line(line) {
        Ok(0) => Err(ParseError::new(400, "connection closed mid-request")),
        Ok(_) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
            Err(ParseError::new(408, "read timed out"))
        }
        Err(e) => Err(ParseError::new(400, format!("read: {e}"))),
    }
}

/// A response ready to serialize: status, JSON body, optional
/// `Retry-After` seconds (the load-shed signal).
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body text.
    pub body: String,
    /// When set, a `Retry-After: N` header is emitted (sent with 429).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            retry_after: None,
        }
    }

    /// An error response; the reason is wrapped as `{"ok":false,"error":..}`.
    pub fn error(status: u16, reason: &str) -> Self {
        Response {
            status,
            body: crate::json::obj(vec![
                ("ok", crate::json::Json::Bool(false)),
                ("error", crate::json::str(reason)),
            ])
            .to_string(),
            retry_after: None,
        }
    }

    /// A 429 load-shed response carrying `Retry-After`.
    pub fn shed(reason: &str, retry_after_secs: u64) -> Self {
        let mut r = Response::error(429, reason);
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Serialize and write the response; the connection is then done
    /// (`Connection: close`).
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Keep the socket open until the server is done parsing.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream, Duration::from_secs(2));
        drop(stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let huge = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(roundtrip(huge.as_bytes()).unwrap_err().status, 413);
        assert_eq!(roundtrip(b"\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(roundtrip(b"GET / SPDY/3\r\n\r\n").unwrap_err().status, 505);
        // Declared body longer than what arrives: times out as a short body.
        let short = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        assert_eq!(short.unwrap_err().status, 408);
    }

    #[test]
    fn response_wire_format() {
        let r = Response::shed("queue full", 1);
        assert_eq!(r.status, 429);
        assert!(r.body.contains("queue full"));
        assert_eq!(r.retry_after, Some(1));
        assert!(Response::error(404, "no such route").body.contains("false"));
    }
}
