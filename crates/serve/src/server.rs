//! The query service: a long-lived server wrapping one [`Engine`] and one
//! [`Database`] behind an HTTP/JSON protocol.
//!
//! Three mechanisms make it a *service* rather than a loop around
//! [`PreparedProgram::run`]:
//!
//! 1. **Prepared-program cache.** Programs are keyed by normalized source
//!    text and compiled once ([`Engine::prepare`]); entries are LRU-evicted
//!    past [`ServeConfig::prepared_capacity`] and carry the catalog version
//!    of every relation they read, so a `/facts` commit invalidates exactly
//!    the plans built over the written relations — the rest stay hot.
//! 2. **Request batching.** Identical concurrent queries coalesce *before*
//!    admission: the first requester becomes the leader and runs the
//!    fixpoint; everyone else blocks on the in-flight entry and shares the
//!    leader's `Arc<RunOutput>`. One fixpoint, N responses — and followers
//!    hold no run permit, so batching never counts against
//!    [`ServeConfig::max_concurrent_runs`].
//! 3. **Admission control.** A counting semaphore caps concurrent
//!    evaluations; at most [`ServeConfig::queue_depth`] leaders wait for a
//!    permit and the rest are shed with `429 Retry-After`. Each request
//!    carries a wall-clock deadline enforced twice: while queued (the
//!    semaphore wait times out) and mid-run (a [`CancelToken`] aborts the
//!    fixpoint at its next iteration boundary with `Error::Cancelled`).
//!    Before a run starts, resident memory (stored relations + shared
//!    index cache) is checked against the engine budget; the index cache
//!    is spilled first ([`IndexCache::evict_to_fit`]) and only an
//!    uncoverable overage sheds the request.
//!
//! Shared runs go through [`PreparedProgram::run_shared`]'s copy-on-write
//! overlay, so `/query` never mutates the database and any number may
//! proceed concurrently; `/facts` takes the write side of one `RwLock`.
//! Warmup programs (``--warmup``) run *exclusively* at startup with
//! `publish_idb_indexes` on, seeding both the prepared cache and the
//! shared index cache — including full-relation indexes over their final
//! IDB results, which later programs reuse as inputs.
//!
//! With a data directory ([`ServeConfig::data_dir`]), every `/facts`
//! commit is WAL-logged *before* it is applied or acknowledged, and a
//! restart recovers snapshot-then-WAL-tail so `data_version` picks up
//! exactly where the last acked commit left it — see [`crate::durability`].
//! Evaluation and request routing both run under `catch_unwind`, so a
//! panicking fixpoint costs one `500` response (counted in `/stats` as
//! `panics`), never a worker thread.
//!
//! [`IndexCache::evict_to_fit`]: recstep::IndexCache::evict_to_fit

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};
use recstep::{
    Config, Database, Durability, Engine, Error, EvalStats, MaterializedView, PreparedProgram,
    RunOutput, ServeConfig,
};
use recstep_common::sched::{Admission, CancelToken, Semaphore};

use crate::durability::DurabilityState;
use crate::http::{read_request, Request, Response};
use crate::json::{self, Json};

/// How many recent request latencies the `/stats` percentiles cover.
const LATENCY_RING: usize = 1024;

/// Default cap on rows returned per relation when the request does not
/// set `"limit"`.
const DEFAULT_ROW_LIMIT: usize = 10_000;

/// Per-connection socket read timeout (guards against stalled clients,
/// not against slow evaluations — those have their own deadline).
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Normalize program text for use as a cache/batch key: trim each line
/// and drop blank ones. Line structure is preserved, so normalization
/// never changes what the parser sees.
pub fn normalize_program(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for line in src.lines().map(str::trim).filter(|l| !l.is_empty()) {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(line);
    }
    out
}

/// One compiled program in the prepared cache.
struct PreparedEntry {
    prog: Arc<PreparedProgram>,
    /// Catalog version of every relation the program mentions, captured
    /// at compile time. The entry is fresh while they all still match —
    /// so a `/facts` commit to `edge` strands programs reading `edge`,
    /// not a program that only reads `arc`.
    reads: Vec<(String, u64)>,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

/// The per-relation read set of a compiled program: every relation the
/// plan mentions, paired with its current catalog version. Conservative
/// (derived relations are listed too, and reset on every exclusive run),
/// but exact enough to keep unrelated `/facts` commits from stranding
/// prepared plans.
fn plan_reads(prog: &PreparedProgram, db: &Database) -> Vec<(String, u64)> {
    prog.compiled()
        .relations
        .iter()
        .map(|r| (r.name.clone(), db.relation_version(&r.name)))
        .collect()
}

/// Best-effort text of a panic payload (`&str` or `String` in practice;
/// anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

struct PreparedCache {
    entries: HashMap<String, PreparedEntry>,
    tick: u64,
    capacity: usize,
}

/// One standing materialized view in the view registry.
struct ViewEntry {
    view: MaterializedView,
    /// Immutable published contents; query batches share `Arc`s of this
    /// while the view itself stays mutable for the next refresh.
    published: Arc<RunOutput>,
    /// Data version the published contents reflect.
    version: u64,
    /// Last-use tick for LRU eviction.
    tick: u64,
}

/// Standing materialized views keyed by normalized program text — the
/// incremental sibling of the prepared-program cache. Every `/facts`
/// commit refreshes all entries inside the write critical section (see
/// [`ServerState::handle_facts`]), so a fresh entry always answers at the
/// current data version without re-running the fixpoint.
struct ViewRegistry {
    entries: HashMap<String, ViewEntry>,
    tick: u64,
    capacity: usize,
}

/// Either the shared run output or the HTTP error the whole batch gets.
type BatchResult = Result<Arc<RunOutput>, (u16, String)>;

/// One in-flight fixpoint; followers park on the condvar until the
/// leader publishes.
#[derive(Default)]
struct InFlight {
    done: Mutex<Option<BatchResult>>,
    cv: Condvar,
}

/// Monotonic service counters (all observable through `/stats`).
#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    compiles: AtomicU64,
    prepared_hits: AtomicU64,
    prepared_evictions: AtomicU64,
    batch_joins: AtomicU64,
    shed_count: AtomicU64,
    timeouts: AtomicU64,
    cancelled_runs: AtomicU64,
    facts_commits: AtomicU64,
    /// Queries answered from a standing materialized view (no fixpoint).
    view_hits: AtomicU64,
    /// Runs (or handlers) that panicked and were isolated to a 500.
    panics: AtomicU64,
}

struct ServerState {
    engine: Engine,
    serve: ServeConfig,
    db: RwLock<Database>,
    /// Bumped by every `/facts` commit; part of the batch key (so batched
    /// results never straddle a write) and the version each commit is
    /// WAL-logged under.
    data_version: AtomicU64,
    prepared: Mutex<PreparedCache>,
    views: Mutex<ViewRegistry>,
    inflight: Mutex<HashMap<(String, u64), Arc<InFlight>>>,
    sem: Arc<Semaphore>,
    counters: Counters,
    /// Ring of recent request latencies in microseconds.
    latencies_us: Mutex<Vec<u64>>,
    /// Engine-lifetime aggregate of every completed run's [`EvalStats`].
    lifetime: Mutex<EvalStats>,
    /// WAL + snapshot state; `None` when running without a data dir or
    /// with `--durability off`.
    durability: Mutex<Option<DurabilityState>>,
}

impl ServerState {
    /// Full `/query` path: parse → batch-join → (leader only) prepare,
    /// admit, evaluate → render.
    fn handle_query(self: &Arc<Self>, body: &[u8]) -> Response {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let req = match std::str::from_utf8(body)
            .map_err(|e| e.to_string())
            .and_then(Json::parse)
        {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("bad request body: {e}")),
        };
        let Some(program) = req.get("program").and_then(Json::as_str) else {
            return Response::error(400, "missing \"program\" field");
        };
        let relation = req.get("relation").and_then(Json::as_str);
        let limit = req
            .get("limit")
            .and_then(Json::as_int)
            .map_or(DEFAULT_ROW_LIMIT, |n| n.max(0) as usize);
        let timeout_ms = req
            .get("timeout_ms")
            .and_then(Json::as_int)
            .map_or(self.serve.request_timeout_ms, |n| n.max(0) as u64);
        let deadline = start + Duration::from_millis(timeout_ms);

        let norm = normalize_program(program);
        if norm.is_empty() {
            return Response::error(400, "empty program");
        }
        let key = (norm, self.data_version.load(Ordering::SeqCst));

        // Batching join happens BEFORE admission: exactly one requester
        // per (program, data version) becomes the leader; late arrivals
        // attach to its in-flight entry and consume no run permit.
        let (flight, leader) = {
            let mut map = self.inflight.lock();
            match map.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(InFlight::default());
                    map.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        let result = if leader {
            let res = self.lead_query(&key.0, deadline);
            *flight.done.lock() = Some(res.clone());
            flight.cv.notify_all();
            // Retire the batch: the next identical request starts fresh.
            self.inflight.lock().remove(&key);
            res
        } else {
            self.counters.batch_joins.fetch_add(1, Ordering::Relaxed);
            let mut done = flight.done.lock();
            loop {
                if let Some(res) = done.as_ref() {
                    break res.clone();
                }
                if flight.cv.wait_until(&mut done, deadline).timed_out() && done.is_none() {
                    self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    break Err((504, "cancelled: deadline passed while batched".into()));
                }
            }
        };

        match result {
            Ok(out) => {
                self.record_latency(start.elapsed());
                self.render_query(&out, relation, limit, start.elapsed(), !leader)
            }
            Err((429, msg)) => Response::shed(&msg, 1),
            Err((status, msg)) => Response::error(status, &msg),
        }
    }

    /// Leader-side work: serve a standing materialized view when one is
    /// current, else compile (or hit the prepared cache), pass admission
    /// control, evaluate with a deadline-carrying cancel token — and
    /// leave the result standing as a view for the next version bump.
    fn lead_query(&self, norm: &str, deadline: Instant) -> BatchResult {
        // View fast path, before admission: a fresh view answers without
        // running any fixpoint, so it consumes no run permit. Freshness
        // is exact — views are refreshed inside the `/facts` write
        // critical section, and `data_version` only moves under the
        // write lock this read lock excludes.
        if self.engine.config().incremental_views {
            let _db = self.db.read();
            let version = self.data_version.load(Ordering::SeqCst);
            let mut views = self.views.lock();
            views.tick += 1;
            let tick = views.tick;
            if let Some(entry) = views.entries.get_mut(norm) {
                if entry.version == version {
                    entry.tick = tick;
                    self.counters.view_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.published));
                }
                // A view that missed a refresh (it failed or panicked)
                // cannot catch up — the deltas are gone. Rebuild below.
                views.entries.remove(norm);
            }
        }

        let prog = match self.prepared_for(norm) {
            Ok(p) => p,
            Err(e) => return Err((400, e.to_string())),
        };

        let _permit = match self.sem.acquire(deadline) {
            Admission::Admitted(g) => g,
            Admission::QueueFull => {
                self.counters.shed_count.fetch_add(1, Ordering::Relaxed);
                return Err((429, "admission queue full".into()));
            }
            Admission::TimedOut => {
                self.counters.shed_count.fetch_add(1, Ordering::Relaxed);
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err((429, "timed out waiting for a run permit".into()));
            }
        };

        let db = self.db.read();
        // Memory admission: spill the index cache before shedding work.
        let budget = self.engine.config().mem_budget_bytes;
        if budget > 0 {
            let cache = db.index_cache();
            if db.heap_bytes() + cache.resident_bytes() > budget {
                cache.evict_to_fit(budget.saturating_sub(db.heap_bytes()));
                if db.heap_bytes() + cache.resident_bytes() > budget {
                    self.counters.shed_count.fetch_add(1, Ordering::Relaxed);
                    return Err((429, "memory budget exhausted".into()));
                }
            }
        }

        let cancel = CancelToken::with_deadline(deadline);
        // The data version the run will reflect — stable while `db` is
        // read-locked, since commits store it under the write lock.
        let version = self.data_version.load(Ordering::SeqCst);
        // The fixpoint runs under catch_unwind so a poisoned run maps to
        // one 500 instead of a dead worker: the permit guard and the db
        // read lock release on unwind, and the leader still publishes to
        // its batch followers through the normal error path.
        let run = catch_unwind(AssertUnwindSafe(|| -> recstep::Result<Arc<RunOutput>> {
            if MaterializedView::eligible(&prog) {
                // Creating the view IS the evaluation; it then stands to
                // absorb future commits incrementally. Ineligible
                // programs (negation, aggregation, inline facts, or
                // ablated configs) keep the plain shared-run path — a
                // standing scratch view would only move their recompute
                // cost into the `/facts` critical section.
                let view =
                    MaterializedView::create_cancellable(Arc::clone(&prog), &db, Some(&cancel))?;
                let out = Arc::new(view.output());
                self.install_view(norm, view, Arc::clone(&out), version);
                Ok(out)
            } else {
                Ok(Arc::new(prog.run_shared_cancellable(&db, &cancel)?))
            }
        }));
        match run {
            Err(payload) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                Err((
                    500,
                    format!("evaluation panicked: {}", panic_message(payload.as_ref())),
                ))
            }
            Ok(Ok(out)) => {
                self.lifetime.lock().merge(out.stats());
                Ok(out)
            }
            Ok(Err(Error::Cancelled)) => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                self.counters.cancelled_runs.fetch_add(1, Ordering::Relaxed);
                Err((
                    504,
                    "evaluation cancelled: request deadline exceeded".into(),
                ))
            }
            Ok(Err(e)) => Err((400, e.to_string())),
        }
    }

    /// Prepared-cache lookup: hit only when the text matches and every
    /// relation the plan reads is still at the catalog version captured
    /// at compile time — commits to relations the program never mentions
    /// leave the entry fresh. Otherwise compile and (re)insert,
    /// LRU-evicting past capacity. Compilation happens under the cache
    /// lock — concurrent leaders of *different* programs serialize
    /// briefly, while identical programs already coalesced upstream, so
    /// each text compiles once.
    fn prepared_for(&self, norm: &str) -> recstep::Result<Arc<PreparedProgram>> {
        let mut cache = self.prepared.lock();
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(norm) {
            let fresh = {
                let db = self.db.read();
                entry
                    .reads
                    .iter()
                    .all(|(name, v)| db.relation_version(name) == *v)
            };
            if fresh {
                entry.tick = tick;
                self.counters.prepared_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.prog));
            }
        }
        let prog = Arc::new(self.engine.prepare(norm)?);
        self.counters.compiles.fetch_add(1, Ordering::Relaxed);
        let reads = plan_reads(&prog, &self.db.read());
        if !cache.entries.contains_key(norm) && cache.entries.len() >= cache.capacity {
            if let Some(victim) = cache
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                cache.entries.remove(&victim);
                self.counters
                    .prepared_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        cache.entries.insert(
            norm.to_string(),
            PreparedEntry {
                prog: Arc::clone(&prog),
                reads,
                tick,
            },
        );
        Ok(prog)
    }

    /// Register (or replace) a standing view, LRU-evicting past capacity.
    fn install_view(
        &self,
        norm: &str,
        view: MaterializedView,
        published: Arc<RunOutput>,
        version: u64,
    ) {
        let mut views = self.views.lock();
        views.tick += 1;
        let tick = views.tick;
        if !views.entries.contains_key(norm) && views.entries.len() >= views.capacity {
            if let Some(victim) = views
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                views.entries.remove(&victim);
            }
        }
        views.entries.insert(
            norm.to_string(),
            ViewEntry {
                view,
                published,
                version,
                tick,
            },
        );
    }

    fn render_query(
        &self,
        out: &RunOutput,
        relation: Option<&str>,
        limit: usize,
        elapsed: Duration,
        batched: bool,
    ) -> Response {
        let mut results = std::collections::BTreeMap::new();
        let render_one = |handle: recstep::RelHandle<'_>| {
            let rows: Vec<Json> = handle
                .iter_rows()
                .take(limit)
                .map(|r| Json::Arr(r.to_vec().into_iter().map(Json::Int).collect()))
                .collect();
            json::obj(vec![
                ("rows", Json::Arr(rows)),
                ("total", json::int(handle.len())),
            ])
        };
        match relation {
            Some(name) => match out.relation(name) {
                Some(h) => {
                    results.insert(name.to_string(), render_one(h));
                }
                None => return Response::error(404, &format!("run produced no relation '{name}'")),
            },
            None => {
                for (_, rel) in out.catalog().iter() {
                    let h = recstep::RelHandle::new(rel);
                    results.insert(h.name().to_string(), render_one(h));
                }
            }
        }
        let stats = out.stats();
        let body = json::obj(vec![
            ("ok", Json::Bool(true)),
            ("batched", Json::Bool(batched)),
            ("elapsed_us", json::int(elapsed.as_micros())),
            ("results", Json::Obj(results)),
            (
                "stats",
                json::obj(vec![
                    ("iterations", json::int(stats.iterations)),
                    ("tuples_considered", json::int(stats.tuples_considered)),
                    ("cache_hits", json::int(stats.index.cache_hits)),
                    ("cache_misses", json::int(stats.index.cache_misses)),
                ]),
            ),
        ]);
        Response::ok(body.to_string())
    }

    /// `/facts`: apply inserts and whole-tuple deletes in one
    /// [`recstep::Transaction`], then bump the data version so batched
    /// results and prepared plans built over the old data go stale.
    ///
    /// With durability on, the order is WAL-before-apply: stage (all
    /// validation happens here) → append + fsync the commit record →
    /// apply → publish the new `data_version` → acknowledge. A failed
    /// append drops the staged transaction, so nothing un-logged is ever
    /// visible; a logged-but-unapplied commit (crash or apply error
    /// between append and ack) is *not* acknowledged and replays into the
    /// same state at the next restart.
    fn handle_facts(&self, body: &[u8]) -> Response {
        let req = match std::str::from_utf8(body)
            .map_err(|e| e.to_string())
            .and_then(Json::parse)
        {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("bad request body: {e}")),
        };
        let decode_rows = |v: &Json| -> Result<Vec<Vec<recstep::Value>>, String> {
            let rows = v.as_arr().ok_or("rows must be an array of arrays")?;
            rows.iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or_else(|| "each row must be an array".to_string())?
                        .iter()
                        .map(|c| c.as_int().ok_or_else(|| "values must be integers".into()))
                        .collect()
                })
                .collect()
        };
        type Sections = Vec<(String, Vec<Vec<recstep::Value>>)>;
        let sections = |key: &str| -> Result<Sections, String> {
            match req.get(key) {
                None => Ok(Vec::new()),
                Some(Json::Obj(rels)) => rels
                    .iter()
                    .map(|(name, v)| Ok((name.clone(), decode_rows(v)?)))
                    .collect(),
                Some(_) => Err(format!("\"{key}\" must be an object of relation -> rows")),
            }
        };
        let (inserts, deletes) = match (sections("insert"), sections("delete")) {
            (Ok(i), Ok(d)) => (i, d),
            (Err(e), _) | (_, Err(e)) => return Response::error(400, &e),
        };
        if inserts.is_empty() && deletes.is_empty() {
            return Response::error(400, "nothing to apply: no \"insert\" or \"delete\"");
        }

        let mut db = self.db.write();
        let mut tx = db.transaction();
        let staged = inserts
            .iter()
            .try_for_each(|(name, rows)| match rows.first() {
                None => Ok(()),
                Some(first) => tx.load_rows(name, first.len(), rows.iter().map(Vec::as_slice)),
            })
            .and_then(|()| {
                deletes
                    .iter()
                    .try_for_each(|(name, rows)| match rows.first() {
                        None => Ok(()),
                        Some(first) => {
                            tx.delete_rows(name, first.len(), rows.iter().map(Vec::as_slice))
                        }
                    })
            });
        if let Err(e) = staged {
            return Response::error(400, &e.to_string());
        }

        let version = self.data_version.load(Ordering::SeqCst) + 1;
        if let Some(d) = self.durability.lock().as_mut() {
            if let Err(e) = d.append_commit(version, &inserts, &deletes) {
                // Not durable → not applied, not acknowledged. Dropping
                // `tx` here discards the staged rows.
                return Response::error(500, &format!("commit not logged: {e}"));
            }
        }
        if let Err(e) = tx.commit() {
            // The record is already durable but nothing was applied;
            // replay at the next restart converges. Do not acknowledge.
            return Response::error(500, &e.to_string());
        }
        self.data_version.store(version, Ordering::SeqCst);
        self.counters.facts_commits.fetch_add(1, Ordering::Relaxed);
        // Standing views absorb the commit inside the write critical
        // section: every entry leaves here either refreshed to `version`
        // or dropped. A refresh that fails or panics never leaves a
        // half-maintained view servable — the entry is removed and the
        // next query for that program rebuilds from scratch.
        if self.engine.config().incremental_views {
            let mut views = self.views.lock();
            views.entries.retain(|_, entry| {
                let refreshed = catch_unwind(AssertUnwindSafe(|| {
                    entry.view.refresh(&db, &inserts, &deletes)
                }));
                match refreshed {
                    Ok(Ok(())) => {
                        self.lifetime.lock().merge(entry.view.stats());
                        entry.published = Arc::new(entry.view.output());
                        entry.version = version;
                        true
                    }
                    Ok(Err(_)) => false,
                    Err(_) => {
                        self.counters.panics.fetch_add(1, Ordering::Relaxed);
                        false
                    }
                }
            });
        }
        if let Some(d) = self.durability.lock().as_mut() {
            // A failed snapshot never fails the (durable, applied) commit
            // it trails — the log just keeps growing until one succeeds.
            if let Err(e) = d.maybe_snapshot(&db, version) {
                eprintln!("recstep-serve: snapshot failed: {e}");
            }
        }
        Response::ok(
            json::obj(vec![
                ("ok", Json::Bool(true)),
                ("data_version", json::int(version)),
            ])
            .to_string(),
        )
    }

    fn handle_stats(&self) -> Response {
        let c = &self.counters;
        let (p50, p95, samples) = {
            let ring = self.latencies_us.lock();
            let mut sorted: Vec<u64> = ring.clone();
            sorted.sort_unstable();
            let pick = |q: f64| -> u64 {
                if sorted.is_empty() {
                    0
                } else {
                    sorted[((sorted.len() - 1) as f64 * q) as usize]
                }
            };
            (pick(0.50), pick(0.95), sorted.len())
        };
        let (prepared_entries, prepared_capacity) = {
            let cache = self.prepared.lock();
            (cache.entries.len(), cache.capacity)
        };
        let (view_entries, view_capacity, view_incremental) = {
            let views = self.views.lock();
            let incremental = views
                .entries
                .values()
                .filter(|e| e.view.incremental())
                .count();
            (views.entries.len(), views.capacity, incremental)
        };
        let (index_resident, index_entries) = {
            let db = self.db.read();
            (db.index_cache().resident_bytes(), db.index_cache().len())
        };
        let lifetime = {
            let l = self.lifetime.lock();
            json::obj(vec![
                ("strata", json::int(l.strata.len())),
                ("iterations", json::int(l.iterations)),
                ("tuples_considered", json::int(l.tuples_considered)),
                ("cache_hits", json::int(l.index.cache_hits)),
                ("cache_misses", json::int(l.index.cache_misses)),
                ("cache_evictions", json::int(l.index.cache_evictions)),
                ("published", json::int(l.index.published)),
                ("view_refreshes", json::int(l.view.view_refreshes)),
                ("view_seeded_strata", json::int(l.view.view_seeded_strata)),
                (
                    "view_counting_strata",
                    json::int(l.view.view_counting_strata),
                ),
                ("view_dred_strata", json::int(l.view.view_dred_strata)),
                ("view_fallbacks", json::int(l.view.view_fallbacks)),
                ("total_us", json::int(l.total.as_micros())),
            ])
        };
        let durability = {
            let dur = self.durability.lock();
            let (mode, s) = match dur.as_ref() {
                Some(d) => (d.mode().as_str(), d.stats()),
                None => (
                    "off",
                    crate::durability::DurabilityStats {
                        wal_records: 0,
                        wal_bytes: 0,
                        snapshots: 0,
                        recovered_records: 0,
                    },
                ),
            };
            json::obj(vec![
                ("mode", json::str(mode)),
                ("wal_records", json::int(s.wal_records)),
                ("wal_bytes", json::int(s.wal_bytes)),
                ("snapshots", json::int(s.snapshots)),
                ("recovered_records", json::int(s.recovered_records)),
            ])
        };
        let load = |a: &AtomicU64| json::int(a.load(Ordering::Relaxed));
        let body = json::obj(vec![
            ("ok", Json::Bool(true)),
            ("queries", load(&c.queries)),
            ("compiles", load(&c.compiles)),
            ("prepared_hits", load(&c.prepared_hits)),
            ("prepared_evictions", load(&c.prepared_evictions)),
            ("batch_joins", load(&c.batch_joins)),
            ("shed_count", load(&c.shed_count)),
            ("timeouts", load(&c.timeouts)),
            ("cancelled_runs", load(&c.cancelled_runs)),
            ("facts_commits", load(&c.facts_commits)),
            ("view_hits", load(&c.view_hits)),
            ("panics", load(&c.panics)),
            (
                "data_version",
                json::int(self.data_version.load(Ordering::SeqCst)),
            ),
            ("run_permits", json::int(self.sem.permits())),
            (
                "prepared_cache",
                json::obj(vec![
                    ("entries", json::int(prepared_entries)),
                    ("capacity", json::int(prepared_capacity)),
                ]),
            ),
            (
                "views",
                json::obj(vec![
                    ("entries", json::int(view_entries)),
                    ("incremental", json::int(view_incremental)),
                    ("capacity", json::int(view_capacity)),
                ]),
            ),
            (
                "index_cache",
                json::obj(vec![
                    ("resident_bytes", json::int(index_resident)),
                    ("entries", json::int(index_entries)),
                ]),
            ),
            (
                "latency",
                json::obj(vec![
                    ("samples", json::int(samples)),
                    ("p50_us", json::int(p50)),
                    ("p95_us", json::int(p95)),
                ]),
            ),
            ("durability", durability),
            ("lifetime", lifetime),
        ]);
        Response::ok(body.to_string())
    }

    fn record_latency(&self, elapsed: Duration) {
        let mut ring = self.latencies_us.lock();
        if ring.len() >= LATENCY_RING {
            let drop_front = ring.len() - LATENCY_RING + 1;
            ring.drain(..drop_front);
        }
        ring.push(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let req = match read_request(&mut stream, IO_TIMEOUT) {
        Ok(r) => r,
        Err(e) => {
            let _ = Response::error(e.status, &e.reason).write(&mut stream);
            return;
        }
    };
    // A panicking handler must not take its worker thread down — the
    // worker loop owns accept() for the server's whole lifetime.
    let resp = match catch_unwind(AssertUnwindSafe(|| route(state, &req))) {
        Ok(r) => r,
        Err(_) => {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            Response::error(500, "internal error: request handler panicked")
        }
    };
    let _ = resp.write(&mut stream);
}

fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/query") => state.handle_query(&req.body),
        ("POST", "/facts") => state.handle_facts(&req.body),
        ("GET", "/stats") => state.handle_stats(),
        ("GET", "/healthz") => Response::ok("{\"ok\":true}".to_string()),
        (_, "/query" | "/facts") => Response::error(405, "use POST"),
        (_, "/stats" | "/healthz") => Response::error(405, "use GET"),
        _ => Response::error(404, &format!("no such route: {path}")),
    }
}

/// A running query service. Dropping (or calling [`Server::shutdown`])
/// stops accepting, wakes the workers and joins them.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Build the engine, run warmup programs, bind the listener and start
    /// the worker threads. `cfg.addr` may use port 0 to let the OS pick
    /// (see [`Server::addr`] for the resolved address).
    ///
    /// Warmup programs evaluate **exclusively** over the database with
    /// `publish_idb_indexes` forced on: their IDB results land in the
    /// database and full-relation indexes over those results are published
    /// into the shared index cache, so the first client request starts
    /// against hot caches.
    pub fn start(
        engine_cfg: Config,
        cfg: ServeConfig,
        mut db: Database,
    ) -> recstep::Result<Server> {
        // The service owns the only exclusive-run path (warmup), and
        // exclusive runs are the only publisher, so turning publication on
        // engine-wide is safe: shared runs skip it by construction.
        let engine = Engine::from_config(engine_cfg.publish_idb_indexes(true))?;

        // Recover durable state before warmup, so warmup programs run
        // over the restored facts. On a fresh data dir this also writes
        // an initial snapshot covering anything preloaded into `db`.
        let mut durability = None;
        let mut data_version = 0u64;
        if cfg.durability != Durability::Off {
            if let Some(dir) = &cfg.data_dir {
                let (d, v) = DurabilityState::open(
                    Path::new(dir),
                    cfg.durability,
                    cfg.snapshot_every_n_commits,
                    &mut db,
                )?;
                durability = Some(d);
                data_version = v;
            }
        }

        let mut lifetime = EvalStats::default();
        let mut compiles = 0u64;
        let mut warmed = Vec::new();
        for path in &cfg.warmup {
            let src = std::fs::read_to_string(path)
                .map_err(|e| Error::exec(format!("warmup {path}: {e}")))?;
            let norm = normalize_program(&src);
            let prog = Arc::new(engine.prepare(&norm)?);
            compiles += 1;
            let stats = prog.run(&mut db)?;
            lifetime.merge(&stats);
            warmed.push((norm, prog));
        }
        // Read sets are captured after ALL warmup runs: each exclusive run
        // bumps the versions of the relations it derives, so capturing
        // eagerly would strand earlier entries on later runs' writes.
        let view_capacity = cfg.prepared_capacity.max(1);
        let mut prepared = PreparedCache {
            entries: HashMap::new(),
            tick: 0,
            capacity: cfg.prepared_capacity.max(1),
        };
        for (norm, prog) in warmed {
            prepared.tick += 1;
            let tick = prepared.tick;
            let reads = plan_reads(&prog, &db);
            prepared
                .entries
                .insert(norm, PreparedEntry { prog, reads, tick });
        }

        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| Error::exec(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::exec(format!("local_addr: {e}")))?;

        let sem = Semaphore::new(cfg.max_concurrent_runs, cfg.queue_depth);
        // Enough workers that a full run queue plus batched followers and
        // a monitoring probe never starve on accept.
        let n_workers = (cfg.max_concurrent_runs + cfg.queue_depth + 4).clamp(2, 32);
        let state = Arc::new(ServerState {
            engine,
            serve: cfg,
            db: RwLock::new(db),
            data_version: AtomicU64::new(data_version),
            prepared: Mutex::new(prepared),
            views: Mutex::new(ViewRegistry {
                entries: HashMap::new(),
                tick: 0,
                capacity: view_capacity,
            }),
            inflight: Mutex::new(HashMap::new()),
            sem,
            counters: Counters {
                compiles: AtomicU64::new(compiles),
                ..Counters::default()
            },
            latencies_us: Mutex::new(Vec::new()),
            lifetime: Mutex::new(lifetime),
            durability: Mutex::new(durability),
        });

        let stop = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(listener);
        let workers = (0..n_workers)
            .map(|i| {
                let state = Arc::clone(&state);
                let listener = Arc::clone(&listener);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("recstep-serve-{i}"))
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if stop.load(Ordering::SeqCst) {
                                        break;
                                    }
                                    handle_connection(&state, stream);
                                }
                                Err(_) => {
                                    if stop.load(Ordering::SeqCst) {
                                        break;
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn server worker")
            })
            .collect();

        Ok(Server {
            state,
            addr,
            stop,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admission semaphore. Exposed so harnesses can hold permits and
    /// drive the queue/shed/batching paths deterministically.
    pub fn semaphore(&self) -> Arc<Semaphore> {
        Arc::clone(&self.state.sem)
    }

    /// Stop accepting, wake every worker and join them.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Each worker may be parked in accept(); one self-connection
            // per worker unblocks them all.
            for _ in &self.workers {
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Batch mode defers fsync; flush the log once the workers (and
        // therefore every in-flight commit) are done.
        if let Some(d) = self.state.durability.lock().as_mut() {
            let _ = d.sync();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_preserves_lines() {
        let src = "  tc(x, y) :- arc(x, y).  \n\n   tc(x, y) :- tc(x, z), arc(z, y).\n";
        let norm = normalize_program(src);
        assert_eq!(
            norm,
            "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y)."
        );
        assert_eq!(normalize_program(&norm), norm);
        assert_eq!(normalize_program("  \n \n"), "");
    }

    #[test]
    fn server_answers_health_and_sheds_cleanly() {
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
        let server = Server::start(
            Config::default().threads(1),
            ServeConfig::default().addr("127.0.0.1:0").queue_depth(0),
            db,
        )
        .unwrap();
        let addr = server.addr();
        let (status, body) = crate::client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("true"));
        // Unknown route and wrong method are clean errors.
        assert_eq!(crate::client::get(addr, "/nope").unwrap().0, 404);
        assert_eq!(crate::client::post(addr, "/stats", "{}").unwrap().0, 405);
        server.shutdown();
    }
}
