#![allow(clippy::needless_range_loop)]
//! Acceptance tests for the prepare-once / run-many API: one compiled
//! program over many databases, sequentially and from multiple threads.

use std::collections::BTreeSet;
use std::sync::Arc;

use recstep::{Database, Engine, EvalStats, PreparedProgram, Value};

fn tc_oracle(edges: &[(Value, Value)]) -> BTreeSet<(Value, Value)> {
    let nodes: BTreeSet<Value> = edges.iter().flat_map(|&(s, t)| [s, t]).collect();
    let n = nodes.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut reach = vec![vec![false; n]; n];
    for &(s, t) in edges {
        reach[s as usize][t as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for i in 0..n {
        for j in 0..n {
            if reach[i][j] {
                out.insert((i as Value, j as Value));
            }
        }
    }
    out
}

fn db_of(edges: &[(Value, Value)]) -> Database {
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    db
}

/// Shape of a run's statistics that must be invariant across databases
/// evaluated by the same compiled program (the plan is fixed; only the
/// data varies): stratum count, their head relations, and PBME usage.
fn stats_shape(stats: &EvalStats) -> Vec<(Vec<String>, bool)> {
    stats
        .strata
        .iter()
        .map(|s| (s.idbs.clone(), s.pbme))
        .collect()
}

#[test]
fn prepared_tc_runs_over_three_edge_sets() {
    let engine = Engine::builder().threads(4).build().unwrap();
    let tc = engine.prepare(recstep::programs::TC).unwrap();

    let edge_sets: [&[(Value, Value)]; 3] = [
        &[(0, 1), (1, 2), (2, 3)],                 // chain
        &[(0, 1), (1, 0), (2, 3)],                 // cycle + island
        &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4)], // fan-in/fan-out
    ];

    let mut shapes = Vec::new();
    for edges in edge_sets {
        let mut db = db_of(edges);
        let stats = tc.run(&mut db).unwrap();
        let got: BTreeSet<(Value, Value)> = db
            .relation("tc")
            .unwrap()
            .as_pairs()
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(got, tc_oracle(edges), "fixpoint wrong for {edges:?}");
        assert!(stats.iterations >= 1);
        shapes.push(stats_shape(&stats));
    }
    // One compiled plan → identical stats shape on every database.
    assert!(
        shapes.windows(2).all(|w| w[0] == w[1]),
        "stats shape must not vary across databases: {shapes:?}"
    );
}

#[test]
fn one_prepared_program_runs_concurrently_over_two_databases() {
    let engine = Engine::builder().threads(4).build().unwrap();
    let tc: Arc<PreparedProgram> = Arc::new(engine.prepare(recstep::programs::TC).unwrap());

    let chain: Vec<(Value, Value)> = (0..40).map(|i| (i, i + 1)).collect();
    let dense: Vec<(Value, Value)> = (0..20)
        .flat_map(|i| [(i, (i + 3) % 20), (i, (i + 7) % 20)])
        .collect();

    let (got_a, got_b) = std::thread::scope(|scope| {
        let prog_a = Arc::clone(&tc);
        let chain_ref = &chain;
        let a = scope.spawn(move || {
            let mut db = db_of(chain_ref);
            prog_a.run(&mut db).unwrap();
            db.relation("tc")
                .unwrap()
                .as_pairs()
                .unwrap()
                .into_iter()
                .collect::<BTreeSet<_>>()
        });
        let prog_b = Arc::clone(&tc);
        let dense_ref = &dense;
        let b = scope.spawn(move || {
            let mut db = db_of(dense_ref);
            prog_b.run(&mut db).unwrap();
            db.relation("tc")
                .unwrap()
                .as_pairs()
                .unwrap()
                .into_iter()
                .collect::<BTreeSet<_>>()
        });
        (a.join().unwrap(), b.join().unwrap())
    });

    assert_eq!(got_a, tc_oracle(&chain));
    assert_eq!(got_b, tc_oracle(&dense));
}

#[test]
fn many_prepared_programs_share_one_engine_and_database() {
    // The inverse composition: several compiled programs, one database.
    let engine = Engine::builder().threads(2).build().unwrap();
    let tc = engine.prepare(recstep::programs::TC).unwrap();
    let sg = engine.prepare(recstep::programs::SG).unwrap();
    let mut db = db_of(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
    tc.run(&mut db).unwrap();
    sg.run(&mut db).unwrap();
    // Both result relations coexist in the database.
    assert!(db.row_count("tc") > 0);
    assert!(db.row_count("sg") > 0);
    // And re-running TC does not disturb SG's results.
    let sg_before = db.relation("sg").unwrap().to_sorted_vec();
    tc.run(&mut db).unwrap();
    assert_eq!(db.relation("sg").unwrap().to_sorted_vec(), sg_before);
}
