#![allow(clippy::needless_range_loop, clippy::type_complexity)]
//! End-to-end engine tests: every benchmark program on small inputs,
//! cross-checked against independent oracles, across configuration space.
//! All tests drive the Engine / Database / PreparedProgram API.

use std::collections::{BTreeSet, HashMap, HashSet};

use recstep::{
    Config, Database, DedupImpl, Engine, EvalStats, OofMode, PbmeMode, SetDiffStrategy, Value,
};

fn engine(cfg: Config) -> Engine {
    Engine::from_config(cfg.threads(4)).unwrap()
}

/// One-shot evaluation: fresh database, load `arc`, run `src` once.
fn run_on_edges(cfg: Config, edges: &[(Value, Value)], src: &str) -> (Database, EvalStats) {
    let mut db = Database::new().unwrap();
    db.load_edges("arc", edges).unwrap();
    let stats = engine(cfg).prepare(src).unwrap().run(&mut db).unwrap();
    (db, stats)
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    }
}

fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(Value, Value)> {
    let mut rnd = lcg(seed);
    (0..m)
        .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
        .collect()
}

fn tc_oracle(n: usize, edges: &[(Value, Value)]) -> BTreeSet<(Value, Value)> {
    let mut reach = vec![vec![false; n]; n];
    for &(s, t) in edges {
        reach[s as usize][t as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for i in 0..n {
        for j in 0..n {
            if reach[i][j] {
                out.insert((i as Value, j as Value));
            }
        }
    }
    out
}

fn rel_pairs(db: &Database, name: &str) -> BTreeSet<(Value, Value)> {
    db.relation(name)
        .unwrap()
        .as_pairs()
        .unwrap()
        .into_iter()
        .collect()
}

#[test]
fn tc_matches_floyd_warshall() {
    let n = 30;
    let edges = random_edges(n as u64, 80, 42);
    let (db, _) = run_on_edges(
        Config::default().pbme(PbmeMode::Off),
        &edges,
        recstep::programs::TC,
    );
    assert_eq!(rel_pairs(&db, "tc"), tc_oracle(n, &edges));
}

#[test]
fn tc_pbme_agrees_with_tuple_engine() {
    let n = 40;
    let edges = random_edges(n as u64, 120, 7);
    let (tup, _) = run_on_edges(
        Config::default().pbme(PbmeMode::Off),
        &edges,
        recstep::programs::TC,
    );
    let (bit, stats) = run_on_edges(
        Config::default().pbme(PbmeMode::Force),
        &edges,
        recstep::programs::TC,
    );
    assert!(stats.strata.iter().any(|s| s.pbme), "PBME must have run");
    assert_eq!(rel_pairs(&bit, "tc"), rel_pairs(&tup, "tc"));
    assert_eq!(rel_pairs(&bit, "tc"), tc_oracle(n, &edges));
}

#[test]
fn mirrored_tc_rule_is_equivalent() {
    let edges = random_edges(25, 60, 11);
    let mirrored = "tc(x, y) :- arc(x, y).\ntc(x, y) :- arc(x, z), tc(z, y).";
    for pbme in [PbmeMode::Off, PbmeMode::Force] {
        let (db, _) = run_on_edges(Config::default().pbme(pbme), &edges, mirrored);
        assert_eq!(rel_pairs(&db, "tc"), tc_oracle(25, &edges), "pbme={pbme:?}");
    }
}

#[test]
fn sg_all_engines_agree() {
    let edges = random_edges(30, 90, 3);
    // Oracle via fixpoint over sets.
    let mut adj: HashMap<Value, Vec<Value>> = HashMap::new();
    for &(s, t) in &edges {
        adj.entry(s).or_default().push(t);
    }
    let mut oracle: HashSet<(Value, Value)> = HashSet::new();
    for kids in adj.values() {
        for &x in kids {
            for &y in kids {
                if x != y {
                    oracle.insert((x, y));
                }
            }
        }
    }
    loop {
        let mut fresh = Vec::new();
        for &(a, b) in &oracle {
            if let (Some(ka), Some(kb)) = (adj.get(&a), adj.get(&b)) {
                for &x in ka {
                    for &y in kb {
                        if !oracle.contains(&(x, y)) {
                            fresh.push((x, y));
                        }
                    }
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        oracle.extend(fresh);
    }
    let oracle: BTreeSet<(Value, Value)> = oracle.into_iter().collect();
    for pbme in [PbmeMode::Off, PbmeMode::Force] {
        let (db, _) = run_on_edges(Config::default().pbme(pbme), &edges, recstep::programs::SG);
        assert_eq!(rel_pairs(&db, "sg"), oracle, "pbme={pbme:?}");
    }
}

#[test]
fn reach_matches_bfs() {
    let n = 50u64;
    let edges = random_edges(n, 120, 13);
    let seed = 5 as Value;
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &edges).unwrap();
    db.load_relation("id", 1, &[vec![seed]]).unwrap();
    engine(Config::default())
        .prepare(recstep::programs::REACH)
        .unwrap()
        .run(&mut db)
        .unwrap();
    // BFS oracle (reach includes the seed itself via the base rule).
    let mut adj: HashMap<Value, Vec<Value>> = HashMap::new();
    for &(s, t) in &edges {
        adj.entry(s).or_default().push(t);
    }
    let mut seen: BTreeSet<Value> = BTreeSet::new();
    let mut queue = vec![seed];
    seen.insert(seed);
    while let Some(v) = queue.pop() {
        for &t in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(t) {
                queue.push(t);
            }
        }
    }
    let got: BTreeSet<Value> = db
        .relation("reach")
        .unwrap()
        .try_decode::<Value>()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, seen);
}

/// Union-find oracle for CC over the *directed propagation* semantics of the
/// paper's program: labels flow along directed edges, so the fixpoint label
/// of a vertex is the min vertex that reaches it (not the undirected
/// component min). We therefore oracle with directed reachability.
#[test]
fn cc_labels_match_directed_reachability_min() {
    let n = 25;
    let edges = random_edges(n as u64, 70, 19);
    let (db, _) = run_on_edges(Config::default(), &edges, recstep::programs::CC);
    let reach = tc_oracle(n, &edges);
    // cc3(v) = min over {v's own label if v has outgoing edge} ∪ {u | u → v}.
    let mut expect: HashMap<Value, Value> = HashMap::new();
    let sources: BTreeSet<Value> = edges.iter().map(|&(s, _)| s).collect();
    for &s in &sources {
        expect
            .entry(s)
            .and_modify(|m| *m = (*m).min(s))
            .or_insert(s);
    }
    for &(u, v) in &reach {
        if sources.contains(&u) || sources.contains(&v) {
            // label u propagates along u →* v when u itself got a label
            if sources.contains(&u) {
                expect
                    .entry(v)
                    .and_modify(|m| *m = (*m).min(u))
                    .or_insert(u);
            }
        }
    }
    let got: HashMap<Value, Value> = db
        .relation("cc3")
        .unwrap()
        .as_pairs()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, expect);
    // cc2 mirrors cc3 after the final grouping; cc is the distinct labels.
    let cc: BTreeSet<Value> = db
        .relation("cc")
        .unwrap()
        .try_decode::<Value>()
        .unwrap()
        .into_iter()
        .collect();
    let labels: BTreeSet<Value> = expect.values().copied().collect();
    assert_eq!(cc, labels);
}

#[test]
fn sssp_matches_dijkstra() {
    let n = 40u64;
    let mut rnd = lcg(77);
    let edges: Vec<(Value, Value, Value)> = (0..150)
        .map(|_| {
            (
                (rnd() % n) as Value,
                (rnd() % n) as Value,
                (rnd() % 9 + 1) as Value,
            )
        })
        .collect();
    let src = 0 as Value;
    let mut db = Database::new().unwrap();
    db.load_weighted_edges("arc", &edges).unwrap();
    db.load_relation("id", 1, &[vec![src]]).unwrap();
    engine(Config::default())
        .prepare(recstep::programs::SSSP)
        .unwrap()
        .run(&mut db)
        .unwrap();
    // Dijkstra oracle.
    let mut adj: HashMap<Value, Vec<(Value, Value)>> = HashMap::new();
    for &(s, t, w) in &edges {
        adj.entry(s).or_default().push((t, w));
    }
    let mut dist: HashMap<Value, Value> = HashMap::from([(src, 0)]);
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0 as Value, src)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if dist.get(&v).is_some_and(|&cur| d > cur) {
            continue;
        }
        for &(t, w) in adj.get(&v).map(Vec::as_slice).unwrap_or(&[]) {
            let nd = d + w;
            if dist.get(&t).is_none_or(|&cur| nd < cur) {
                dist.insert(t, nd);
                heap.push(std::cmp::Reverse((nd, t)));
            }
        }
    }
    let got: HashMap<Value, Value> = db
        .relation("sssp")
        .unwrap()
        .as_pairs()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, dist);
}

#[test]
fn ntc_is_complement_of_tc_over_nodes() {
    let edges = random_edges(12, 25, 23);
    let (db, _) = run_on_edges(Config::default(), &edges, recstep::programs::NTC);
    let tc = rel_pairs(&db, "tc");
    let nodes: BTreeSet<Value> = edges.iter().flat_map(|&(s, t)| [s, t]).collect();
    let mut expect = BTreeSet::new();
    for &x in &nodes {
        for &y in &nodes {
            if !tc.contains(&(x, y)) {
                expect.insert((x, y));
            }
        }
    }
    assert_eq!(rel_pairs(&db, "ntc"), expect);
}

#[test]
fn gtc_counts_reachable_vertices() {
    let edges = vec![(0, 1), (1, 2), (2, 3)];
    let (db, _) = run_on_edges(Config::default(), &edges, recstep::programs::GTC);
    let got: HashMap<Value, Value> = db
        .relation("gtc")
        .unwrap()
        .as_pairs()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, HashMap::from([(0, 3), (1, 2), (2, 1)]));
}

/// Andersen oracle: naive fixpoint over sets.
fn andersen_oracle(
    address_of: &[(Value, Value)],
    assign: &[(Value, Value)],
    load: &[(Value, Value)],
    store: &[(Value, Value)],
) -> BTreeSet<(Value, Value)> {
    let mut pts: HashSet<(Value, Value)> = address_of.iter().copied().collect();
    loop {
        let mut fresh: Vec<(Value, Value)> = Vec::new();
        let snapshot: Vec<(Value, Value)> = pts.iter().copied().collect();
        for &(y, z) in assign {
            for &(pz, x) in &snapshot {
                if pz == z && !pts.contains(&(y, x)) {
                    fresh.push((y, x));
                }
            }
        }
        for &(y, x) in load {
            for &(px, z) in &snapshot {
                if px == x {
                    for &(pz, w) in &snapshot {
                        if pz == z && !pts.contains(&(y, w)) {
                            fresh.push((y, w));
                        }
                    }
                }
            }
        }
        for &(y, x) in store {
            for &(py, z) in &snapshot {
                if py == y {
                    for &(px, w) in &snapshot {
                        if px == x && !pts.contains(&(z, w)) {
                            fresh.push((z, w));
                        }
                    }
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        pts.extend(fresh);
    }
    pts.into_iter().collect()
}

#[test]
fn andersen_matches_naive_fixpoint() {
    let mut rnd = lcg(31);
    let n = 20u64;
    let mut pick = |m: usize| -> Vec<(Value, Value)> {
        (0..m)
            .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
            .collect()
    };
    let address_of = pick(15);
    let assign = pick(12);
    let load = pick(8);
    let store = pick(8);
    let oracle = andersen_oracle(&address_of, &assign, &load, &store);
    let mut db = Database::new().unwrap();
    // Bulk-load all four input relations in one transaction.
    let mut tx = db.transaction();
    tx.load_edges("addressOf", &address_of).unwrap();
    tx.load_edges("assign", &assign).unwrap();
    tx.load_edges("load", &load).unwrap();
    tx.load_edges("store", &store).unwrap();
    tx.commit().unwrap();
    engine(Config::default())
        .prepare(recstep::programs::ANDERSEN)
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert_eq!(rel_pairs(&db, "pointsTo"), oracle);
}

/// CSPA oracle: naive fixpoint of the full mutually recursive program.
fn cspa_oracle(
    assign: &[(Value, Value)],
    deref: &[(Value, Value)],
) -> (
    BTreeSet<(Value, Value)>,
    BTreeSet<(Value, Value)>,
    BTreeSet<(Value, Value)>,
) {
    let mut vf: HashSet<(Value, Value)> = HashSet::new();
    let mut va: HashSet<(Value, Value)> = HashSet::new();
    let mut ma: HashSet<(Value, Value)> = HashSet::new();
    for &(y, x) in assign {
        vf.insert((y, x));
        vf.insert((x, x));
        vf.insert((y, y));
        ma.insert((x, x));
        ma.insert((y, y));
    }
    loop {
        let mut changed = false;
        let vf_now: Vec<_> = vf.iter().copied().collect();
        let ma_now: Vec<_> = ma.iter().copied().collect();
        let va_now: Vec<_> = va.iter().copied().collect();
        for &(x, z) in assign {
            for &(mz, y) in &ma_now {
                if mz == z && vf.insert((x, y)) {
                    changed = true;
                }
            }
        }
        for &(x, z) in &vf_now {
            for &(z2, y) in &vf_now {
                if z == z2 && vf.insert((x, y)) {
                    changed = true;
                }
            }
        }
        for &(y, x) in deref {
            for &(y2, z) in &va_now {
                if y2 == y {
                    for &(z2, w) in deref {
                        if z2 == z && ma.insert((x, w)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        for &(z, x) in &vf_now {
            for &(z2, y) in &vf_now {
                if z == z2 && va.insert((x, y)) {
                    changed = true;
                }
            }
        }
        for &(z, x) in &vf_now {
            for &(z2, w) in &ma_now {
                if z == z2 {
                    for &(w2, y) in &vf_now {
                        if w2 == w && va.insert((x, y)) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (
        vf.into_iter().collect(),
        va.into_iter().collect(),
        ma.into_iter().collect(),
    )
}

#[test]
fn cspa_mutual_recursion_matches_naive_fixpoint() {
    let mut rnd = lcg(57);
    let n = 12u64;
    let assign: Vec<(Value, Value)> = (0..10)
        .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
        .collect();
    let deref: Vec<(Value, Value)> = (0..10)
        .map(|_| ((rnd() % n) as Value, (rnd() % n) as Value))
        .collect();
    let (vf, va, ma) = cspa_oracle(&assign, &deref);
    let mut db = Database::new().unwrap();
    db.load_edges("assign", &assign).unwrap();
    db.load_edges("dereference", &deref).unwrap();
    engine(Config::default())
        .prepare(recstep::programs::CSPA)
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert_eq!(rel_pairs(&db, "valueFlow"), vf);
    assert_eq!(rel_pairs(&db, "valueAlias"), va);
    assert_eq!(rel_pairs(&db, "memoryAlias"), ma);
}

#[test]
fn csda_long_chain_iterates_deeply() {
    // Chain graph: null flows down ~200 arc steps.
    let len = 200;
    let arc: Vec<(Value, Value)> = (0..len).map(|i| (i as Value, (i + 1) as Value)).collect();
    // PBME off: the point of CSDA is exercising the per-iteration tuple
    // path (the pattern is TC-shaped, so Auto mode would take over).
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &arc).unwrap();
    db.load_edges("nullEdge", &[(0, 0)]).unwrap();
    let stats = engine(Config::default().pbme(PbmeMode::Off))
        .prepare(recstep::programs::CSDA)
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert_eq!(db.row_count("null"), len + 1);
    assert!(
        stats.iterations > len,
        "chain must drive ~one iteration per hop"
    );
}

#[test]
fn every_ablation_config_produces_identical_results() {
    let edges = random_edges(24, 70, 91);
    let reference = {
        let (db, _) = run_on_edges(
            Config::default().pbme(PbmeMode::Off),
            &edges,
            recstep::programs::TC,
        );
        rel_pairs(&db, "tc")
    };
    let configs: Vec<(&str, Config)> = vec![
        ("no-uie", Config::default().uie(false).pbme(PbmeMode::Off)),
        (
            "oof-na",
            Config::default().oof(OofMode::None).pbme(PbmeMode::Off),
        ),
        (
            "oof-fa",
            Config::default().oof(OofMode::Full).pbme(PbmeMode::Off),
        ),
        (
            "opsd",
            Config::default()
                .setdiff(SetDiffStrategy::AlwaysOpsd)
                .pbme(PbmeMode::Off),
        ),
        (
            "tpsd",
            Config::default()
                .setdiff(SetDiffStrategy::AlwaysTpsd)
                .pbme(PbmeMode::Off),
        ),
        ("no-eost", Config::default().eost(false).pbme(PbmeMode::Off)),
        (
            "generic-dedup",
            Config::default()
                .dedup(DedupImpl::Generic)
                .pbme(PbmeMode::Off),
        ),
        ("no-op", Config::no_op()),
        ("pbme", Config::default().pbme(PbmeMode::Force)),
        (
            "pbme-coord",
            Config::default()
                .pbme(PbmeMode::Force)
                .pbme_coordination(Some(16)),
        ),
        (
            "calibrated",
            Config::default().pbme(PbmeMode::Off).calibrate_dsd(true),
        ),
    ];
    for (name, cfg) in configs {
        let (db, _) = run_on_edges(cfg, &edges, recstep::programs::TC);
        assert_eq!(rel_pairs(&db, "tc"), reference, "config {name}");
    }
}

#[test]
fn sg_coordination_agrees_with_plain_pbme() {
    let edges = random_edges(35, 120, 15);
    let (plain, _) = run_on_edges(
        Config::default().pbme(PbmeMode::Force),
        &edges,
        recstep::programs::SG,
    );
    let (coord, _) = run_on_edges(
        Config::default()
            .pbme(PbmeMode::Force)
            .pbme_coordination(Some(8)),
        &edges,
        recstep::programs::SG,
    );
    assert_eq!(rel_pairs(&coord, "sg"), rel_pairs(&plain, "sg"));
}

#[test]
fn inline_facts_work() {
    let mut db = Database::new().unwrap();
    let stats = engine(Config::default())
        .prepare(
            "arc(1, 2). arc(2, 3).\n\
             tc(x, y) :- arc(x, y).\n\
             tc(x, y) :- tc(x, z), arc(z, y).",
        )
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert_eq!(
        rel_pairs(&db, "tc"),
        BTreeSet::from([(1, 2), (2, 3), (1, 3)])
    );
    assert!(stats.queries_issued > 0);
}

#[test]
fn rerun_is_idempotent() {
    let edges = random_edges(15, 40, 1);
    let tc = engine(Config::default())
        .prepare(recstep::programs::TC)
        .unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &edges).unwrap();
    tc.run(&mut db).unwrap();
    let first = rel_pairs(&db, "tc");
    tc.run(&mut db).unwrap();
    assert_eq!(rel_pairs(&db, "tc"), first);
}

#[test]
fn memory_budget_reports_oom() {
    let edges = random_edges(200, 2000, 5);
    let e = Engine::builder()
        .threads(2)
        .pbme(PbmeMode::Off)
        .mem_budget(64 * 1024)
        .build()
        .unwrap();
    let mut db = Database::new().unwrap();
    db.load_edges("arc", &edges).unwrap();
    let err = e
        .prepare(recstep::programs::TC)
        .unwrap()
        .run(&mut db)
        .unwrap_err();
    assert!(err.to_string().contains("out of memory"), "{err}");
}

#[test]
fn eost_defers_io_relative_to_per_query() {
    let edges = random_edges(30, 100, 8);
    let run = |eost: bool| {
        let (db, stats) = run_on_edges(
            Config::default().eost(eost).pbme(PbmeMode::Off),
            &edges,
            recstep::programs::TC,
        );
        (stats.io_flushes, stats.io_bytes, rel_pairs(&db, "tc"))
    };
    let (eost_flushes, _, eost_result) = run(true);
    let (pq_flushes, pq_bytes, pq_result) = run(false);
    assert_eq!(eost_result, pq_result);
    assert!(
        pq_flushes > eost_flushes,
        "per-query commit must flush more often ({pq_flushes} vs {eost_flushes})"
    );
    assert!(pq_bytes > 0);
}

#[test]
fn dsd_switches_algorithms_during_tc() {
    // A long chain makes |R| grow while |Rδ| stays small → β grows and DSD
    // must eventually pick TPSD; OPSD runs at least once at the start.
    // DSD only runs on the rebuild path: with index reuse the fused pass
    // replaces set difference outright, so turn reuse off here.
    let chain: Vec<(Value, Value)> = (0..120).map(|i| (i, i + 1)).collect();
    let (_, stats) = run_on_edges(
        Config::default()
            .setdiff(SetDiffStrategy::Dynamic)
            .index_reuse(false)
            .pbme(PbmeMode::Off),
        &chain,
        recstep::programs::TC,
    );
    assert!(stats.tpsd_runs > 0, "β growth must trigger TPSD");
    assert!(stats.opsd_runs > 0, "early iterations must use OPSD");
}

#[test]
fn stats_account_iterations_and_phases() {
    let edges = random_edges(20, 60, 4);
    let (_, stats) = run_on_edges(
        Config::default().pbme(PbmeMode::Off),
        &edges,
        recstep::programs::TC,
    );
    assert!(stats.iterations >= 2);
    assert_eq!(stats.strata.len(), 2);
    assert!(stats.total.as_nanos() > 0);
    assert!(stats.tuples_considered > 0);
    // Default config streams: all rule evaluation + dedup + set difference
    // lands in the fused pipeline phase and Rt is never merged.
    assert!(stats.phase.pipeline.as_nanos() > 0);
    assert!(stats.pipeline_runs > 0);
    assert_eq!(stats.rt_merge_bytes, 0);
    // The materializing path still reports its own phases.
    let (_, unfused) = run_on_edges(
        Config::default().fused_pipeline(false).pbme(PbmeMode::Off),
        &random_edges(20, 60, 4),
        recstep::programs::TC,
    );
    assert!(unfused.phase.eval.as_nanos() > 0);
    assert!(unfused.phase.dedup.as_nanos() > 0);
    assert_eq!(unfused.phase.pipeline.as_nanos(), 0);
    assert!(unfused.rt_merge_bytes > 0);
}

#[test]
fn unknown_relation_in_program_is_created_empty() {
    // `arc` never loaded: program runs over an empty EDB.
    let mut db = Database::new().unwrap();
    engine(Config::default())
        .prepare(recstep::programs::TC)
        .unwrap()
        .run(&mut db)
        .unwrap();
    assert_eq!(db.row_count("tc"), 0);
}

#[test]
fn arity_conflict_is_an_error() {
    let mut db = Database::new().unwrap();
    db.load_relation("arc", 3, &[vec![1, 2, 3]]).unwrap();
    let prepared = engine(Config::default())
        .prepare(recstep::programs::TC)
        .unwrap();
    assert!(prepared.run(&mut db).is_err());
}

#[test]
fn explain_renders_sql_per_stratum() {
    let e = engine(Config::default());
    let sql = e.prepare(recstep::programs::TC).unwrap().explain_sql();
    assert!(sql.contains("-- stratum 0 (non-recursive)"), "{sql}");
    assert!(sql.contains("-- stratum 1 (recursive)"), "{sql}");
    assert!(sql.contains("INSERT INTO tc_mDelta"), "{sql}");
    assert!(sql.contains("tc_mDelta AS t0"), "{sql}");
    assert!(e.prepare("r(x, y) :- r(x, x).").is_err()); // unsafe head var
}

#[test]
fn symbolic_loading_roundtrips_through_dictionary() {
    let mut dict = recstep_common::dict::Dictionary::new();
    let mut db = Database::new().unwrap();
    db.load_symbolic_edges(
        "arc",
        &mut dict,
        &[("paris", "lyon"), ("lyon", "nice"), ("nice", "rome")],
    )
    .unwrap();
    engine(Config::default())
        .prepare(recstep::programs::TC)
        .unwrap()
        .run(&mut db)
        .unwrap();
    let tc = db.relation("tc").unwrap();
    let paris = dict.get("paris").unwrap();
    let rome = dict.get("rome").unwrap();
    assert!(tc.as_pairs().unwrap().contains(&(paris, rome)));
    assert_eq!(dict.resolve(paris), Some("paris"));
    assert_eq!(dict.len(), 4);
}
