//! The evaluation loop: Algorithm 1 over the relational substrate.
//!
//! The interpreter mirrors the paper's execution strategy:
//!
//! ```text
//! for each stratum s (topological order):
//!   repeat
//!     for each IDB R in s:
//!       Rt ← uieval(rules(R, s))      // UNION ALL of subqueries
//!       analyze(Rt)                   // per the OOF policy
//!       Rδ ← dedup(Rt)                // CCK-GSCHT
//!       analyze(Rδ, R)
//!       ∆R ← Rδ − R                   // OPSD / TPSD / DSD
//!       R  ← R ⊎ ∆R
//!   until ∀R: ∆R = ∅  (once for non-recursive strata)
//! ```
//!
//! Under the default **fused streaming pipeline** (`fused_pipeline`), the
//! four middle lines collapse into the first: the final operator of every
//! subquery streams each produced row through a [`DeltaSink`] that probes
//! the persistent full-`R` index and races into a shared scratch table, so
//! `Rt` never materializes and `uieval` directly yields `∆R`:
//!
//! ```text
//!     for each IDB R in s:
//!       ∆R ← uieval(rules(R, s)) ─▷ probe(full-R index) ─▷ scratch CAS
//!       R  ← R ⊎ ∆R               // one shard append; ∆R is a row range
//! ```
//!
//! The materializing path stays alive behind `--no-fused-pipeline`, for
//! ablations and for configurations that genuinely need a materialized
//! `Rt` (OOF-FA statistics, per-query temp spills, aggregation, IIE).
//!
//! Two further engine-level specializations: recursive aggregates replace
//! dedup + set difference by a monotonic absorb (∆ = strictly improved
//! groups), and TC/SG-shaped strata can be handed to PBME (§5.3).
//!
//! The loop is deliberately free of engine-object state: one [`EvalRun`]
//! borrows the engine's immutable configuration and execution context
//! plus one database's catalog — exclusively, or as a frozen base under a
//! run-local overlay ([`RunCatalog`]) — which is what lets a single
//! [`crate::PreparedProgram`] run concurrently over distinct
//! [`crate::Database`]s *and* concurrently over one shared database.
//! Frozen-relation join indexes are served from the database's shared
//! cross-run [`IndexCache`] (built once across runs, evicted under
//! memory pressure); everything mutable stays run-local.

use std::sync::Arc;
use std::time::Instant;

use recstep_common::hash::{FxHashMap, FxHashSet};
use recstep_common::lang::Expr;
use recstep_common::sched::CancelToken;
use recstep_common::{Error, Result, Value};
use recstep_datalog::plan::{
    AtomVersion, CompiledIdb, CompiledProgram, CompiledStratum, ScanSpec, SubQuery,
};
use recstep_exec::agg::{AggCol, ConcurrentMonoMap, GroupSink, MonotonicAgg};
use recstep_exec::cache::{CacheKey, IndexCache};
use recstep_exec::chain::ChainTable;
use recstep_exec::dedup::deduplicate;
use recstep_exec::index::{PersistentIndex, SharedIndex, SyncAction};
use recstep_exec::join::{
    anti_join_prebuilt_sink, anti_join_sink, cross_join_sink, hash_join_prebuilt_sink,
    hash_join_sink, project_filter, project_filter_sink, JoinSpec,
};
use recstep_exec::key::{bounds_of, KeyMode};
use recstep_exec::setdiff::{set_difference, DsdState};
use recstep_exec::sink::{AggSink, AggTarget, DeltaSink, SinkMode, SinkSampler};
use recstep_exec::view::SupportTable;
use recstep_exec::wcoj::{wcoj_sink, WcojSpec};
use recstep_exec::ExecCtx;
use recstep_storage::{DiskManager, RelId, RelView, Relation, RunCatalog, Schema};

use crate::config::{Config, OofMode, PbmeMode};
use crate::pbme::{detect, fits_budget, PbmePlan};
use crate::stats::{EvalStats, StratumStats};

/// ∆R of one iteration.
///
/// Merging appends `∆R` to the stored relation anyway, and stored
/// relations are strictly append-only until fixpoint — so for the common
/// paths `∆R` is just the appended *row range* of `R`, staged and read
/// back as a zero-copy view (no second materialized relation, no extra
/// row copy). Only monotonic-aggregate deltas own their rows: improved
/// groups are not appended to `R` in head layout.
enum DeltaBuf {
    /// Rows `start..end` of the IDB's stored relation.
    Range(usize, usize),
    /// Separately materialized rows (recursive aggregation).
    Owned(Relation),
}

impl DeltaBuf {
    fn len(&self) -> usize {
        match self {
            DeltaBuf::Range(a, b) => b - a,
            DeltaBuf::Owned(r) => r.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes owned by the delta itself (ranges alias the stored
    /// relation, which the catalog already accounts for).
    fn heap_bytes(&self) -> usize {
        match self {
            DeltaBuf::Range(..) => 0,
            DeltaBuf::Owned(r) => r.heap_bytes(),
        }
    }

    fn view<'a>(&'a self, rel: &'a Relation) -> RelView<'a> {
        match self {
            DeltaBuf::Range(a, b) => rel.range_view(*a, *b),
            DeltaBuf::Owned(r) => r.view(),
        }
    }
}

/// How a stratum's fixpoint is entered.
///
/// A scratch entry is Algorithm 1's: ∆⁰R is everything already in `R`.
/// A seeded entry re-enters a *completed* fixpoint after new tuples were
/// appended (incremental view maintenance): ∆⁰R covers only the rows from
/// the recorded start, the prefix is the Old frontier, and delta-less
/// subqueries are skipped — the maintenance seed pass already evaluated
/// every rule against the changed inputs, so only ∆-propagation remains.
pub(crate) enum StratumEntry {
    /// Fixpoint from scratch (∆⁰R = all of R).
    Scratch,
    /// Re-entry with ∆⁰R = rows from the recorded start per relation.
    Seeded(FxHashMap<RelId, usize>),
}

/// Per-IDB mutable state across the iterations of one stratum.
struct IdbState {
    rel_id: RelId,
    /// ∆R of the previous iteration (head-order layout).
    delta: DeltaBuf,
    /// Row count of R through iteration `t-1` (the Old prefix).
    old_len: usize,
    /// DSD cost-model state.
    dsd: DsdState,
    /// Aggregation handling for aggregated heads.
    agg: Option<AggKind>,
    /// Frozen build-side choices per (subquery, join) for OOF-NA.
    frozen: Vec<Vec<Option<bool>>>,
    /// Persistent full-R membership index (whole-tuple keys): built once
    /// for the stratum, appended after every merge, and probed by the
    /// fused dedup + set-difference pass. `None` until the first
    /// iteration, or always under `index_reuse = false`.
    full_index: Option<PersistentIndex>,
    /// Pre-sizing hint for the next streaming pass's scratch table
    /// (roughly the last iteration's `|∆R|`).
    scratch_hint: usize,
}

/// The shared (read-only) tier of the join cache: a borrow of the
/// database-owned [`IndexCache`] plus this run's pinned snapshots and
/// hit/miss accounting.
struct SharedTier<'c> {
    cache: &'c IndexCache,
    budget: usize,
    /// Snapshots this run is actively probing. Holding the `Arc` pins the
    /// entry against eviction (the cache skips entries with live
    /// borrowers) and keeps it valid even if it *is* dropped from the map.
    pins: FxHashMap<(RelId, Vec<usize>), Arc<SharedIndex>>,
    hits: usize,
    misses: usize,
    evictions: usize,
}

/// Per-run, two-tier cache of join/anti-join build-side tables.
///
/// Keyed on `(relation, key columns)`; only unfiltered `Base`/`Full` scans
/// of catalog relations are cacheable — their row ids are stable and
/// append-only for a stratum's whole fixpoint.
///
/// * **Shared tier** — relations *frozen for this run* (EDBs and anything
///   the program never derives) are served from the database-owned
///   [`IndexCache`]: built at most once across all runs over the database
///   (first builder wins, concurrent racers block on the publish and
///   reuse), pinned by this run while probing. Subject to spill-aware
///   eviction; a dropped entry surfaces as a miss, i.e. a rebuild signal —
///   never a dangling reference.
/// * **Local tier** — mutable build sides (growing IDB `Full` views, and
///   shared-tier fallbacks whose probe values escape the published packed
///   layout) keep the PR-2 behavior: a run-private [`PersistentIndex`],
///   built once and appended the rows each merge adds.
///
/// The cache now lives for the whole run (PR 2 dropped it at stratum end):
/// relations are append-only between IDB resets, `sync_for_probe` rebuilds
/// defensively on any shrink, and the two mid-run clear-and-refill sites
/// (monotonic-aggregate rebuilds, PBME materialization) explicitly
/// [`JoinCache::invalidate`] their relation — an equal-length refill
/// reassigns row ids without tripping the length check, so invalidation
/// there is what makes cross-stratum reuse sound. Counters fold into
/// [`EvalStats`] at run end.
struct JoinCache<'c> {
    enabled: bool,
    shared: Option<SharedTier<'c>>,
    /// Relations this run derives (its IDBs): their build sides grow, so
    /// they are never served from the shared tier.
    mutable_ids: FxHashSet<RelId>,
    map: FxHashMap<(RelId, Vec<usize>), PersistentIndex>,
    builds: usize,
    appends: usize,
    reuses: usize,
    build_rows: usize,
    append_rows: usize,
    maintain: std::time::Duration,
}

impl<'c> JoinCache<'c> {
    fn new(
        enabled: bool,
        shared: Option<(&'c IndexCache, usize)>,
        mutable_ids: FxHashSet<RelId>,
    ) -> Self {
        JoinCache {
            enabled,
            shared: shared.map(|(cache, budget)| SharedTier {
                cache,
                budget,
                pins: FxHashMap::default(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            mutable_ids,
            map: FxHashMap::default(),
            builds: 0,
            appends: 0,
            reuses: 0,
            build_rows: 0,
            append_rows: 0,
            maintain: std::time::Duration::ZERO,
        }
    }

    /// Whether a scan's build side may be served from the cache.
    fn cacheable(catalog: &RunCatalog<'_>, scan: &ScanSpec) -> Option<RelId> {
        if scan.filters.is_empty() && matches!(scan.version, AtomVersion::Base | AtomVersion::Full)
        {
            catalog.lookup(&scan.rel)
        } else {
            None
        }
    }

    /// A probe-ready `(table, key mode)` over `rel_id`'s current rows,
    /// keyed on `cols`: served from the shared tier when the relation is
    /// frozen for this run, otherwise built on first use and synchronized
    /// incrementally, with the compact-key layout invalidated (hashed
    /// rebuild, once) when probe values escape it.
    fn probe_ready(
        &mut self,
        ctx: &ExecCtx,
        catalog: &RunCatalog<'_>,
        rel_id: RelId,
        cols: &[usize],
        probe: RelView<'_>,
        probe_cols: &[usize],
    ) -> (&ChainTable, &KeyMode) {
        let t0 = Instant::now();
        let base = catalog.rel(rel_id).view();
        let key = (rel_id, cols.to_vec());
        if !self.map.contains_key(&key) {
            if let Some(tier) = self.shared.as_mut() {
                if !self.mutable_ids.contains(&rel_id) && !base.is_empty() {
                    if let Some(version) = catalog.shared_version(rel_id) {
                        let pinned_ok = tier.pins.get(&key).is_some_and(|idx| {
                            idx.rows() == base.len() && idx.admits_probe(probe, probe_cols)
                        });
                        // A snapshot only helps if its key mode admits
                        // this probe, and the mode is knowable *before*
                        // building (it derives from the frozen base's
                        // bounds — exactly what `SharedIndex::build`
                        // uses). An escaping probe therefore skips the
                        // shared tier entirely: no useless snapshot is
                        // published against the cache budget, and no
                        // phantom hit is counted while every run pays a
                        // local rebuild anyway.
                        let admissible = pinned_ok
                            || match KeyMode::for_view(base, cols) {
                                KeyMode::Hashed => true,
                                KeyMode::Packed(layout) => {
                                    bounds_of(probe, probe_cols).is_none_or(|b| layout.covers(&b))
                                }
                            };
                        if pinned_ok {
                            self.reuses += 1;
                        } else {
                            // The pin (if any) is stale or does not admit
                            // this probe: drop it *unconditionally* so the
                            // fallthrough below can never serve a packed
                            // snapshot to an escaping probe (packed keys
                            // wrap out-of-range values, and exact mode
                            // skips tuple re-verification — a stale pin
                            // would mean wrong join results, not just
                            // wasted work).
                            tier.pins.remove(&key);
                        }
                        if !pinned_ok && admissible {
                            let ckey = CacheKey {
                                rel: rel_id,
                                version,
                                cols: cols.to_vec(),
                            };
                            let out = tier.cache.get_or_build(&ckey, tier.budget, || {
                                SharedIndex::build(ctx, base, cols.to_vec())
                            });
                            if out.built {
                                tier.misses += 1;
                                self.builds += 1;
                                self.build_rows += base.len();
                            } else {
                                tier.hits += 1;
                            }
                            tier.evictions += out.evicted;
                            // Belt and braces: the deferred-mode corner
                            // (snapshot built over rows that arrived
                            // after an empty-view mode choice) re-checks
                            // against the actual snapshot.
                            if out.index.rows() == base.len()
                                && out.index.admits_probe(probe, probe_cols)
                            {
                                tier.pins.insert(key.clone(), out.index);
                            }
                        }
                        if let Some(idx) = tier.pins.get(&key) {
                            self.maintain += t0.elapsed();
                            return (idx.table(), idx.mode());
                        }
                    }
                }
            }
            self.builds += 1;
            self.build_rows += base.len();
            self.map.insert(
                key.clone(),
                PersistentIndex::build(ctx, base, cols.to_vec()),
            );
            let index = self.map.get_mut(&key).expect("just inserted");
            if let SyncAction::Rebuilt = index.sync_for_probe(ctx, base, probe, probe_cols) {
                self.builds += 1;
                self.build_rows += base.len();
            }
            self.maintain += t0.elapsed();
            let index = self.map.get(&key).expect("just inserted");
            return (index.table(), index.mode());
        }
        let index = self.map.get_mut(&key).expect("checked above");
        match index.sync_for_probe(ctx, base, probe, probe_cols) {
            SyncAction::Reused => self.reuses += 1,
            SyncAction::Appended(n) => {
                self.appends += 1;
                self.append_rows += n;
            }
            SyncAction::Rebuilt => {
                self.builds += 1;
                self.build_rows += base.len();
            }
        }
        self.maintain += t0.elapsed();
        let index = self.map.get(&key).expect("checked above");
        (index.table(), index.mode())
    }

    /// Heap bytes of the run-local tier (shared snapshots are accounted by
    /// the database cache's resident total).
    fn heap_bytes(&self) -> usize {
        self.map.values().map(PersistentIndex::heap_bytes).sum()
    }

    /// Resident bytes of the shared tier's backing cache (0 without one).
    fn shared_resident_bytes(&self) -> usize {
        self.shared.as_ref().map_or(0, |t| t.cache.resident_bytes())
    }

    /// Drop every cached build side over `rel_id`.
    ///
    /// Required whenever a relation is *cleared and refilled* mid-run
    /// (monotonic-aggregate rebuilds, PBME materialization): refilling
    /// reassigns row ids, and a refill to an equal-or-larger length would
    /// pass the length-based `sync_for_probe` check and serve stale
    /// row-id mappings. The append-only contract the cache relies on
    /// holds *between* these sites, not across them.
    fn invalidate(&mut self, rel_id: RelId) {
        self.map.retain(|(id, _), _| *id != rel_id);
        if let Some(tier) = self.shared.as_mut() {
            tier.pins.retain(|(id, _), _| *id != rel_id);
        }
    }

    /// Memory-pressure spill: release this run's pins (mid-stratum drop —
    /// the next probe re-fetches or rebuilds) and evict the shared tier
    /// down to `target` resident bytes. Returns the bytes actually freed.
    fn spill_for_pressure(&mut self, target: usize) -> usize {
        match self.shared.as_mut() {
            Some(tier) => {
                tier.pins.clear();
                let (evicted, freed) = tier.cache.evict_to_fit(target);
                tier.evictions += evicted;
                freed
            }
            None => 0,
        }
    }

    /// Fold the run's cache activity into the run statistics.
    fn fold_into(&self, stats: &mut EvalStats) {
        stats.index.join_builds += self.builds;
        stats.index.join_appends += self.appends;
        stats.index.join_reuses += self.reuses;
        stats.index.build_rows += self.build_rows;
        stats.index.append_rows += self.append_rows;
        stats.index.bytes_peak = stats.index.bytes_peak.max(self.heap_bytes());
        stats.phase.index += self.maintain;
        if let Some(tier) = &self.shared {
            stats.index.cache_hits += tier.hits;
            stats.index.cache_misses += tier.misses;
            stats.index.cache_evictions += tier.evictions;
            stats.index.cache_bytes = tier.cache.resident_bytes();
        }
    }
}

/// How an aggregated IDB is evaluated.
enum AggKind {
    /// Recursive aggregation: monotonic MIN/MAX map with improvement deltas.
    Mono(MonoState),
    /// Non-recursive aggregation: one parallel group-by pass.
    Plain {
        group_positions: Vec<usize>,
        agg_positions: Vec<usize>,
        funcs: Vec<recstep_common::lang::AggFunc>,
    },
}

/// The monotonic-aggregate map backing a recursive aggregated IDB: which
/// variant a run uses is decided once by the `fused_agg` gate.
enum MonoEval {
    /// Sequential map fed by a per-iteration group-by over a materialized
    /// pre-aggregation `Rt` (the `--no-fused-agg` ablation path).
    Seq(MonotonicAgg),
    /// Concurrent CAS-on-best map fed directly by operator workers at the
    /// probe site (group-at-source streaming): its dirty-list drain *is*
    /// the iteration's ∆.
    Conc(ConcurrentMonoMap),
}

impl MonoEval {
    fn heap_bytes(&self) -> usize {
        match self {
            MonoEval::Seq(m) => m.heap_bytes(),
            MonoEval::Conc(m) => m.heap_bytes(),
        }
    }

    fn to_columns(&self, group_arity: usize) -> Vec<Vec<Value>> {
        match self {
            MonoEval::Seq(m) => m.to_columns(group_arity),
            MonoEval::Conc(m) => m.to_columns(group_arity),
        }
    }
}

struct MonoState {
    mono: MonoEval,
    group_positions: Vec<usize>,
    agg_position: usize,
}

/// Reservoir size for sink-sampled OOF-FA statistics (rows held, not rows
/// counted — exact cardinalities come from the sink's counters).
const SINK_SAMPLE_CAP: usize = 1024;

/// One evaluation of a compiled program over one database.
///
/// Borrows the engine side (`cfg`, `ctx`, `alpha`) immutably and the
/// database side through a [`RunCatalog`]: exclusively (`&mut Catalog` +
/// the simulated store) for classic runs, or as a frozen base plus
/// run-local overlay for shared-mode runs — which is what lets N
/// evaluations proceed concurrently over one database. `cache` is the
/// database's shared cross-run index cache (`None` under
/// `--no-shared-index-cache`).
pub(crate) struct EvalRun<'e, 'd> {
    pub(crate) cfg: &'e Config,
    pub(crate) ctx: &'e ExecCtx,
    pub(crate) alpha: f64,
    pub(crate) catalog: RunCatalog<'d>,
    pub(crate) disk: Option<&'d mut DiskManager>,
    pub(crate) cache: Option<&'d IndexCache>,
    /// Cooperative cancellation, polled at iteration boundaries (the only
    /// points where aborting leaves no partial state). `None` for
    /// uncancellable runs.
    pub(crate) cancel: Option<&'e CancelToken>,
}

impl EvalRun<'_, '_> {
    /// Evaluate a compiled program to fixpoint (Algorithm 1).
    pub(crate) fn run(&mut self, prog: &CompiledProgram) -> Result<EvalStats> {
        self.run_impl(prog, None)
    }

    /// [`EvalRun::run`], but hand the run's final full-R indexes back to
    /// the caller (keyed by relation name) instead of publishing them to
    /// the shared cache — the entry point for a materialized view that
    /// keeps the indexes alive for later incremental refreshes.
    pub(crate) fn run_carry(
        &mut self,
        prog: &CompiledProgram,
        carry: &mut FxHashMap<String, PersistentIndex>,
    ) -> Result<EvalStats> {
        self.run_impl(prog, Some(carry))
    }

    fn run_impl(
        &mut self,
        prog: &CompiledProgram,
        carry_out: Option<&mut FxHashMap<String, PersistentIndex>>,
    ) -> Result<EvalStats> {
        let t0 = Instant::now();
        let busy0 = self.ctx.pool.busy_ns_total();
        let mut stats = EvalStats::default();

        // Create relations; reset IDBs (Algorithm 1 line 2).
        for decl in &prog.relations {
            match self.catalog.lookup(&decl.name) {
                Some(id) => {
                    if self.catalog.rel(id).arity() != decl.arity {
                        return Err(Error::exec(format!(
                            "relation '{}' has arity {}, program expects {}",
                            decl.name,
                            self.catalog.rel(id).arity(),
                            decl.arity
                        )));
                    }
                    if decl.is_idb {
                        self.catalog.reset_for_run(id);
                    }
                }
                None => {
                    self.catalog
                        .create(Schema::with_arity(&decl.name, decl.arity))?;
                }
            }
        }
        // Inline facts load set-wise: a fact already present in its
        // relation is not pushed again, so running the same prepared
        // program repeatedly over one database is idempotent (EDB
        // relations are not reset between runs and would otherwise
        // accumulate one copy of every fact per run). Presence is checked
        // by scanning the stored columns directly — programs hold at most
        // a handful of inline facts, and a scan allocates nothing, unlike
        // materializing a row set of a possibly bulk-loaded relation.
        for (name, vals) in &prog.facts {
            let id = self
                .catalog
                .lookup(name)
                .ok_or_else(|| Error::exec(format!("fact for unknown relation '{name}'")))?;
            let rel = self.catalog.rel(id);
            let present =
                (0..rel.len()).any(|r| (0..rel.arity()).all(|c| rel.col(c)[r] == vals[c]));
            if !present {
                self.catalog.rel_mut(id).push_row(vals);
            }
        }

        // Relations this run derives: their build-side indexes grow, so
        // only everything else is eligible for the shared cross-run tier.
        let mutable_ids: FxHashSet<RelId> = prog
            .relations
            .iter()
            .filter(|d| d.is_idb)
            .filter_map(|d| self.catalog.lookup(&d.name))
            .collect();
        // Join build-side tables persist across the whole run (relations
        // are append-only between IDB resets, and syncs rebuild
        // defensively on shrink), with frozen relations served from the
        // database's shared cross-run cache.
        let mut jcache = JoinCache::new(
            self.cfg.index_reuse,
            self.cache.map(|c| (c, self.cfg.index_cache_budget_bytes)),
            mutable_ids,
        );

        // Full-R indexes survive their stratum: stratification evaluates
        // every IDB in exactly one stratum, so a carried index only ever
        // needs an incremental sync (and the sync is defensive anyway).
        // For TC-shaped programs this makes the whole run build the table
        // exactly once — the base stratum builds, the recursive one grows.
        let mut index_carry: FxHashMap<RelId, PersistentIndex> = FxHashMap::default();
        for stratum in &prog.strata {
            let pbme_plan = match self.cfg.pbme {
                PbmeMode::Off => None,
                PbmeMode::Auto | PbmeMode::Force => detect(stratum),
            };
            let mut handled = false;
            if let Some(plan) = pbme_plan {
                handled = self.try_run_pbme(stratum, &plan, &mut stats)?;
                if handled {
                    // PBME cleared and refilled the IDB: cached build
                    // sides over it (if any) hold reassigned row ids.
                    if let Some(id) = self.catalog.lookup(plan.idb()) {
                        jcache.invalidate(id);
                    }
                }
            }
            if !handled {
                self.run_stratum(
                    stratum,
                    &mut index_carry,
                    &mut jcache,
                    &mut stats,
                    StratumEntry::Scratch,
                )?;
            }
        }
        // A carrying caller (a materialized view) keeps the indexes alive
        // itself; hand them over instead of publishing.
        if let Some(out) = carry_out {
            for (rel_id, index) in index_carry.drain() {
                let name = self.catalog.rel(rel_id).schema().name.clone();
                out.insert(name, index);
            }
        }
        // Publish the final full-R indexes of this run's IDB results into
        // the shared cross-run cache (PR 4 follow-up — only worth it once
        // runs are long-lived). Under a query service the results of one
        // program are frequently the frozen inputs of the next (anti-joins
        // and set differences probe them whole-tuple), so the table this
        // run already built keeps amortizing instead of dying with the
        // run. Exclusive runs only: shared-mode results live in a
        // run-local overlay, so their versions name nothing durable.
        if self.cfg.publish_idb_indexes && self.catalog.as_exclusive().is_some() {
            if let Some(cache) = self.cache {
                for (rel_id, index) in index_carry.drain() {
                    let Some(version) = self.catalog.shared_version(rel_id) else {
                        continue;
                    };
                    if index.rows() != self.catalog.rel(rel_id).len() {
                        continue; // trails the relation (e.g. a mono rebuild)
                    }
                    let key = CacheKey {
                        rel: rel_id,
                        version,
                        cols: index.key_cols().to_vec(),
                    };
                    // Freeze moves the already-built table. The nominal
                    // per-row build cost stands in for the unmeasured
                    // original build so eviction does not treat the entry
                    // as free to rebuild.
                    let cost = std::time::Duration::from_nanos(index.rows() as u64 * 25);
                    let mut moved = Some(index);
                    let out = cache.get_or_build(&key, self.cfg.index_cache_budget_bytes, || {
                        moved.take().expect("first builder wins").freeze(cost)
                    });
                    stats.index.cache_evictions += out.evicted;
                    if out.built {
                        stats.index.published += 1;
                    }
                }
            }
        }
        drop(index_carry);
        jcache.fold_into(&mut stats);
        drop(jcache);

        // EOST: commit everything once at fixpoint (exclusive runs only;
        // shared-mode results live in the run's overlay, not the store).
        if let Some(disk) = self.disk.as_deref_mut() {
            let t_io = Instant::now();
            let catalog = self
                .catalog
                .as_exclusive()
                .expect("store-backed runs own their catalog exclusively");
            disk.commit_all(|name| catalog.lookup(name).map(|id| catalog.rel(id)))?;
            stats.phase.io += t_io.elapsed();
            stats.io_bytes = disk.bytes_written();
            stats.io_flushes = disk.flushes();
        }
        stats.total = t0.elapsed();
        stats.busy =
            std::time::Duration::from_nanos(self.ctx.pool.busy_ns_total().saturating_sub(busy0));
        stats.peak_bytes = stats.peak_bytes.max(self.catalog.heap_bytes());
        Ok(stats)
    }

    /// Attempt PBME on a TC/SG-shaped stratum. Returns false (fall back to
    /// tuples) when the Auto-mode budget check or id-domain check fails.
    fn try_run_pbme(
        &mut self,
        _stratum: &CompiledStratum,
        plan: &PbmePlan,
        stats: &mut EvalStats,
    ) -> Result<bool> {
        let t = Instant::now();
        let edge_id = match self.catalog.lookup(plan.edges()) {
            Some(id) => id,
            None => return Ok(false),
        };
        let idb_id = self
            .catalog
            .lookup(plan.idb())
            .expect("idb relation exists");
        let edge_rel = self.catalog.rel(edge_id);
        let idb_rel = self.catalog.rel(idb_id);
        // Dense-integer domain required: every id in [0, u32::MAX).
        let max_id = {
            let mut m: Value = -1;
            for rel in [edge_rel, idb_rel] {
                for c in 0..2 {
                    for &v in rel.col(c) {
                        if v < 0 || v >= u32::MAX as Value {
                            return Ok(false);
                        }
                        m = m.max(v);
                    }
                }
            }
            m
        };
        let n = (max_id + 1).max(1) as usize;
        if self.cfg.pbme == PbmeMode::Auto
            && !fits_budget(n, edge_rel.len(), self.cfg.mem_budget_bytes)
        {
            return Ok(false);
        }
        let pairs = |rel: &Relation, swap: bool| -> Vec<(u32, u32)> {
            let (a, b) = (rel.col(0), rel.col(1));
            (0..rel.len())
                .map(|r| {
                    if swap {
                        (b[r] as u32, a[r] as u32)
                    } else {
                        (a[r] as u32, b[r] as u32)
                    }
                })
                .collect()
        };
        let mut coord_posted = 0u64;
        let (matrix, transpose_out) = match plan {
            PbmePlan::Tc { mirrored, .. } => {
                let edges = pairs(edge_rel, *mirrored);
                let seeds = pairs(idb_rel, *mirrored);
                (
                    recstep_bitmatrix::tc_closure_seeded(&self.ctx.pool, n, &seeds, &edges),
                    *mirrored,
                )
            }
            PbmePlan::Sg { .. } => {
                let edges = pairs(edge_rel, false);
                let seeds = pairs(idb_rel, false);
                let m = match self.cfg.pbme_coordination {
                    Some(threshold) => {
                        let (m, cs) = recstep_bitmatrix::sg_closure_coordinated_seeded(
                            &self.ctx.pool,
                            n,
                            &edges,
                            threshold,
                            Some(&seeds),
                        );
                        coord_posted = cs.orders_posted;
                        m
                    }
                    None => recstep_bitmatrix::sg_closure_seeded(
                        &self.ctx.pool,
                        n,
                        &edges,
                        Some(&seeds),
                    ),
                };
                (m, false)
            }
        };
        stats.pbme_matrix_bytes = stats.pbme_matrix_bytes.max(matrix.heap_bytes());
        stats.coord_orders_posted += coord_posted;
        // Materialize the closure back into the stored relation.
        let rel = self.catalog.rel_mut(idb_id);
        rel.clear();
        let ones = matrix.count_ones();
        let mut cols = vec![Vec::with_capacity(ones), Vec::with_capacity(ones)];
        for i in 0..matrix.n() {
            for j in matrix.row_ones(i) {
                let (a, b) = if transpose_out { (j, i) } else { (i, j) };
                cols[0].push(a as Value);
                cols[1].push(b as Value);
            }
        }
        rel.append_columns(cols);
        if let Some(disk) = self.disk.as_deref_mut() {
            let t_io = Instant::now();
            let rel = self.catalog.rel(idb_id);
            disk.note_dirty(rel)?;
            stats.phase.io += t_io.elapsed();
        }
        stats.phase.pbme += t.elapsed();
        stats.iterations += 1;
        stats.strata.push(StratumStats {
            idbs: vec![plan.idb().to_string()],
            iterations: 1,
            pbme: true,
        });
        stats.peak_bytes = stats
            .peak_bytes
            .max(self.catalog.heap_bytes() + stats.pbme_matrix_bytes);
        Ok(true)
    }

    /// Tuple-based evaluation of one stratum (the Algorithm 1 inner loop).
    fn run_stratum(
        &mut self,
        stratum: &CompiledStratum,
        index_carry: &mut FxHashMap<RelId, PersistentIndex>,
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
        entry: StratumEntry,
    ) -> Result<()> {
        let seeded = matches!(entry, StratumEntry::Seeded(_));
        // Initialize per-IDB state.
        let mut states: Vec<IdbState> = Vec::with_capacity(stratum.idbs.len());
        for idb in &stratum.idbs {
            let rel_id = self.catalog.lookup(&idb.rel).expect("idb relation exists");
            let rel = self.catalog.rel(rel_id);
            // ∆R of iteration 0: from scratch, everything already in R
            // (facts and earlier-strata results); re-entering a completed
            // fixpoint, only the rows appended since its recorded start —
            // everything before is the already-converged Old frontier.
            let start = match &entry {
                StratumEntry::Scratch => 0,
                StratumEntry::Seeded(starts) => starts.get(&rel_id).copied().unwrap_or(rel.len()),
            };
            let delta = DeltaBuf::Range(start, rel.len());
            let agg = match &idb.agg {
                None => None,
                Some(shape) if stratum.recursive => {
                    if shape.funcs.len() != 1 {
                        return Err(Error::analysis(format!(
                            "IDB '{}' aggregates {} columns; recursive aggregation supports \
                             exactly one aggregate term per head",
                            idb.rel,
                            shape.funcs.len()
                        )));
                    }
                    // Seed from facts already in R (earlier strata).
                    let mut group = Vec::with_capacity(shape.group_positions.len());
                    let mono = if self.fused_agg_applies() {
                        let mut conc = ConcurrentMonoMap::new(
                            shape.funcs[0],
                            shape.group_positions.len(),
                            rel.len().max(1024),
                        )?;
                        for r in 0..rel.len() {
                            group.clear();
                            group.extend(shape.group_positions.iter().map(|&p| rel.col(p)[r]));
                            conc.absorb(&group, rel.col(shape.agg_positions[0])[r]);
                        }
                        // Seeds are pre-existing facts, not this run's ∆.
                        let _ = conc.take_improved();
                        conc.maybe_rehash();
                        MonoEval::Conc(conc)
                    } else {
                        let mut seq = MonotonicAgg::new(shape.funcs[0])?;
                        for r in 0..rel.len() {
                            group.clear();
                            group.extend(shape.group_positions.iter().map(|&p| rel.col(p)[r]));
                            seq.absorb(&group, rel.col(shape.agg_positions[0])[r]);
                        }
                        MonoEval::Seq(seq)
                    };
                    Some(AggKind::Mono(MonoState {
                        mono,
                        group_positions: shape.group_positions.clone(),
                        agg_position: shape.agg_positions[0],
                    }))
                }
                Some(shape) => {
                    if !rel.is_empty() {
                        return Err(Error::analysis(format!(
                            "aggregated IDB '{}' is defined across strata with non-extremal \
                             aggregation; this engine evaluates such heads in a single stratum",
                            idb.rel
                        )));
                    }
                    Some(AggKind::Plain {
                        group_positions: shape.group_positions.clone(),
                        agg_positions: shape.agg_positions.clone(),
                        funcs: shape.funcs.clone(),
                    })
                }
            };
            let scratch_hint = self.catalog.rel(rel_id).len().max(1024);
            states.push(IdbState {
                rel_id,
                delta,
                old_len: start,
                dsd: DsdState::new(self.alpha),
                agg,
                frozen: idb
                    .subqueries
                    .iter()
                    .map(|sq| vec![None; sq.joins.len()])
                    .collect(),
                full_index: index_carry.remove(&rel_id),
                scratch_hint,
            });
        }

        let mut iterations = 0usize;
        loop {
            if self.cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(Error::Cancelled);
            }
            // Fault-injection site for the service's panic-isolation and
            // error-path tests: one boundary per fixpoint iteration.
            recstep_common::fail_point!("eval::fixpoint");
            iterations += 1;
            let mut all_empty = true;
            // The paper keeps ∆R of the previous iteration alive while the
            // current iteration's ∆R is being produced ("two temporary
            // tables are created for each idb R", §4): every IDB of the
            // stratum must read the *previous* deltas, so the new ones are
            // staged and swapped in only after the full pass. Row-range
            // deltas make this free — R is append-only until fixpoint, so
            // a previously staged range stays valid while R grows.
            let mut staged: Vec<Option<DeltaBuf>> = (0..stratum.idbs.len()).map(|_| None).collect();
            for (i, idb) in stratum.idbs.iter().enumerate() {
                let delta = self.step_idb(stratum, idb, i, &mut states, jcache, stats, seeded)?;
                if !delta.is_empty() {
                    all_empty = false;
                }
                staged[i] = Some(delta);
            }
            for (state, new_delta) in states.iter_mut().zip(staged) {
                state.delta = new_delta.expect("every idb staged a delta");
            }
            // Memory budget check (how OOM is reported honestly). Persistent
            // indexes — including the shared cache's resident snapshots —
            // are live state and count against the budget.
            let cache_resident = jcache.shared_resident_bytes();
            let mut live = self.catalog.heap_bytes()
                + jcache.heap_bytes()
                + cache_resident
                + index_carry
                    .values()
                    .map(PersistentIndex::heap_bytes)
                    .sum::<usize>()
                + states
                    .iter()
                    .map(|s| {
                        s.delta.heap_bytes()
                            + s.full_index.as_ref().map_or(0, PersistentIndex::heap_bytes)
                            + match &s.agg {
                                Some(AggKind::Mono(m)) => m.mono.heap_bytes(),
                                _ => 0,
                            }
                    })
                    .sum::<usize>();
            stats.peak_bytes = stats.peak_bytes.max(live);
            // Running high-water mark: entries dropped later by
            // `invalidate` or a pressure spill must still count toward
            // the run's index peak (fold_into only sees what survived).
            stats.index.bytes_peak = stats
                .index
                .bytes_peak
                .max(jcache.heap_bytes() + cache_resident);
            if live > self.cfg.mem_budget_bytes {
                // Spill the shared index tier before reporting OOM: drop
                // this run's pins (a mid-stratum drop — the next probe
                // misses and rebuilds) and evict cold entries. Shared
                // snapshots are pure caches, so this only trades rebuild
                // time for memory.
                let overrun = live - self.cfg.mem_budget_bytes;
                let target = cache_resident.saturating_sub(overrun);
                live -= jcache.spill_for_pressure(target);
            }
            if live > self.cfg.mem_budget_bytes {
                return Err(Error::exec(format!(
                    "out of memory: {} live > {} budget",
                    live, self.cfg.mem_budget_bytes
                )));
            }
            if !stratum.recursive || all_empty {
                break;
            }
        }
        stats.iterations += iterations;

        // Monotonic aggregated IDBs: rebuild stored relation from the map.
        for (i, idb) in stratum.idbs.iter().enumerate() {
            let state = &states[i];
            if let Some(AggKind::Mono(mono_state)) = &state.agg {
                let g = mono_state.group_positions.len();
                let flat = mono_state.mono.to_columns(g);
                let mut cols = vec![Vec::new(); idb.arity];
                for (gi, &pos) in mono_state.group_positions.iter().enumerate() {
                    cols[pos] = flat[gi].clone();
                }
                cols[mono_state.agg_position] = flat[g].clone();
                let rel = self.catalog.rel_mut(state.rel_id);
                rel.clear();
                rel.append_columns(cols);
                // The clear-and-refill reassigned row ids: any cached
                // build side over this relation is stale even at equal
                // length, so drop it before later strata can probe it.
                jcache.invalidate(state.rel_id);
                if let Some(disk) = self.disk.as_deref_mut() {
                    let t_io = Instant::now();
                    let rel = self.catalog.rel(state.rel_id);
                    disk.note_dirty(rel)?;
                    stats.phase.io += t_io.elapsed();
                }
            }
        }

        // Hand the full-R indexes back for later strata that re-read these
        // relations (they are frozen from here on, so the indexes stay
        // valid; `append` double-checks defensively on reuse).
        for state in states {
            if let Some(index) = state.full_index {
                index_carry.insert(state.rel_id, index);
            }
        }

        stats.strata.push(StratumStats {
            idbs: stratum.idbs.iter().map(|i| i.rel.clone()).collect(),
            iterations,
            pbme: false,
        });
        Ok(())
    }

    /// Whether the fused streaming pipeline evaluates this IDB: the paths
    /// excluded here genuinely need a materialized `Rt` (per-query commit
    /// mode spills it, IIE stages per-subquery temporaries) or have no
    /// full-R index to probe (`index_reuse` off). OOF-FA is *not*
    /// excluded: a [`SinkSampler`] attached to the delta sink mirrors
    /// every offered row, and the statistics pass reads the reservoir in
    /// place of an `Rt` re-scan — same as the aggregated path.
    /// Non-recursive strata stream too — their single pass dedups across
    /// rules at source the same way. Aggregated heads stream through
    /// their own group-at-source sink instead (see
    /// [`Self::fused_agg_applies`]).
    fn fused_applies(&self, state: &IdbState) -> bool {
        self.cfg.fused_pipeline
            && self.cfg.index_reuse
            && self.cfg.uie
            && self.cfg.eost
            && state.agg.is_none()
    }

    /// Whether group-at-source streaming evaluates aggregated IDBs: every
    /// produced row is folded into a concurrent aggregate state at the
    /// probe site, so neither a materialized pre-aggregation `Rt` nor a
    /// full-R probe index is involved. Requires UIE (per-subquery temp
    /// staging would re-materialize the stream) and EOST (per-query commit
    /// mode spills the temporaries the sink no longer produces). OOF-FA is
    /// *not* excluded: the sink samples the statistics `analyze(Rt)` needs
    /// (reservoir + exact counts) while rows stream through.
    fn fused_agg_applies(&self) -> bool {
        self.cfg.fused_agg && self.cfg.uie && self.cfg.eost
    }

    /// Run the OOF-FA statistics pass from a sink's reservoir sample
    /// instead of a materialized `Rt` (no-op without a sampler).
    fn note_sink_stats(
        &mut self,
        sampler: Option<&SinkSampler>,
        rel_id: RelId,
        stats: &mut EvalStats,
    ) {
        let Some(s) = sampler else { return };
        let t_an = Instant::now();
        let cols = s.columns();
        let _ = recstep_storage::stats::analyze_view(
            RelView::over(&cols),
            recstep_storage::StatsLevel::Full,
        );
        self.catalog.analyze_full(rel_id);
        stats.sink_stat_samples += s.sampled();
        stats.phase.analyze += t_an.elapsed();
    }

    /// One group-at-source streaming step for an aggregated IDB: every
    /// subquery's final operator folds each produced row into a concurrent
    /// aggregate state (`AggSink`) at the probe site, so the
    /// pre-aggregation `Rt` is never buffered, merged, or re-scanned — the
    /// sink's flush yields ∆R (monotonic heads: the strictly improved
    /// groups off the dirty list; plain group-by heads: the merged shard
    /// partials) directly.
    fn step_idb_agg_fused(
        &mut self,
        stratum: &CompiledStratum,
        idb: &CompiledIdb,
        idx: usize,
        states: &mut [IdbState],
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
    ) -> Result<DeltaBuf> {
        let sampler =
            (self.cfg.oof == OofMode::Full).then(|| SinkSampler::new(idb.arity, SINK_SAMPLE_CAP));
        let rel_id = states[idx].rel_id;
        let t_pipe = Instant::now();
        if matches!(states[idx].agg, Some(AggKind::Mono(_))) {
            // --- Recursive monotonic head: CAS-on-best at the probe site. ---
            let (out, considered) = {
                let Some(AggKind::Mono(ms)) = &states[idx].agg else {
                    unreachable!("checked above")
                };
                let MonoEval::Conc(map) = &ms.mono else {
                    unreachable!("the fused-agg gate constructs the concurrent map")
                };
                let sink = AggSink::new(AggTarget::Mono(map), sampler);
                let out = eval_idb(
                    self.ctx,
                    self.cfg,
                    &self.catalog,
                    stratum,
                    idb,
                    states,
                    idx,
                    jcache,
                    &SinkMode::Agg(&sink),
                    false,
                )?;
                // Close the pipeline timer before the statistics pass so
                // the analyze interval is booked under `phase.analyze`
                // only — the per-phase breakdown stays disjoint.
                stats.phase.pipeline += t_pipe.elapsed();
                self.note_sink_stats(sink.sampler(), rel_id, stats);
                (out, sink.considered())
            };
            stats.queries_issued += out.queries + 1;
            stats.wcoj_runs += out.wcoj.runs;
            stats.wcoj_rows_emitted += out.wcoj.rows;
            stats.tuples_considered += considered;
            stats.agg_sink_runs += 1;
            stats.agg_rows_folded_at_source += considered;
            if self.cfg.oof == OofMode::None {
                freeze_choices(&self.catalog, stratum, idb, states, idx);
            }
            // --- Flush: the dirty list is ∆R, in head layout. ---
            let t_agg = Instant::now();
            let Some(AggKind::Mono(ms)) = &mut states[idx].agg else {
                unreachable!("checked above")
            };
            let MonoEval::Conc(map) = &mut ms.mono else {
                unreachable!("the fused-agg gate constructs the concurrent map")
            };
            let improved = map.take_improved();
            map.maybe_rehash();
            let g = ms.group_positions.len();
            let mut delta = Relation::new(Schema::with_arity(idb.delta_name.clone(), idb.arity));
            let mut out_row = vec![0 as Value; idb.arity];
            for row in improved.chunks(g + 1) {
                for (gi, &pos) in ms.group_positions.iter().enumerate() {
                    out_row[pos] = row[gi];
                }
                out_row[ms.agg_position] = row[g];
                delta.push_row(&out_row);
            }
            stats.agg_groups_improved += delta.len();
            stats.phase.aggregate += t_agg.elapsed();
            return Ok(DeltaBuf::Owned(delta));
        }

        // --- Non-recursive group-by head: sharded partials at the sink. ---
        let Some(AggKind::Plain {
            group_positions,
            agg_positions,
            funcs,
        }) = &states[idx].agg
        else {
            unreachable!("caller dispatches only aggregated IDBs")
        };
        let (group_positions, agg_positions) = (group_positions.clone(), agg_positions.clone());
        let gsink = GroupSink::new(funcs.clone(), group_positions.len());
        let (out, considered) = {
            let sink = AggSink::new(AggTarget::Group(&gsink), sampler);
            let out = eval_idb(
                self.ctx,
                self.cfg,
                &self.catalog,
                stratum,
                idb,
                states,
                idx,
                jcache,
                &SinkMode::Agg(&sink),
                false,
            )?;
            // As above: keep the analyze interval out of `phase.pipeline`.
            stats.phase.pipeline += t_pipe.elapsed();
            self.note_sink_stats(sink.sampler(), rel_id, stats);
            (out, sink.considered())
        };
        stats.queries_issued += out.queries + 1;
        stats.wcoj_runs += out.wcoj.runs;
        stats.wcoj_rows_emitted += out.wcoj.rows;
        stats.tuples_considered += considered;
        stats.agg_sink_runs += 1;
        stats.agg_rows_folded_at_source += considered;
        if self.cfg.oof == OofMode::None {
            freeze_choices(&self.catalog, stratum, idb, states, idx);
        }
        // --- Flush: merge the shard partials straight into head layout. ---
        let t_agg = Instant::now();
        let g = group_positions.len();
        let mut grouped = gsink.into_columns();
        let rows = grouped.first().map_or(0, Vec::len);
        let mut cols = vec![Vec::new(); idb.arity];
        for (gi, &pos) in group_positions.iter().enumerate() {
            cols[pos] = std::mem::take(&mut grouped[gi]);
        }
        for (j, &pos) in agg_positions.iter().enumerate() {
            cols[pos] = std::mem::take(&mut grouped[g + j]);
        }
        stats.agg_groups_improved += rows;
        stats.phase.aggregate += t_agg.elapsed();
        let state = &mut states[idx];
        let rel = self.catalog.rel_mut(state.rel_id);
        state.old_len = rel.len();
        rel.append_columns(cols);
        let delta = DeltaBuf::Range(state.old_len, rel.len());
        if let Some(disk) = self.disk.as_deref_mut() {
            let rel = self.catalog.rel(state.rel_id);
            let t_io = Instant::now();
            disk.note_dirty(rel)?;
            stats.phase.io += t_io.elapsed();
        }
        Ok(delta)
    }

    /// One fused streaming step: `∆R` comes straight out of rule
    /// evaluation — each subquery's final operator probes the persistent
    /// full-R index and the shared scratch table per produced row, so the
    /// UNION-ALL intermediate is never buffered, merged or re-scanned.
    #[allow(clippy::too_many_arguments)]
    fn step_idb_fused(
        &mut self,
        stratum: &CompiledStratum,
        idb: &CompiledIdb,
        idx: usize,
        states: &mut [IdbState],
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
        seeded: bool,
    ) -> Result<DeltaBuf> {
        if states[idx].full_index.is_none() {
            let t_index = Instant::now();
            let rel = self.catalog.rel(states[idx].rel_id);
            stats.index.full_builds += 1;
            stats.index.build_rows += rel.len();
            states[idx].full_index = Some(PersistentIndex::build(
                self.ctx,
                rel.view(),
                (0..idb.arity).collect(),
            ));
            stats.phase.index += t_index.elapsed();
        }
        // The sink borrows the index and the base view for the whole
        // evaluation; take the index out of the state so `states` can be
        // reborrowed immutably by the subquery evaluator.
        let mut full_index = states[idx].full_index.take().expect("built above");
        let rel_id = states[idx].rel_id;
        // An index carried over from an earlier stratum may trail the
        // relation (or follow a cleared one): sync it before probing.
        {
            let rel = self.catalog.rel(rel_id);
            if full_index.rows() != rel.len() {
                let t_index = Instant::now();
                match full_index.append(self.ctx, rel.view()) {
                    SyncAction::Appended(n) => {
                        stats.index.full_appends += 1;
                        stats.index.append_rows += n;
                    }
                    SyncAction::Reused => {}
                    SyncAction::Rebuilt => {
                        stats.index.full_builds += 1;
                        stats.index.build_rows += rel.len();
                    }
                }
                stats.phase.index += t_index.elapsed();
            }
        }
        let hint = states[idx].scratch_hint;
        // OOF-FA: sample the would-be Rt while it streams through the
        // sink; the statistics pass below consumes the reservoir.
        let sampler =
            (self.cfg.oof == OofMode::Full).then(|| SinkSampler::new(idb.arity, SINK_SAMPLE_CAP));
        // Index build/sync above is booked under `phase.index` (as on the
        // materializing path); the pipeline timer covers only the
        // streaming pass itself.
        let t_pipe = Instant::now();
        let evaluated = {
            let base = self.catalog.rel(rel_id).view();
            let mut sink = DeltaSink::new(&full_index, base, hint);
            if let Some(s) = &sampler {
                sink = sink.with_sampler(s);
            }
            eval_idb(
                self.ctx,
                self.cfg,
                &self.catalog,
                stratum,
                idb,
                states,
                idx,
                jcache,
                &SinkMode::Delta(&sink),
                seeded,
            )
            .map(|out| {
                (
                    out,
                    sink.considered(),
                    sink.take_overflow(),
                    sink.scratch_bytes(),
                )
            })
        };
        let (out, considered, overflow, scratch_bytes) = match evaluated {
            Ok(v) => v,
            Err(e) => {
                states[idx].full_index = Some(full_index);
                return Err(e);
            }
        };
        states[idx].full_index = Some(full_index);
        let mut fresh = out.cols;
        let sink_fresh = fresh.first().map_or(0, Vec::len);
        // Compact-key escapes equal no packed-fitting tuple (a tuple fits
        // iff each value fits), so they are new w.r.t. R and the sink's
        // winners — they only need dedup among themselves. The merge below
        // triggers the index's one-time hashed rebuild via `append`.
        if !overflow.is_empty() {
            let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
            for row in &overflow {
                if seen.insert(row.clone()) {
                    for (col, &v) in fresh.iter_mut().zip(row) {
                        col.push(v);
                    }
                }
            }
        }
        let fresh_rows = fresh.first().map_or(0, Vec::len);
        let skipped = considered - sink_fresh - overflow.len();
        stats.queries_issued += out.queries + 1;
        stats.wcoj_runs += out.wcoj.runs;
        stats.wcoj_rows_emitted += out.wcoj.rows;
        stats.tuples_considered += considered;
        stats.rt_rows_skipped_at_source += skipped;
        stats.rt_bytes_never_materialized += skipped * idb.arity * 8;
        stats.fused_runs += 1;
        stats.pipeline_runs += 1;
        stats.index.scratch_builds += 1;
        stats.phase.pipeline += t_pipe.elapsed();
        self.note_sink_stats(sampler.as_ref(), rel_id, stats);

        // Record frozen choices on first iteration for OOF-NA.
        if self.cfg.oof == OofMode::None {
            freeze_choices(&self.catalog, stratum, idb, states, idx);
        }

        // --- R ← R ⊎ ∆R: one shard append; ∆R stays a row range. ---
        let t_merge = Instant::now();
        let state = &mut states[idx];
        let rel = self.catalog.rel_mut(state.rel_id);
        state.old_len = rel.len();
        rel.append_columns(fresh);
        let delta = DeltaBuf::Range(state.old_len, rel.len());
        stats.phase.merge += t_merge.elapsed();
        // Next iteration's scratch sizing: follow |∆R| up immediately but
        // decay slowly, so one small delta after a burst does not shrink
        // the bucket array back under the workload's scale.
        state.scratch_hint = (fresh_rows * 2).max(state.scratch_hint / 2).max(1024);

        // Maintain the index over the merged rows (incremental).
        let t_index = Instant::now();
        let rel = self.catalog.rel(state.rel_id);
        let index = state.full_index.as_mut().expect("restored above");
        match index.append(self.ctx, rel.view()) {
            SyncAction::Appended(n) => {
                stats.index.full_appends += 1;
                stats.index.append_rows += n;
            }
            SyncAction::Reused => {}
            SyncAction::Rebuilt => {
                stats.index.full_builds += 1;
                stats.index.build_rows += rel.len();
            }
        }
        stats.index.bytes_peak = stats
            .index
            .bytes_peak
            .max(index.heap_bytes() + scratch_bytes);
        stats.phase.index += t_index.elapsed();
        stats.peak_bytes = stats
            .peak_bytes
            .max(self.catalog.heap_bytes() + index.heap_bytes() + scratch_bytes);

        // EOST is a precondition of the fused gate, so temporaries never
        // reach disk here; just note the relation dirty for the commit.
        if let Some(disk) = self.disk.as_deref_mut() {
            let rel = self.catalog.rel(state.rel_id);
            disk.note_dirty(rel)?;
        }
        Ok(delta)
    }

    /// One Algorithm 1 step (lines 8–13) for one IDB. Returns the freshly
    /// computed ∆R (staged by the caller so peers keep reading the previous
    /// iteration's delta until the pass completes).
    #[allow(clippy::too_many_arguments)]
    fn step_idb(
        &mut self,
        stratum: &CompiledStratum,
        idb: &CompiledIdb,
        idx: usize,
        states: &mut [IdbState],
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
        seeded: bool,
    ) -> Result<DeltaBuf> {
        if self.fused_applies(&states[idx]) {
            return self.step_idb_fused(stratum, idb, idx, states, jcache, stats, seeded);
        }
        if states[idx].agg.is_some() && self.fused_agg_applies() {
            return self.step_idb_agg_fused(stratum, idb, idx, states, jcache, stats);
        }

        // --- Rt ← uieval(rules(R, s)) ---
        let t_eval = Instant::now();
        let out = eval_idb(
            self.ctx,
            self.cfg,
            &self.catalog,
            stratum,
            idb,
            states,
            idx,
            jcache,
            &SinkMode::Materialize,
            seeded,
        )?;
        let (candidates, queries) = (out.cols, out.queries);
        stats.phase.eval += t_eval.elapsed();
        stats.queries_issued += queries;
        stats.wcoj_runs += out.wcoj.runs;
        stats.wcoj_rows_emitted += out.wcoj.rows;
        let produced = candidates.first().map_or(0, Vec::len);
        stats.tuples_considered += produced;
        // The whole UNION-ALL intermediate was buffered and merged — the
        // cost the streaming pipeline eliminates.
        stats.rt_merge_bytes += produced * idb.arity * 8;

        // Record frozen choices on first iteration for OOF-NA.
        if self.cfg.oof == OofMode::None {
            freeze_choices(&self.catalog, stratum, idb, states, idx);
        }

        // Non-UIE: the per-subquery temporaries were already flushed inside
        // eval; the unified Rt temp is flushed here in per-query mode.
        spill_temp(
            self.cfg,
            &mut self.disk,
            &idb.rt_name,
            RelView::over(&candidates),
            stats,
        )?;

        // OOF-FA: full statistics on every updated table, every iteration.
        if self.cfg.oof == OofMode::Full {
            let t_an = Instant::now();
            let _ = recstep_storage::stats::analyze_view(
                RelView::over(&candidates),
                recstep_storage::StatsLevel::Full,
            );
            let id = states[idx].rel_id;
            self.catalog.analyze_full(id);
            stats.phase.analyze += t_an.elapsed();
        }

        let state = &mut states[idx];
        match &mut state.agg {
            Some(AggKind::Mono(mono_state)) => {
                // --- Recursive aggregation path: group, then absorb. ---
                let MonoEval::Seq(mono) = &mut mono_state.mono else {
                    unreachable!("the fused-agg gate constructs the sequential map")
                };
                let t_agg = Instant::now();
                let g = mono_state.group_positions.len();
                let group_exprs: Vec<Expr> = (0..g).map(Expr::Col).collect();
                let aggs = vec![AggCol {
                    func: mono.func(),
                    expr: Expr::Col(g),
                }];
                let grouped = recstep_exec::agg::group_aggregate(
                    self.ctx,
                    RelView::over(&candidates),
                    &group_exprs,
                    &aggs,
                );
                let mut delta =
                    Relation::new(Schema::with_arity(idb.delta_name.clone(), idb.arity));
                let rows = grouped.first().map_or(0, Vec::len);
                let mut group = Vec::with_capacity(g);
                let mut out_row = vec![0 as Value; idb.arity];
                #[allow(clippy::needless_range_loop)]
                for r in 0..rows {
                    group.clear();
                    group.extend((0..g).map(|c| grouped[c][r]));
                    let v = grouped[g][r];
                    if mono.absorb(&group, v) {
                        for (gi, &pos) in mono_state.group_positions.iter().enumerate() {
                            out_row[pos] = group[gi];
                        }
                        out_row[mono_state.agg_position] = v;
                        delta.push_row(&out_row);
                    }
                }
                stats.phase.aggregate += t_agg.elapsed();
                spill_temp(
                    self.cfg,
                    &mut self.disk,
                    &idb.delta_name,
                    delta.view(),
                    stats,
                )?;
                stats.queries_issued += 1;
                return Ok(DeltaBuf::Owned(delta));
            }
            Some(AggKind::Plain {
                group_positions,
                agg_positions,
                funcs,
            }) => {
                // --- Non-recursive aggregation: one group-by pass. ---
                let t_agg = Instant::now();
                let g = group_positions.len();
                let group_exprs: Vec<Expr> = (0..g).map(Expr::Col).collect();
                let aggs: Vec<AggCol> = funcs
                    .iter()
                    .enumerate()
                    .map(|(j, &func)| AggCol {
                        func,
                        expr: Expr::Col(g + j),
                    })
                    .collect();
                let grouped = recstep_exec::agg::group_aggregate(
                    self.ctx,
                    RelView::over(&candidates),
                    &group_exprs,
                    &aggs,
                );
                let rows = grouped.first().map_or(0, Vec::len);
                let mut cols = vec![Vec::with_capacity(rows); idb.arity];
                for (gi, &pos) in group_positions.iter().enumerate() {
                    cols[pos] = grouped[gi].clone();
                }
                for (j, &pos) in agg_positions.iter().enumerate() {
                    cols[pos] = grouped[g + j].clone();
                }
                stats.phase.aggregate += t_agg.elapsed();
                let rel = self.catalog.rel_mut(state.rel_id);
                state.old_len = rel.len();
                rel.append_columns(cols);
                let delta = DeltaBuf::Range(state.old_len, rel.len());
                let rel = self.catalog.rel(state.rel_id);
                spill_temp(
                    self.cfg,
                    &mut self.disk,
                    &idb.delta_name,
                    delta.view(rel),
                    stats,
                )?;
                if let Some(disk) = self.disk.as_deref_mut() {
                    let rel = self.catalog.rel(state.rel_id);
                    let t_io = Instant::now();
                    disk.note_dirty(rel)?;
                    stats.phase.io += t_io.elapsed();
                }
                stats.queries_issued += 1;
                return Ok(delta);
            }
            None => {}
        }

        if self.cfg.index_reuse && stratum.recursive {
            // --- Fused Rδ ← dedup(Rt), ∆R ← Rδ − R against the persistent
            // full-R index: one pass over Rt, the full-R table is built
            // once for the stratum and appended after every merge. ---
            let t_fused = Instant::now();
            if state.full_index.is_none() {
                let rel = self.catalog.rel(state.rel_id);
                stats.index.full_builds += 1;
                stats.index.build_rows += rel.len();
                state.full_index = Some(PersistentIndex::build(
                    self.ctx,
                    rel.view(),
                    (0..idb.arity).collect(),
                ));
            }
            let rel = self.catalog.rel(state.rel_id);
            let index = state.full_index.as_mut().expect("built above");
            let outcome = index.absorb(self.ctx, RelView::over(&candidates), rel.view());
            if outcome.rebuilt {
                // Compact-key invalidation: a candidate escaped the packed
                // layout; the index fell back to hashed and rebuilt once.
                stats.index.full_builds += 1;
                stats.index.build_rows += rel.len();
            }
            stats.index.scratch_builds += 1;
            stats.index.bytes_peak = stats
                .index
                .bytes_peak
                .max(index.heap_bytes() + outcome.scratch_bytes);
            stats.peak_bytes = stats
                .peak_bytes
                .max(self.catalog.heap_bytes() + index.heap_bytes() + outcome.scratch_bytes);
            drop(candidates);
            stats.phase.dedup += t_fused.elapsed();
            stats.fused_runs += 1;
            // One fused query replaces the dedup INSERT and the difference
            // query of the rebuild path.
            stats.queries_issued += 1;

            // --- R ← R ⊎ ∆R: one shard append, ∆R stays a row range. ---
            let t_merge = Instant::now();
            let rel = self.catalog.rel_mut(state.rel_id);
            state.old_len = rel.len();
            rel.append_columns(outcome.fresh);
            let delta = DeltaBuf::Range(state.old_len, rel.len());
            stats.phase.merge += t_merge.elapsed();

            // Maintain the index over the merged rows (incremental).
            let t_index = Instant::now();
            let rel = self.catalog.rel(state.rel_id);
            let index = state.full_index.as_mut().expect("built above");
            match index.append(self.ctx, rel.view()) {
                SyncAction::Appended(n) => {
                    stats.index.full_appends += 1;
                    stats.index.append_rows += n;
                }
                SyncAction::Reused => {}
                SyncAction::Rebuilt => {
                    stats.index.full_builds += 1;
                    stats.index.build_rows += rel.len();
                }
            }
            stats.index.bytes_peak = stats.index.bytes_peak.max(index.heap_bytes());
            stats.phase.index += t_index.elapsed();

            let rel = self.catalog.rel(state.rel_id);
            spill_temp(
                self.cfg,
                &mut self.disk,
                &idb.delta_name,
                delta.view(rel),
                stats,
            )?;
            if let Some(disk) = self.disk.as_deref_mut() {
                let rel = self.catalog.rel(state.rel_id);
                let t_io = Instant::now();
                disk.note_dirty(rel)?;
                stats.phase.io += t_io.elapsed();
            }
            return Ok(delta);
        }

        // --- Rδ ← dedup(Rt) ---
        let t_dedup = Instant::now();
        let budget_rows = self.cfg.mem_budget_bytes / (idb.arity.max(1) * 16);
        // Conservative distinct approximation for table sizing, every OOF
        // mode: min(memory, |Rt|) (paper §5.1).
        let distinct_hint = produced.min(budget_rows);
        let dedup_out = deduplicate(
            self.ctx,
            RelView::over(&candidates),
            self.cfg.dedup,
            distinct_hint,
        );
        drop(candidates);
        stats.phase.dedup += t_dedup.elapsed();
        stats.queries_issued += 1;
        stats.index.scratch_builds += dedup_out.tables_built;
        stats.peak_bytes = stats
            .peak_bytes
            .max(self.catalog.heap_bytes() + dedup_out.table_bytes);
        let rdelta = dedup_out.cols;
        spill_temp(
            self.cfg,
            &mut self.disk,
            &idb.rdelta_name,
            RelView::over(&rdelta),
            stats,
        )?;

        // --- ∆R ← Rδ − R ---
        let t_diff = Instant::now();
        let full = self.catalog.rel(state.rel_id).view();
        let builds_before = state.dsd.tables_built;
        let (diff, algo) = set_difference(
            self.ctx,
            RelView::over(&rdelta),
            full,
            self.cfg.setdiff,
            &mut state.dsd,
        );
        stats.phase.setdiff += t_diff.elapsed();
        stats.note_setdiff(algo);
        // Every set-difference table is rebuilt from scratch on this path;
        // that per-iteration rebuild is what `index_reuse` eliminates.
        stats.index.full_builds += state.dsd.tables_built - builds_before;
        stats.queries_issued += 1;

        // --- R ← R ⊎ ∆R: one shard append, ∆R stays a row range. ---
        let t_merge = Instant::now();
        let rel = self.catalog.rel_mut(state.rel_id);
        state.old_len = rel.len();
        rel.append_columns(diff);
        let delta = DeltaBuf::Range(state.old_len, rel.len());
        stats.phase.merge += t_merge.elapsed();
        let rel = self.catalog.rel(state.rel_id);
        spill_temp(
            self.cfg,
            &mut self.disk,
            &idb.delta_name,
            delta.view(rel),
            stats,
        )?;
        if let Some(disk) = self.disk.as_deref_mut() {
            let rel = self.catalog.rel(state.rel_id);
            let t_io = Instant::now();
            disk.note_dirty(rel)?;
            stats.phase.io += t_io.elapsed();
        }
        Ok(delta)
    }
}

/// The signed row deltas an incremental refresh maintains, keyed by
/// relation name.
///
/// Seeded from the commit's *effective* base-relation deltas (set
/// semantics: an insert of an already-present row or a delete of an
/// absent one is no delta at all) and grown with each stratum's net IDB
/// changes as the refresh walks the program top-down — which is what
/// makes downstream strata incremental too.
#[derive(Default)]
pub(crate) struct RefreshDeltas {
    pub(crate) plus: FxHashMap<String, Vec<Vec<Value>>>,
    pub(crate) minus: FxHashMap<String, Vec<Vec<Value>>>,
}

impl RefreshDeltas {
    fn has_plus(&self, rel: &str) -> bool {
        self.plus.get(rel).is_some_and(|v| !v.is_empty())
    }

    fn has_minus(&self, rel: &str) -> bool {
        self.minus.get(rel).is_some_and(|v| !v.is_empty())
    }

    fn changed(&self, rel: &str) -> bool {
        self.has_plus(rel) || self.has_minus(rel)
    }
}

fn cols_from_rows(arity: usize, rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut cols = vec![Vec::with_capacity(rows.len()); arity];
    for row in rows {
        for (c, &v) in row.iter().enumerate() {
            cols[c].push(v);
        }
    }
    cols
}

fn cols_from_iter<'r>(arity: usize, rows: impl Iterator<Item = &'r Vec<Value>>) -> Vec<Vec<Value>> {
    let mut cols = vec![Vec::new(); arity];
    for row in rows {
        for (c, &v) in row.iter().enumerate() {
            cols[c].push(v);
        }
    }
    cols
}

/// IDBs derived (at least partly) by a recursive stratum. Strata are
/// rule-level SCCs, so a predicate like TC's `tc` spans a non-recursive
/// stratum (`tc ← arc`) *and* the recursive one — everything here must be
/// maintained by the recursive machinery, never by counting.
fn recursive_idb_names(prog: &CompiledProgram) -> FxHashSet<&str> {
    prog.strata
        .iter()
        .filter(|s| s.recursive)
        .flat_map(|s| s.idbs.iter().map(|i| i.rel.as_str()))
        .collect()
}

/// Every relation the program derives (its IDBs), by name.
fn derived_names(prog: &CompiledProgram) -> FxHashSet<&str> {
    prog.relations
        .iter()
        .filter(|d| d.is_idb)
        .map(|d| d.name.as_str())
        .collect()
}

/// Whether any of the cluster's rules reads a changed non-cluster input.
fn cluster_changed(
    members: &[&CompiledStratum],
    cluster_idbs: &FxHashSet<&str>,
    deltas: &RefreshDeltas,
) -> (bool, bool) {
    let (mut plus, mut minus) = (false, false);
    for stratum in members {
        for idb in &stratum.idbs {
            for sq in &idb.subqueries {
                for scan in &sq.scans {
                    if cluster_idbs.contains(scan.rel.as_str()) {
                        continue;
                    }
                    plus |= deltas.has_plus(&scan.rel);
                    minus |= deltas.has_minus(&scan.rel);
                }
            }
        }
    }
    (plus, minus)
}

/// Invoke `f` with each row of a column-major materialized result.
fn each_row(cols: &[Vec<Value>], mut f: impl FnMut(&[Value])) {
    let rows = cols.first().map_or(0, Vec::len);
    let mut row = vec![0 as Value; cols.len()];
    for r in 0..rows {
        for (v, col) in row.iter_mut().zip(cols) {
            *v = col[r];
        }
        f(&row);
    }
}

/// Incremental view maintenance: the refresh driver behind
/// [`crate::view::MaterializedView`]. A refresh walks the strata in
/// order, maintaining each against the deltas accumulated so far:
///
/// * **counting** for IDBs derived only in non-recursive strata — exact
///   per-derivation support counts ([`SupportTable`]) decide when a
///   tuple's first derivation appears or its last one disappears;
/// * **∆-seeding** for insert-only changes to recursive clusters — every
///   rule runs once per changed scan position through the fused
///   [`DeltaSink`], then the fixpoint re-enters with ∆ = the fresh rows
///   only ([`StratumEntry::Seeded`]);
/// * **DRed** when a recursive cluster sees deletions — over-delete
///   everything with a derivation through a deleted tuple, retract,
///   re-derive by a monotone fixpoint from the survivors.
impl EvalRun<'_, '_> {
    /// Evaluate one subquery as a maintenance pass: overridden positions
    /// read the given views, everything else the catalog's full
    /// relations, with the join cache disabled (see [`eval_subquery`]).
    fn eval_maintenance(
        &self,
        stratum: &CompiledStratum,
        sq: &SubQuery,
        overrides: &ScanOverrides<'_>,
        sink: &SinkMode<'_>,
    ) -> Result<Vec<Vec<Value>>> {
        let frozen = vec![None; sq.joins.len()];
        let mut jcache = JoinCache::new(false, None, FxHashSet::default());
        // Maintenance passes are driven per changed scan position and not
        // per evaluation run, so their generic-join accounting is dropped.
        let mut wcoj = WcojTally::default();
        eval_subquery(
            self.ctx,
            self.cfg,
            &self.catalog,
            stratum,
            sq,
            &[],
            &frozen,
            &mut jcache,
            Some(overrides),
            sink,
            &mut wcoj,
        )
    }

    /// Initialize support counts for every counting-maintained IDB of a
    /// freshly evaluated program: each rule re-runs once over
    /// *set-semantic* views of its inputs (stored base relations may hold
    /// duplicate rows, which must not inflate counts), contributing one
    /// support per derivation row.
    pub(crate) fn init_supports(
        &mut self,
        prog: &CompiledProgram,
        supports: &mut FxHashMap<String, SupportTable>,
    ) -> Result<()> {
        let rec_names = recursive_idb_names(prog);
        let derived = derived_names(prog);
        for stratum in &prog.strata {
            if stratum.recursive {
                continue;
            }
            for idb in &stratum.idbs {
                if rec_names.contains(idb.rel.as_str()) {
                    continue;
                }
                let rel_len = self
                    .catalog
                    .lookup(&idb.rel)
                    .map_or(0, |id| self.catalog.rel(id).len());
                let support = supports
                    .entry(idb.rel.clone())
                    .or_insert_with(|| SupportTable::new(idb.arity, rel_len.max(64)));
                for sq in &idb.subqueries {
                    // Deduplicated views for base inputs; IDB inputs are
                    // sets already and fall back to the catalog.
                    let mut dedup_cols: Vec<(usize, Vec<Vec<Value>>)> = Vec::new();
                    for (p, scan) in sq.scans.iter().enumerate() {
                        if derived.contains(scan.rel.as_str()) {
                            continue;
                        }
                        let id = self.catalog.lookup(&scan.rel).ok_or_else(|| {
                            Error::exec(format!("unknown relation '{}'", scan.rel))
                        })?;
                        let set: FxHashSet<Vec<Value>> =
                            self.catalog.rel(id).to_rows().into_iter().collect();
                        dedup_cols.push((p, cols_from_iter(scan.arity, set.iter())));
                    }
                    let ovr: ScanOverrides<'_> = dedup_cols
                        .iter()
                        .map(|(p, cols)| (*p, RelView::over(cols)))
                        .collect();
                    let out = self.eval_maintenance(stratum, sq, &ovr, &SinkMode::Materialize)?;
                    each_row(&out, |row| {
                        support.add(row, 1);
                    });
                }
            }
        }
        Ok(())
    }

    /// Incrementally refresh a completed run's IDB relations after the
    /// given effective base deltas (the IVM tentpole). The catalog must
    /// carry the previous run's results (an overlay pre-seeded via
    /// [`RunCatalog::shared_with`], or the exclusively owned database);
    /// `carry` holds the previous run's full-R indexes by relation name
    /// and is updated in place.
    pub(crate) fn run_refresh(
        &mut self,
        prog: &CompiledProgram,
        deltas: &mut RefreshDeltas,
        supports: &mut FxHashMap<String, SupportTable>,
        carry: &mut FxHashMap<String, PersistentIndex>,
    ) -> Result<EvalStats> {
        let t0 = Instant::now();
        let busy0 = self.ctx.pool.busy_ns_total();
        let mut stats = EvalStats::default();
        stats.view.view_refreshes = 1;

        let mut index_carry: FxHashMap<RelId, PersistentIndex> = FxHashMap::default();
        for (name, index) in carry.drain() {
            if let Some(id) = self.catalog.lookup(&name) {
                index_carry.insert(id, index);
            }
        }
        let mutable_ids: FxHashSet<RelId> = prog
            .relations
            .iter()
            .filter(|d| d.is_idb)
            .filter_map(|d| self.catalog.lookup(&d.name))
            .collect();
        let mut jcache = JoinCache::new(
            self.cfg.index_reuse,
            self.cache.map(|c| (c, self.cfg.index_cache_budget_bytes)),
            mutable_ids,
        );

        let rec_names = recursive_idb_names(prog);
        for (si, stratum) in prog.strata.iter().enumerate() {
            if stratum.recursive {
                let cluster_idbs: FxHashSet<&str> =
                    stratum.idbs.iter().map(|i| i.rel.as_str()).collect();
                let mut members: Vec<&CompiledStratum> = prog.strata[..si]
                    .iter()
                    .filter(|s| {
                        !s.recursive && s.idbs.iter().any(|i| cluster_idbs.contains(i.rel.as_str()))
                    })
                    .collect();
                members.push(stratum);
                let (any_plus, any_minus) = cluster_changed(&members, &cluster_idbs, deltas);
                if !any_plus && !any_minus {
                    continue;
                }
                if any_minus {
                    self.refresh_cluster_dred(
                        &members,
                        stratum,
                        deltas,
                        &mut index_carry,
                        &mut jcache,
                        &mut stats,
                    )?;
                } else {
                    self.refresh_cluster_seeded(
                        &members,
                        stratum,
                        deltas,
                        &mut index_carry,
                        &mut jcache,
                        &mut stats,
                    )?;
                }
            } else {
                if stratum
                    .idbs
                    .iter()
                    .any(|i| rec_names.contains(i.rel.as_str()))
                {
                    // Deferred: maintained with its recursive cluster.
                    continue;
                }
                let cluster_idbs: FxHashSet<&str> =
                    stratum.idbs.iter().map(|i| i.rel.as_str()).collect();
                let (any_plus, any_minus) = cluster_changed(&[stratum], &cluster_idbs, deltas);
                if !any_plus && !any_minus {
                    continue;
                }
                self.refresh_stratum_counting(
                    prog,
                    stratum,
                    deltas,
                    supports,
                    &mut index_carry,
                    &mut jcache,
                    &mut stats,
                )?;
            }
        }

        for (rel_id, index) in index_carry.drain() {
            let name = self.catalog.rel(rel_id).schema().name.clone();
            carry.insert(name, index);
        }
        jcache.fold_into(&mut stats);
        stats.total = t0.elapsed();
        stats.busy =
            std::time::Duration::from_nanos(self.ctx.pool.busy_ns_total().saturating_sub(busy0));
        stats.peak_bytes = stats.peak_bytes.max(self.catalog.heap_bytes());
        Ok(stats)
    }

    /// Stream maintenance derivations for one cluster IDB through a
    /// [`DeltaSink`] against its carried full-R index and append the
    /// winners. With `positions`, each member rule runs once per changed
    /// scan position — that position pinned to the new tuples, everything
    /// else at current full views (an over-approximation the sink
    /// dedups). Without, every rule of the *non-recursive* member strata
    /// re-runs once in full (DRed re-derivation; the recursive rules
    /// re-run in the fixpoint that follows).
    #[allow(clippy::too_many_arguments)]
    fn seed_idb(
        &mut self,
        members: &[&CompiledStratum],
        rel_name: &str,
        arity: usize,
        positions: Option<&FxHashMap<String, Vec<Vec<Value>>>>,
        index_carry: &mut FxHashMap<RelId, PersistentIndex>,
        stats: &mut EvalStats,
    ) -> Result<usize> {
        let rel_id = self
            .catalog
            .lookup(rel_name)
            .ok_or_else(|| Error::exec(format!("unknown relation '{rel_name}'")))?;
        let mut full_index = match index_carry.remove(&rel_id) {
            Some(index) => index,
            None => {
                let rel = self.catalog.rel(rel_id);
                stats.index.full_builds += 1;
                stats.index.build_rows += rel.len();
                PersistentIndex::build(self.ctx, rel.view(), (0..arity).collect())
            }
        };
        {
            let rel = self.catalog.rel(rel_id);
            if full_index.rows() != rel.len() {
                let t_index = Instant::now();
                match full_index.append(self.ctx, rel.view()) {
                    SyncAction::Appended(n) => {
                        stats.index.full_appends += 1;
                        stats.index.append_rows += n;
                    }
                    SyncAction::Reused => {}
                    SyncAction::Rebuilt => {
                        stats.index.full_builds += 1;
                        stats.index.build_rows += rel.len();
                    }
                }
                stats.phase.index += t_index.elapsed();
            }
        }
        let t_pipe = Instant::now();
        let evaluated = {
            let base = self.catalog.rel(rel_id).view();
            let sink = DeltaSink::new(&full_index, base, 1024);
            let mut fresh: Vec<Vec<Value>> = vec![Vec::new(); arity];
            let mut err = None;
            'eval: for stratum in members {
                if positions.is_none() && stratum.recursive {
                    continue;
                }
                for idb in stratum.idbs.iter().filter(|i| i.rel == rel_name) {
                    let mut seen_rules = FxHashSet::default();
                    for sq in &idb.subqueries {
                        if !seen_rules.insert(sq.rule_idx) {
                            continue;
                        }
                        let mut calls: Vec<ScanOverrides<'_>> = Vec::new();
                        match positions {
                            Some(plus_cols) => {
                                for (p, scan) in sq.scans.iter().enumerate() {
                                    if let Some(cols) = plus_cols.get(&scan.rel) {
                                        let mut ovr = ScanOverrides::default();
                                        ovr.insert(p, RelView::over(cols));
                                        calls.push(ovr);
                                    }
                                }
                            }
                            None => calls.push(ScanOverrides::default()),
                        }
                        for ovr in &calls {
                            match self.eval_maintenance(stratum, sq, ovr, &SinkMode::Delta(&sink)) {
                                Ok(cols) => {
                                    for (dst, mut src) in fresh.iter_mut().zip(cols) {
                                        if dst.is_empty() {
                                            *dst = src;
                                        } else {
                                            dst.append(&mut src);
                                        }
                                    }
                                }
                                Err(e) => {
                                    err = Some(e);
                                    break 'eval;
                                }
                            }
                        }
                    }
                }
            }
            match err {
                Some(e) => Err(e),
                None => Ok((fresh, sink.take_overflow(), sink.considered())),
            }
        };
        let (mut fresh, overflow, considered) = match evaluated {
            Ok(v) => v,
            Err(e) => {
                index_carry.insert(rel_id, full_index);
                return Err(e);
            }
        };
        // Compact-key escapes are new w.r.t. R and the sink's winners;
        // they only need dedup among themselves (as on the fused path).
        if !overflow.is_empty() {
            let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
            for row in &overflow {
                if seen.insert(row.clone()) {
                    for (col, &v) in fresh.iter_mut().zip(row) {
                        col.push(v);
                    }
                }
            }
        }
        let fresh_rows = fresh.first().map_or(0, Vec::len);
        stats.tuples_considered += considered;
        stats.index.scratch_builds += 1;
        stats.phase.pipeline += t_pipe.elapsed();
        if fresh_rows > 0 {
            self.catalog.rel_mut(rel_id).append_columns(fresh);
            let t_index = Instant::now();
            let rel = self.catalog.rel(rel_id);
            match full_index.append(self.ctx, rel.view()) {
                SyncAction::Appended(n) => {
                    stats.index.full_appends += 1;
                    stats.index.append_rows += n;
                }
                SyncAction::Reused => {}
                SyncAction::Rebuilt => {
                    stats.index.full_builds += 1;
                    stats.index.build_rows += rel.len();
                }
            }
            stats.phase.index += t_index.elapsed();
        }
        index_carry.insert(rel_id, full_index);
        Ok(fresh_rows)
    }

    /// Insert-only maintenance of a recursive cluster: ∆-seed every rule
    /// against the new tuples, then re-enter the fixpoint with ∆ = the
    /// fresh rows only.
    fn refresh_cluster_seeded(
        &mut self,
        members: &[&CompiledStratum],
        rec: &CompiledStratum,
        deltas: &mut RefreshDeltas,
        index_carry: &mut FxHashMap<RelId, PersistentIndex>,
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let cluster_idbs: FxHashSet<&str> = rec.idbs.iter().map(|i| i.rel.as_str()).collect();
        // Insert columns for every changed non-cluster input.
        let mut plus_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        for stratum in members {
            for idb in &stratum.idbs {
                for sq in &idb.subqueries {
                    for scan in &sq.scans {
                        if cluster_idbs.contains(scan.rel.as_str())
                            || plus_cols.contains_key(&scan.rel)
                        {
                            continue;
                        }
                        if let Some(rows) = deltas.plus.get(&scan.rel) {
                            if !rows.is_empty() {
                                plus_cols
                                    .insert(scan.rel.clone(), cols_from_rows(scan.arity, rows));
                            }
                        }
                    }
                }
            }
        }
        // Fixpoint entry points, recorded before any seed appends.
        let mut starts: FxHashMap<RelId, usize> = FxHashMap::default();
        for idb in &rec.idbs {
            let id = self
                .catalog
                .lookup(&idb.rel)
                .ok_or_else(|| Error::exec(format!("unknown relation '{}'", idb.rel)))?;
            starts.insert(id, self.catalog.rel(id).len());
        }
        for idb in &rec.idbs {
            let seeded = self.seed_idb(
                members,
                &idb.rel,
                idb.arity,
                Some(&plus_cols),
                index_carry,
                stats,
            )?;
            stats.view.view_tuples_seeded += seeded as u64;
        }
        self.run_stratum(
            rec,
            index_carry,
            jcache,
            stats,
            StratumEntry::Seeded(starts.clone()),
        )?;
        stats.view.view_seeded_strata += 1;
        // Net new tuples feed downstream strata.
        for (rel_id, start) in starts {
            let rel = self.catalog.rel(rel_id);
            if rel.len() > start {
                let name = rel.schema().name.clone();
                let out = deltas.plus.entry(name).or_default();
                for r in start..rel.len() {
                    out.push((0..rel.arity()).map(|c| rel.col(c)[r]).collect());
                }
            }
        }
        Ok(())
    }

    /// DRed maintenance of a recursive cluster that saw deletions:
    /// over-delete everything with a derivation through a deleted tuple
    /// (worklist to transitive closure), retract, then re-derive by a
    /// monotone fixpoint from the survivors over the post-commit base —
    /// which also absorbs any same-commit inserts.
    #[allow(clippy::too_many_arguments)]
    fn refresh_cluster_dred(
        &mut self,
        members: &[&CompiledStratum],
        rec: &CompiledStratum,
        deltas: &mut RefreshDeltas,
        index_carry: &mut FxHashMap<RelId, PersistentIndex>,
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let cluster_idbs: FxHashSet<&str> = rec.idbs.iter().map(|i| i.rel.as_str()).collect();
        // Membership and tombstones per cluster IDB (pre-delete values).
        let mut alive: FxHashMap<String, FxHashSet<Vec<Value>>> = FxHashMap::default();
        let mut dead: FxHashMap<String, FxHashSet<Vec<Value>>> = FxHashMap::default();
        for idb in &rec.idbs {
            let id = self
                .catalog
                .lookup(&idb.rel)
                .ok_or_else(|| Error::exec(format!("unknown relation '{}'", idb.rel)))?;
            alive.insert(
                idb.rel.clone(),
                self.catalog.rel(id).to_rows().into_iter().collect(),
            );
            dead.insert(idb.rel.clone(), FxHashSet::default());
        }
        // Pre-commit (OLD) columns for changed non-cluster inputs; the
        // unchanged ones read the catalog as-is — duplicate stored rows
        // cost nothing here, hits are membership-filtered, not counted.
        let mut old_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        for stratum in members {
            for idb in &stratum.idbs {
                for sq in &idb.subqueries {
                    for scan in &sq.scans {
                        let rel = scan.rel.as_str();
                        if cluster_idbs.contains(rel)
                            || old_cols.contains_key(rel)
                            || !deltas.changed(rel)
                        {
                            continue;
                        }
                        let id = self
                            .catalog
                            .lookup(rel)
                            .ok_or_else(|| Error::exec(format!("unknown relation '{rel}'")))?;
                        let mut set: FxHashSet<Vec<Value>> =
                            self.catalog.rel(id).to_rows().into_iter().collect();
                        if let Some(rows) = deltas.plus.get(rel) {
                            for row in rows {
                                set.remove(row);
                            }
                        }
                        if let Some(rows) = deltas.minus.get(rel) {
                            for row in rows {
                                set.insert(row.clone());
                            }
                        }
                        old_cols.insert(rel.to_string(), cols_from_iter(scan.arity, set.iter()));
                    }
                }
            }
        }
        // Worklist seed: the deleted tuples of every changed input.
        let mut pending: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        for stratum in members {
            for idb in &stratum.idbs {
                for sq in &idb.subqueries {
                    for scan in &sq.scans {
                        if cluster_idbs.contains(scan.rel.as_str())
                            || pending.contains_key(&scan.rel)
                        {
                            continue;
                        }
                        if let Some(rows) = deltas.minus.get(&scan.rel) {
                            if !rows.is_empty() {
                                pending.insert(scan.rel.clone(), rows.clone());
                            }
                        }
                    }
                }
            }
        }
        while !pending.is_empty() {
            let mut pend_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
            for (name, rows) in &pending {
                pend_cols.insert(name.clone(), cols_from_rows(rows[0].len(), rows));
            }
            let mut next: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
            for stratum in members {
                for idb in &stratum.idbs {
                    let mut seen_rules = FxHashSet::default();
                    for sq in &idb.subqueries {
                        if !seen_rules.insert(sq.rule_idx) {
                            continue;
                        }
                        for (p, scan) in sq.scans.iter().enumerate() {
                            let Some(batch) = pend_cols.get(&scan.rel) else {
                                continue;
                            };
                            let mut ovr = ScanOverrides::default();
                            ovr.insert(p, RelView::over(batch));
                            for (q, qscan) in sq.scans.iter().enumerate() {
                                if q == p {
                                    continue;
                                }
                                if let Some(cols) = old_cols.get(&qscan.rel) {
                                    ovr.insert(q, RelView::over(cols));
                                }
                            }
                            let out =
                                self.eval_maintenance(stratum, sq, &ovr, &SinkMode::Materialize)?;
                            if out.first().map_or(0, Vec::len) == 0 {
                                continue;
                            }
                            let alive_set = alive.get(&idb.rel).expect("cluster idb");
                            let dead_set = dead.get_mut(&idb.rel).expect("cluster idb");
                            each_row(&out, |row| {
                                if alive_set.contains(row) && !dead_set.contains(row) {
                                    dead_set.insert(row.to_vec());
                                    next.entry(idb.rel.clone()).or_default().push(row.to_vec());
                                }
                            });
                        }
                    }
                }
            }
            pending = next;
        }
        // Physical retraction, then re-derivation.
        let mut starts: FxHashMap<RelId, usize> = FxHashMap::default();
        for idb in &rec.idbs {
            let rel_id = self.catalog.lookup(&idb.rel).expect("cluster idb exists");
            let dead_set = dead.get(&idb.rel).expect("cluster idb");
            if !dead_set.is_empty() {
                let rows: Vec<Vec<Value>> = dead_set.iter().cloned().collect();
                self.catalog.rel_mut(rel_id).delete_rows(&rows);
                jcache.invalidate(rel_id);
            }
            stats.view.view_tuples_retracted += dead_set.len() as u64;
            starts.insert(rel_id, self.catalog.rel(rel_id).len());
        }
        for idb in &rec.idbs {
            self.seed_idb(members, &idb.rel, idb.arity, None, index_carry, stats)?;
        }
        self.run_stratum(rec, index_carry, jcache, stats, StratumEntry::Scratch)?;
        stats.view.view_dred_strata += 1;
        // Net downstream changes: a physically deleted tuple that was
        // re-derived is no change at all.
        for idb in &rec.idbs {
            let rel_id = self.catalog.lookup(&idb.rel).expect("cluster idb exists");
            let start = starts[&rel_id];
            let rel = self.catalog.rel(rel_id);
            let dead_set = dead.remove(&idb.rel).unwrap_or_default();
            let mut added: Vec<Vec<Value>> = Vec::with_capacity(rel.len() - start);
            for r in start..rel.len() {
                added.push((0..rel.arity()).map(|c| rel.col(c)[r]).collect());
            }
            let added_set: FxHashSet<&Vec<Value>> = added.iter().collect();
            let minus: Vec<Vec<Value>> = dead_set
                .iter()
                .filter(|r| !added_set.contains(*r))
                .cloned()
                .collect();
            drop(added_set);
            let plus: Vec<Vec<Value>> = added
                .into_iter()
                .filter(|r| !dead_set.contains(r))
                .collect();
            if !minus.is_empty() {
                deltas
                    .minus
                    .entry(idb.rel.clone())
                    .or_default()
                    .extend(minus);
            }
            if !plus.is_empty() {
                deltas.plus.entry(idb.rel.clone()).or_default().extend(plus);
            }
        }
        Ok(())
    }

    /// Counting maintenance of a non-recursive stratum: finite
    /// differencing accumulates signed per-derivation deltas (position
    /// `p` pinned to the change, earlier positions at NEW, later at OLD
    /// views — all set-semantic), and the settled support counts decide
    /// which tuples materialize or retract.
    #[allow(clippy::too_many_arguments)]
    fn refresh_stratum_counting(
        &mut self,
        prog: &CompiledProgram,
        stratum: &CompiledStratum,
        deltas: &mut RefreshDeltas,
        supports: &mut FxHashMap<String, SupportTable>,
        index_carry: &mut FxHashMap<RelId, PersistentIndex>,
        jcache: &mut JoinCache<'_>,
        stats: &mut EvalStats,
    ) -> Result<()> {
        let derived = derived_names(prog);
        // Set-semantic OLD / NEW columns per input relation. Base inputs
        // materialize deduplicated (stored relations may hold duplicate
        // rows, which would inflate counts); IDB inputs are sets already,
        // so NEW reads the catalog directly and OLD materializes only
        // when the relation changed this refresh. For every input,
        // OLD = NEW ∖ plus ∪ minus — the deltas are effective set deltas.
        let mut old_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        let mut new_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        let mut plus_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        let mut minus_cols: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
        for idb in &stratum.idbs {
            for sq in &idb.subqueries {
                for scan in &sq.scans {
                    let rel = scan.rel.as_str();
                    if old_cols.contains_key(rel) {
                        continue;
                    }
                    let is_base = !derived.contains(rel);
                    if !is_base && !deltas.changed(rel) {
                        continue; // catalog serves both OLD and NEW
                    }
                    let id = self
                        .catalog
                        .lookup(rel)
                        .ok_or_else(|| Error::exec(format!("unknown relation '{rel}'")))?;
                    let new_set: FxHashSet<Vec<Value>> =
                        self.catalog.rel(id).to_rows().into_iter().collect();
                    let mut old_set = new_set.clone();
                    if let Some(rows) = deltas.plus.get(rel) {
                        if !rows.is_empty() {
                            plus_cols.insert(rel.to_string(), cols_from_rows(scan.arity, rows));
                            for row in rows {
                                old_set.remove(row);
                            }
                        }
                    }
                    if let Some(rows) = deltas.minus.get(rel) {
                        if !rows.is_empty() {
                            minus_cols.insert(rel.to_string(), cols_from_rows(scan.arity, rows));
                            for row in rows {
                                old_set.insert(row.clone());
                            }
                        }
                    }
                    if is_base {
                        new_cols
                            .insert(rel.to_string(), cols_from_iter(scan.arity, new_set.iter()));
                    }
                    old_cols.insert(rel.to_string(), cols_from_iter(scan.arity, old_set.iter()));
                }
            }
        }
        for idb in &stratum.idbs {
            let rel_id = self
                .catalog
                .lookup(&idb.rel)
                .ok_or_else(|| Error::exec(format!("unknown relation '{}'", idb.rel)))?;
            let support = supports
                .entry(idb.rel.clone())
                .or_insert_with(|| SupportTable::new(idb.arity, 64));
            let mut dc: FxHashMap<Vec<Value>, i64> = FxHashMap::default();
            for sq in &idb.subqueries {
                for (p, scan) in sq.scans.iter().enumerate() {
                    for (sign, delta_map) in [(-1i64, &minus_cols), (1i64, &plus_cols)] {
                        let Some(delta_view) = delta_map.get(scan.rel.as_str()) else {
                            continue;
                        };
                        let mut ovr = ScanOverrides::default();
                        ovr.insert(p, RelView::over(delta_view));
                        for (q, qscan) in sq.scans.iter().enumerate() {
                            if q == p {
                                continue;
                            }
                            let side = if q < p { &new_cols } else { &old_cols };
                            if let Some(cols) = side.get(qscan.rel.as_str()) {
                                ovr.insert(q, RelView::over(cols));
                            }
                        }
                        let out =
                            self.eval_maintenance(stratum, sq, &ovr, &SinkMode::Materialize)?;
                        each_row(&out, |row| *dc.entry(row.to_vec()).or_insert(0) += sign);
                    }
                }
            }
            let mut dels: Vec<Vec<Value>> = Vec::new();
            let mut adds: Vec<Vec<Value>> = Vec::new();
            for (row, d) in dc {
                if d == 0 {
                    continue;
                }
                let before = support.count(&row);
                let after = support.add(&row, d);
                debug_assert!(after >= 0, "support count went negative for {row:?}");
                if before > 0 && after <= 0 {
                    dels.push(row);
                } else if before <= 0 && after > 0 {
                    adds.push(row);
                }
            }
            if !dels.is_empty() {
                self.catalog.rel_mut(rel_id).delete_rows(&dels);
                stats.view.view_tuples_retracted += dels.len() as u64;
            }
            if !adds.is_empty() {
                let cols = cols_from_rows(idb.arity, &adds);
                self.catalog.rel_mut(rel_id).append_columns(cols);
                stats.view.view_tuples_seeded += adds.len() as u64;
            }
            if !dels.is_empty() || !adds.is_empty() {
                // Row ids moved (and an equal-sized delete+append would
                // fool a length-based sync): the carried index and any
                // cached build sides over this relation are stale.
                index_carry.remove(&rel_id);
                jcache.invalidate(rel_id);
                if !dels.is_empty() {
                    deltas
                        .minus
                        .entry(idb.rel.clone())
                        .or_default()
                        .extend(dels);
                }
                if !adds.is_empty() {
                    deltas.plus.entry(idb.rel.clone()).or_default().extend(adds);
                }
            }
        }
        stats.view.view_counting_strata += 1;
        Ok(())
    }
}

/// Flush a temporary table to the simulated store — skipped entirely when
/// disk spilling is disabled (EOST pends all I/O until the final commit,
/// and shared-mode runs have no store at all), so the hot loop pays
/// neither the call nor the timer for it.
fn spill_temp(
    cfg: &Config,
    disk: &mut Option<&mut DiskManager>,
    name: &str,
    view: RelView<'_>,
    stats: &mut EvalStats,
) -> Result<()> {
    if cfg.eost {
        return Ok(());
    }
    let Some(disk) = disk.as_deref_mut() else {
        return Ok(());
    };
    let t = Instant::now();
    disk.flush_temp(name, view)?;
    stats.phase.io += t.elapsed();
    Ok(())
}

/// Record first-iteration build-side choices (OOF-NA freezing).
fn freeze_choices(
    catalog: &RunCatalog<'_>,
    stratum: &CompiledStratum,
    idb: &CompiledIdb,
    states: &mut [IdbState],
    idx: usize,
) {
    // Sizes as of this iteration decide once and are kept.
    for (si, sq) in idb.subqueries.iter().enumerate() {
        for (ji, _) in sq.joins.iter().enumerate() {
            if states[idx].frozen[si][ji].is_none() {
                let left_rows = estimate_left_rows(catalog, stratum, states, sq, ji);
                let right_rows = scan_rows(catalog, stratum, states, sq, ji + 1);
                states[idx].frozen[si][ji] = Some(left_rows <= right_rows);
            }
        }
    }
}

fn scan_rows(
    catalog: &RunCatalog<'_>,
    stratum: &CompiledStratum,
    states: &[IdbState],
    sq: &SubQuery,
    scan_idx: usize,
) -> usize {
    let scan = &sq.scans[scan_idx];
    let state = stratum
        .idbs
        .iter()
        .position(|i| i.rel == scan.rel)
        .map(|p| &states[p]);
    match scan.version {
        AtomVersion::Base | AtomVersion::Full => catalog
            .lookup(&scan.rel)
            .map_or(0, |id| catalog.rel(id).len()),
        AtomVersion::Delta => state.map_or(0, |s| s.delta.len()),
        AtomVersion::Old => state.map_or(0, |s| s.old_len),
    }
}

fn estimate_left_rows(
    catalog: &RunCatalog<'_>,
    stratum: &CompiledStratum,
    states: &[IdbState],
    sq: &SubQuery,
    join_idx: usize,
) -> usize {
    // Rough estimate: the max scan size among already-joined atoms.
    (0..=join_idx)
        .map(|i| scan_rows(catalog, stratum, states, sq, i))
        .max()
        .unwrap_or(0)
}

/// Worst-case-optimal-join accounting carried out of subquery evaluation
/// (folded into [`EvalStats::wcoj_runs`] / [`EvalStats::wcoj_rows_emitted`]
/// by the step functions).
#[derive(Default, Clone, Copy)]
struct WcojTally {
    /// Subqueries dispatched to the generic join.
    runs: usize,
    /// Rows its leaf enumeration emitted into the sink, pre-dedup.
    rows: usize,
}

/// Output of [`eval_idb`].
struct EvalOut {
    /// Materializing: the UNION ALL of the subquery outputs (`Rt`,
    /// pre-aggregation layout). With a [`DeltaSink`]: the fresh rows only
    /// — already deduplicated across subqueries and subtracted from `R`.
    /// With an [`AggSink`]: empty — every row was folded into the sink's
    /// aggregate state at the probe site.
    cols: Vec<Vec<Value>>,
    /// Backend queries the evaluation cost (UIE batches them into one).
    queries: usize,
    /// Generic-join accounting across the IDB's subqueries.
    wcoj: WcojTally,
}

/// Evaluate all subqueries of one IDB.
///
/// With a `Delta` sink, every subquery's final operator streams its rows
/// through it, so the union below concatenates *disjoint fresh* row sets
/// (the shared scratch table dedups across rules at source); with an
/// `Agg` sink the rows are folded into concurrent aggregate state and the
/// union stays empty; `Materialize` is Algorithm 1's `uieval`.
#[allow(clippy::too_many_arguments)]
fn eval_idb(
    ctx: &ExecCtx,
    cfg: &Config,
    catalog: &RunCatalog<'_>,
    stratum: &CompiledStratum,
    idb: &CompiledIdb,
    states: &[IdbState],
    idx: usize,
    jcache: &mut JoinCache<'_>,
    sink: &SinkMode<'_>,
    seeded: bool,
) -> Result<EvalOut> {
    let out_arity = idb.arity;
    let mut unioned: Vec<Vec<Value>> = vec![Vec::new(); out_arity];
    let mut queries = 0usize;
    let mut wcoj = WcojTally::default();
    for (si, sq) in idb.subqueries.iter().enumerate() {
        // Seeded re-entry: subqueries with no ∆ scan re-derive only what
        // the maintenance seed pass already streamed; skipping them is
        // what makes a small-delta refresh cost |∆|-ish, not |R|-ish.
        if seeded && sq.delta_scan.is_none() {
            continue;
        }
        let cols = eval_subquery(
            ctx,
            cfg,
            catalog,
            stratum,
            sq,
            states,
            &states[idx].frozen[si],
            jcache,
            None,
            sink,
            &mut wcoj,
        )?;
        if cfg.uie {
            // One unified query: results land in a single output buffer.
            // The first subquery's columns are moved, not copied.
            for (dst, mut src) in unioned.iter_mut().zip(cols) {
                if dst.is_empty() {
                    *dst = src;
                } else {
                    dst.append(&mut src);
                }
            }
        } else {
            // Individual evaluation: materialize a per-subquery temp table,
            // then merge — the extra query + copy of Figure 4 (left).
            let mut tmp = Relation::new(Schema::with_arity(idb.tmp_names[si].clone(), out_arity));
            tmp.append_columns(cols);
            for (c, dst) in unioned.iter_mut().enumerate() {
                dst.extend_from_slice(tmp.col(c));
            }
            queries += 2; // the INSERT plus its merge leg
        }
    }
    if cfg.uie {
        queries += 1;
    }
    Ok(EvalOut {
        cols: unioned,
        queries,
        wcoj,
    })
}

/// Evaluate one subquery to its head layout.
///
/// `sink` applies only to the subquery's *final* operator — the one
/// projecting to the head layout; intermediate join results materialize
/// as before (they feed the next join, not `Rt`).
/// Per-scan-position view replacements for incremental-maintenance passes
/// (see [`eval_subquery`]'s `overrides` parameter).
type ScanOverrides<'v> = FxHashMap<usize, RelView<'v>>;

/// Evaluate one subquery to its head layout.
///
/// With `overrides`, the subquery is evaluated as a *maintenance pass*:
/// an overridden scan position reads the given view instead of its
/// compiled source, and every un-overridden position reads the catalog's
/// full relation by name — the Base/Full/Delta/Old version annotation is
/// ignored (maintenance passes carry no per-stratum delta state). The
/// join cache must be disabled for such calls: a cached build side would
/// serve the catalog's rows for an overridden position.
#[allow(clippy::too_many_arguments)]
fn eval_subquery<'a>(
    ctx: &ExecCtx,
    cfg: &Config,
    catalog: &'a RunCatalog<'_>,
    stratum: &CompiledStratum,
    sq: &SubQuery,
    states: &'a [IdbState],
    frozen: &[Option<bool>],
    jcache: &mut JoinCache<'_>,
    overrides: Option<&ScanOverrides<'a>>,
    sink: &SinkMode<'_>,
    wcoj: &mut WcojTally,
) -> Result<Vec<Vec<Value>>> {
    debug_assert!(
        overrides.is_none() || !jcache.enabled,
        "maintenance passes must run with the join cache disabled"
    );
    let source_of = |i: usize| -> Result<RelView<'a>> {
        let scan = &sq.scans[i];
        match overrides {
            Some(ovr) => match ovr.get(&i) {
                Some(v) => Ok(*v),
                None => {
                    let id = catalog
                        .lookup(&scan.rel)
                        .ok_or_else(|| Error::exec(format!("unknown relation '{}'", scan.rel)))?;
                    Ok(catalog.rel(id).view())
                }
            },
            None => resolve_view(catalog, stratum, states, &scan.rel, scan.version),
        }
    };
    // Materialize filtered scans; untouched scans stay zero-copy views.
    let mut filtered: Vec<Option<Vec<Vec<Value>>>> = Vec::with_capacity(sq.scans.len());
    for (i, scan) in sq.scans.iter().enumerate() {
        let view = source_of(i)?;
        if scan.filters.is_empty() {
            filtered.push(None);
        } else {
            let identity: Vec<Expr> = (0..scan.arity).map(Expr::Col).collect();
            filtered.push(Some(project_filter(ctx, view, &identity, &scan.filters)));
        }
    }
    let view_of = |i: usize| -> Result<RelView<'_>> {
        match &filtered[i] {
            Some(cols) => Ok(RelView::over(cols)),
            None => source_of(i),
        }
    };

    // Cyclic bodies: walk all scans at once as a variable-ordered generic
    // join (worst-case optimal) instead of a chain of binary joins, so no
    // 2-path-shaped intermediate ever materializes. The planner attaches
    // the plan at compile time; the flag picks at run time, which lets one
    // compiled program serve both ablation arms. Eligibility guarantees
    // empty per-scan filters and no negations, so the plain body path
    // below is fully subsumed.
    if cfg.wcoj {
        if let Some(wp) = &sq.wcoj {
            let mut views = Vec::with_capacity(sq.scans.len());
            for i in 0..sq.scans.len() {
                views.push(view_of(i)?);
            }
            // Same width-accurate materialization cap as the join chain:
            // the producer stops emitting past it and the post-check turns
            // the truncation into an out-of-memory error.
            let mut capped = ctx.clone();
            capped.row_cap = (cfg.mem_budget_bytes / (sq.head_exprs.len().max(1) * 8)).max(1);
            let spec = WcojSpec {
                levels: wp.levels,
                scan_cols: &wp.scan_cols,
                level_scans: &wp.level_scans,
                level_slots: &wp.level_slots,
                width: sq.width,
                output: &sq.head_exprs,
                residual: &sq.residual,
            };
            let (cols, emitted) = wcoj_sink(&capped, &views, &spec, sink);
            wcoj.runs += 1;
            wcoj.rows += emitted;
            let rows = cols.first().map_or(0, Vec::len);
            let bytes = cols.iter().map(|c| c.len() * 8).sum::<usize>();
            if rows >= capped.row_cap || bytes > cfg.mem_budget_bytes {
                return Err(Error::exec(format!(
                    "out of memory: WCOJ output {rows} rows / {bytes} bytes exceed budget {}",
                    cfg.mem_budget_bytes
                )));
            }
            return Ok(cols);
        }
    }

    let has_neg = !sq.negations.is_empty();
    let identity_of = |w: usize| -> Vec<Expr> { (0..w).map(Expr::Col).collect() };

    // Positive join chain.
    let mut acc: Vec<Vec<Value>>;
    if sq.scans.len() == 1 {
        let (output, residual): (Vec<Expr>, &[_]) = if has_neg {
            (identity_of(sq.width), sq.residual.as_slice())
        } else {
            (sq.head_exprs.clone(), sq.residual.as_slice())
        };
        let stage_sink = if has_neg {
            &SinkMode::Materialize
        } else {
            sink
        };
        acc = project_filter_sink(ctx, view_of(0)?, &output, residual, stage_sink);
    } else {
        acc = Vec::new();
        let mut width = sq.scans[0].arity;
        for (ji, join) in sq.joins.iter().enumerate() {
            let right = view_of(ji + 1)?;
            let left_is_first = ji == 0;
            let last = ji == sq.joins.len() - 1;
            let out_width = width + sq.scans[ji + 1].arity;
            let (output, residual): (Vec<Expr>, &[_]) = if last && !has_neg {
                (sq.head_exprs.clone(), sq.residual.as_slice())
            } else if last {
                (identity_of(out_width), sq.residual.as_slice())
            } else {
                (identity_of(out_width), &[])
            };
            let left_view = if left_is_first {
                view_of(0)?
            } else {
                RelView::over(&acc)
            };
            // Width-accurate materialization cap for this join's output:
            // producers stop emitting past it and the post-check below
            // converts the truncation into an out-of-memory error. (With a
            // delta sink only fresh rows materialize, so the cap governs
            // exactly what occupies memory.)
            let mut capped = ctx.clone();
            capped.row_cap = (cfg.mem_budget_bytes / (output.len().max(1) * 8)).max(1);
            let ctx = &capped;
            let stage_sink = if last && !has_neg {
                sink
            } else {
                &SinkMode::Materialize
            };
            if join.left_keys.is_empty() {
                acc = cross_join_sink(ctx, left_view, right, &output, residual, stage_sink);
            } else {
                // OOF: choose the build side from current sizes (Selective /
                // Full) or the frozen first-iteration choice (None).
                let build_left = match cfg.oof {
                    OofMode::None => frozen[ji].unwrap_or(left_view.len() <= right.len()),
                    _ => left_view.len() <= right.len(),
                };
                let spec = JoinSpec {
                    left_keys: &join.left_keys,
                    right_keys: &join.right_keys,
                    build_left,
                    output: &output,
                    residual,
                };
                // Serve the build side from the per-stratum cache when it
                // is an unfiltered catalog relation (EDBs and Full views
                // of IDBs): built once, appended thereafter.
                let cached = if !jcache.enabled {
                    None
                } else if build_left && left_is_first {
                    JoinCache::cacheable(catalog, &sq.scans[0])
                } else if !build_left {
                    JoinCache::cacheable(catalog, &sq.scans[ji + 1])
                } else {
                    None
                };
                acc = match cached {
                    Some(rel_id) if !left_view.is_empty() && !right.is_empty() => {
                        let (build_cols, probe_view, probe_cols) = if build_left {
                            (&join.left_keys, right, &join.right_keys)
                        } else {
                            (&join.right_keys, left_view, &join.left_keys)
                        };
                        let (table, mode) = jcache
                            .probe_ready(ctx, catalog, rel_id, build_cols, probe_view, probe_cols);
                        hash_join_prebuilt_sink(
                            ctx, left_view, right, &spec, table, mode, stage_sink,
                        )
                    }
                    _ => hash_join_sink(ctx, left_view, right, &spec, stage_sink),
                };
            }
            // Intermediate materialization must respect the memory budget
            // (the paper's OOM failures on dense graphs come from exactly
            // these join intermediates). Producers stop emitting once they
            // reach ctx.row_cap, so an output at the cap means (possible)
            // truncation: report out-of-memory rather than continuing with
            // partial results.
            let rows = acc.first().map_or(0, Vec::len);
            let bytes = acc.iter().map(|c| c.len() * 8).sum::<usize>();
            if rows >= ctx.row_cap || bytes > cfg.mem_budget_bytes {
                return Err(Error::exec(format!(
                    "out of memory: intermediate {rows} rows / {bytes} bytes exceed budget {}",
                    cfg.mem_budget_bytes
                )));
            }
            width = out_width;
        }
    }

    // Negations as anti joins; the last one projects to the head.
    for (ni, neg) in sq.negations.iter().enumerate() {
        let base = resolve_view(catalog, stratum, states, &neg.rel, AtomVersion::Base)?;
        let neg_filtered;
        let neg_view = if neg.filters.is_empty() {
            base
        } else {
            let identity: Vec<Expr> = (0..neg.arity).map(Expr::Col).collect();
            neg_filtered = project_filter(ctx, base, &identity, &neg.filters);
            RelView::over(&neg_filtered)
        };
        let last = ni == sq.negations.len() - 1;
        let output: Vec<Expr> = if last {
            sq.head_exprs.clone()
        } else {
            identity_of(sq.width)
        };
        let stage_sink = if last { sink } else { &SinkMode::Materialize };
        let acc_view = RelView::over(&acc);
        // Anti-join build sides are always the negated (Base) relation:
        // cacheable whenever unfiltered, same rules as join builds.
        let cached = if jcache.enabled && neg.filters.is_empty() {
            catalog.lookup(&neg.rel)
        } else {
            None
        };
        acc = match cached {
            Some(rel_id) if !acc_view.is_empty() && !neg_view.is_empty() => {
                let (table, mode) = jcache.probe_ready(
                    ctx,
                    catalog,
                    rel_id,
                    &neg.right_keys,
                    acc_view,
                    &neg.left_keys,
                );
                anti_join_prebuilt_sink(
                    ctx,
                    acc_view,
                    neg_view,
                    &neg.left_keys,
                    &neg.right_keys,
                    &output,
                    table,
                    mode,
                    stage_sink,
                )
            }
            _ => anti_join_sink(
                ctx,
                acc_view,
                neg_view,
                &neg.left_keys,
                &neg.right_keys,
                &output,
                stage_sink,
            ),
        };
    }
    Ok(acc)
}

fn find_state<'a>(
    stratum: &CompiledStratum,
    states: &'a [IdbState],
    rel: &str,
) -> Option<&'a IdbState> {
    stratum
        .idbs
        .iter()
        .position(|i| i.rel == rel)
        .map(|p| &states[p])
}

fn resolve_view<'a>(
    catalog: &'a RunCatalog<'_>,
    stratum: &CompiledStratum,
    states: &'a [IdbState],
    rel: &str,
    version: AtomVersion,
) -> Result<RelView<'a>> {
    match version {
        AtomVersion::Base | AtomVersion::Full => {
            let id = catalog
                .lookup(rel)
                .ok_or_else(|| Error::exec(format!("unknown relation '{rel}'")))?;
            Ok(catalog.rel(id).view())
        }
        AtomVersion::Delta => {
            let state = find_state(stratum, states, rel)
                .ok_or_else(|| Error::exec(format!("no delta state for '{rel}'")))?;
            Ok(state.delta.view(catalog.rel(state.rel_id)))
        }
        AtomVersion::Old => {
            let state = find_state(stratum, states, rel)
                .ok_or_else(|| Error::exec(format!("no old state for '{rel}'")))?;
            let id = catalog
                .lookup(rel)
                .ok_or_else(|| Error::exec(format!("unknown relation '{rel}'")))?;
            Ok(catalog.rel(id).prefix_view(state.old_len))
        }
    }
}
