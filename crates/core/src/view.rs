//! Standing materialized views: incremental view maintenance (IVM) over
//! prepared programs.
//!
//! A [`MaterializedView`] keeps a completed run's final IDB relations —
//! plus the full-R [`PersistentIndex`]es the fixpoint built over them —
//! alive across `/facts` commits, so a repeated query is answered by
//! *maintaining* the previous answer instead of re-running the fixpoint
//! from scratch:
//!
//! * **insertions** re-enter semi-naive evaluation with ∆ seeded from the
//!   new tuples only, riding the fused `DeltaSink` path (every candidate
//!   probes the carried full-R index, so dedup + set-difference cost is
//!   proportional to the delta, not to R);
//! * **deletions** of non-recursively-derived tuples run counting-based
//!   maintenance: a [`SupportTable`] side table holds exact
//!   per-derived-tuple support counts, and a tuple retracts exactly when
//!   its last derivation disappears;
//! * **deletions** reaching recursive strata fall back to DRed:
//!   over-delete everything with a derivation through a deleted tuple,
//!   then re-derive what the surviving database still supports.
//!
//! Views are owned by the query service (`recstep-serve`), which keeps a
//! registry keyed by normalized program text next to its prepared-program
//! cache and refreshes every standing view inside the `/facts` write
//! critical section. Programs with aggregation, negation or inline facts
//! — and commits that write a derived relation directly — are outside the
//! maintainable fragment; they fall back to a full scratch recompute
//! (counted in [`ViewStats::view_fallbacks`]), so a view is *always*
//! safe to create, just not always incremental. The
//! [`Config::incremental_views`] flag (CLI `--no-incremental`) disables
//! views entirely for ablation.

use std::mem;
use std::sync::Arc;

use recstep_common::hash::{FxHashMap, FxHashSet};
use recstep_common::sched::CancelToken;
use recstep_common::{Result, Value};
use recstep_datalog::plan::CompiledProgram;
use recstep_exec::index::PersistentIndex;
use recstep_exec::view::SupportTable;
use recstep_storage::{Catalog, RunCatalog};

use crate::config::{Config, PbmeMode};
use crate::db::{Database, RunOutput};
use crate::eval::{EvalRun, RefreshDeltas};
use crate::prepared::PreparedProgram;
use crate::stats::{EvalStats, ViewStats};

/// Whether a program falls inside the maintainable fragment: positive
/// stratified Datalog, no aggregation, no inline facts. (Aggregates are
/// not self-maintainable under deletion without per-group state, negation
/// flips the delta's sign across strata, and inline facts re-load on
/// every run — all are served correctly via the scratch fallback.)
fn program_eligible(prog: &CompiledProgram) -> bool {
    prog.facts.is_empty()
        && prog.strata.iter().all(|s| {
            s.idbs.iter().all(|idb| {
                idb.agg.is_none() && idb.subqueries.iter().all(|sq| sq.negations.is_empty())
            })
        })
}

/// Maintenance re-enters the fused streaming fixpoint with carried
/// indexes; ablations that disable that stack get scratch fallbacks.
fn config_eligible(cfg: &Config) -> bool {
    cfg.incremental_views && cfg.fused_pipeline && cfg.index_reuse && cfg.uie && cfg.eost
}

/// A standing materialized view: one prepared program's results over one
/// database, kept current under `/facts` commits by incremental
/// maintenance (see the module docs for the strategy per change shape).
pub struct MaterializedView {
    prog: Arc<PreparedProgram>,
    /// Engine config with PBME forced off while maintaining — the
    /// bit-matrix path bypasses the index-carrying fixpoint that
    /// maintenance re-enters. Scratch-only views keep the engine config.
    cfg: Config,
    /// Run-local overlay holding the program's IDB results.
    out: Catalog,
    /// Stats of the operation that produced the current contents.
    stats: EvalStats,
    /// Lifetime maintenance counters across every refresh and fallback.
    view_stats: ViewStats,
    /// Program and config are inside the maintainable fragment.
    incremental: bool,
    /// A refresh errored mid-maintenance; contents are untrusted until
    /// the next (automatic) scratch rebuild.
    poisoned: bool,
    /// Carried full-R indexes of the recursive IDBs, by relation name.
    indexes: FxHashMap<String, PersistentIndex>,
    /// Support counts of the counting-maintained IDBs, by relation name.
    supports: FxHashMap<String, SupportTable>,
    /// Pre-commit set contents of every base input relation (effective
    /// deltas are computed against these, then they advance).
    snapshots: FxHashMap<String, FxHashSet<Vec<Value>>>,
}

impl MaterializedView {
    /// Whether a view over `prog` would absorb commits *incrementally*
    /// under its engine's configuration. Creating a view is always safe;
    /// callers use this to decide whether a standing view is worth
    /// holding (an always-scratch view just moves recompute cost into
    /// the committer's critical section).
    pub fn eligible(prog: &PreparedProgram) -> bool {
        config_eligible(prog.engine().config()) && program_eligible(prog.compiled())
    }

    /// Evaluate the program over `db` and keep the result standing. This
    /// *is* the evaluation — there is no cheaper way to create a view
    /// than to run the query once.
    pub fn create(prog: Arc<PreparedProgram>, db: &Database) -> Result<Self> {
        Self::create_cancellable(prog, db, None)
    }

    /// [`MaterializedView::create`] with a cooperative cancellation token
    /// polled at fixpoint iteration boundaries.
    pub fn create_cancellable(
        prog: Arc<PreparedProgram>,
        db: &Database,
        cancel: Option<&CancelToken>,
    ) -> Result<Self> {
        let incremental = Self::eligible(&prog);
        let mut cfg = prog.engine().config().clone();
        if incremental {
            cfg.pbme = PbmeMode::Off;
        }
        let mut view = MaterializedView {
            prog,
            cfg,
            out: Catalog::new(),
            stats: EvalStats::default(),
            view_stats: ViewStats::default(),
            incremental,
            poisoned: false,
            indexes: FxHashMap::default(),
            supports: FxHashMap::default(),
            snapshots: FxHashMap::default(),
        };
        view.rebuild(db, cancel)?;
        Ok(view)
    }

    /// Discard the maintained state and re-evaluate from scratch (also
    /// the fallback path for ineligible commits and poisoned views).
    fn rebuild(&mut self, db: &Database, cancel: Option<&CancelToken>) -> Result<()> {
        self.poisoned = true; // cleared on success
        self.indexes.clear();
        self.supports.clear();
        self.snapshots.clear();
        let compiled = self.prog.compiled();
        let (_, ctx, alpha) = self.prog.engine().parts();
        let mut run = EvalRun {
            cfg: &self.cfg,
            ctx,
            alpha,
            catalog: RunCatalog::shared(db.catalog()),
            disk: None,
            cache: self.cfg.shared_index_cache.then(|| &**db.index_cache()),
            cancel,
        };
        let stats = if self.incremental {
            run.run_carry(compiled, &mut self.indexes)?
        } else {
            run.run(compiled)?
        };
        self.out = run
            .catalog
            .into_overlay()
            .expect("view runs evaluate over an overlay");
        if self.incremental {
            let mut run = EvalRun {
                cfg: &self.cfg,
                ctx,
                alpha,
                catalog: RunCatalog::shared_with(db.catalog(), mem::take(&mut self.out)),
                disk: None,
                cache: None,
                cancel: None,
            };
            let res = run.init_supports(compiled, &mut self.supports);
            self.out = run
                .catalog
                .into_overlay()
                .expect("support init evaluates over an overlay");
            res?;
            for decl in &compiled.relations {
                if decl.is_idb {
                    continue;
                }
                let set = db
                    .catalog()
                    .lookup(&decl.name)
                    .map(|id| db.catalog().rel(id).to_rows().into_iter().collect())
                    .unwrap_or_default();
                self.snapshots.insert(decl.name.clone(), set);
            }
        }
        self.stats = stats;
        self.poisoned = false;
        Ok(())
    }

    /// Bring the view up to date after a committed `/facts` transaction
    /// (`db` already holds the post-commit state; `inserts`/`deletes` are
    /// the commit's per-relation row batches, in commit order).
    ///
    /// Maintains incrementally when eligible; falls back to a scratch
    /// rebuild when the program shape, the configuration, or the commit
    /// itself (a write to a derived relation) is outside the fragment.
    /// An `Err` — or a panic the caller catches — poisons the view: the
    /// next refresh rebuilds from scratch, so a result that missed this
    /// commit's deltas is never observable through
    /// [`MaterializedView::output`].
    pub fn refresh(
        &mut self,
        db: &Database,
        inserts: &[(String, Vec<Vec<Value>>)],
        deletes: &[(String, Vec<Vec<Value>>)],
    ) -> Result<()> {
        // Pessimistically poison for the duration of maintenance. Any
        // early exit — an error (including the injected `view::refresh`
        // failpoint, which fires before maintenance touches anything) or
        // an unwound panic — leaves the mark set, and a view that failed
        // to absorb a commit must rebuild rather than maintain from a
        // snapshot that missed it.
        let was_poisoned = self.poisoned;
        self.poisoned = true;
        let res = self.refresh_inner(db, inserts, deletes, was_poisoned);
        if res.is_ok() {
            self.poisoned = false;
        }
        res
    }

    fn refresh_inner(
        &mut self,
        db: &Database,
        inserts: &[(String, Vec<Vec<Value>>)],
        deletes: &[(String, Vec<Vec<Value>>)],
        was_poisoned: bool,
    ) -> Result<()> {
        recstep_common::fail_point!("view::refresh");
        let compiled = self.prog.compiled();
        let derived: FxHashSet<&str> = compiled
            .relations
            .iter()
            .filter(|d| d.is_idb)
            .map(|d| d.name.as_str())
            .collect();
        let touches_idb = inserts
            .iter()
            .chain(deletes)
            .any(|(name, rows)| !rows.is_empty() && derived.contains(name.as_str()));
        if !self.incremental || was_poisoned || touches_idb {
            self.view_stats.view_fallbacks += 1;
            self.rebuild(db, None)?;
            // Surface the fallback in this operation's stats too, so
            // lifetime aggregation over per-operation stats counts it.
            self.stats.view.view_fallbacks = 1;
            return Ok(());
        }

        // Effective set deltas per base input relation, relative to the
        // view's snapshots. Deletes run after inserts in a commit, so a
        // row both inserted and deleted nets to its pre-commit state.
        let mut ins_by: FxHashMap<&str, Vec<&Vec<Value>>> = FxHashMap::default();
        for (name, rows) in inserts {
            ins_by.entry(name.as_str()).or_default().extend(rows.iter());
        }
        let mut del_by: FxHashMap<&str, FxHashSet<&Vec<Value>>> = FxHashMap::default();
        for (name, rows) in deletes {
            del_by.entry(name.as_str()).or_default().extend(rows.iter());
        }
        let mut deltas = RefreshDeltas::default();
        for (name, snap) in &self.snapshots {
            let dels = del_by.get(name.as_str());
            let mut plus: Vec<Vec<Value>> = Vec::new();
            if let Some(rows) = ins_by.get(name.as_str()) {
                let mut seen: FxHashSet<&Vec<Value>> = FxHashSet::default();
                for &row in rows {
                    if !snap.contains(row)
                        && !dels.is_some_and(|d| d.contains(row))
                        && seen.insert(row)
                    {
                        plus.push(row.clone());
                    }
                }
            }
            let mut minus: Vec<Vec<Value>> = Vec::new();
            if let Some(d) = dels {
                for &row in d.iter() {
                    if snap.contains(row) {
                        minus.push(row.clone());
                    }
                }
            }
            if !plus.is_empty() {
                deltas.plus.insert(name.clone(), plus);
            }
            if !minus.is_empty() {
                deltas.minus.insert(name.clone(), minus);
            }
        }
        if deltas.plus.is_empty() && deltas.minus.is_empty() {
            // The commit never touched this program's inputs: contents
            // stand as-is. Zeroed stats — serving this version cost
            // nothing, and callers aggregating per-operation stats must
            // not re-count the run that originally built the view.
            self.stats = EvalStats::default();
            return Ok(());
        }

        let (_, ctx, alpha) = self.prog.engine().parts();
        let mut run = EvalRun {
            cfg: &self.cfg,
            ctx,
            alpha,
            catalog: RunCatalog::shared_with(db.catalog(), mem::take(&mut self.out)),
            disk: None,
            cache: None,
            cancel: None,
        };
        let res = run.run_refresh(compiled, &mut deltas, &mut self.supports, &mut self.indexes);
        self.out = run
            .catalog
            .into_overlay()
            .expect("refreshes evaluate over an overlay");
        match res {
            Ok(stats) => {
                self.view_stats.merge(&stats.view);
                self.stats = stats;
                // Advance the snapshots to the post-commit base state.
                // (`deltas` also accumulated derived-relation nets, but
                // snapshots only hold base-input names.)
                for (name, snap) in self.snapshots.iter_mut() {
                    if let Some(rows) = deltas.plus.get(name) {
                        for row in rows {
                            snap.insert(row.clone());
                        }
                    }
                    if let Some(rows) = deltas.minus.get(name) {
                        for row in rows {
                            snap.remove(row);
                        }
                    }
                }
                Ok(())
            }
            // The caller keeps the pessimistic poison mark on Err.
            Err(e) => Err(e),
        }
    }

    /// Publish the current contents as an immutable [`RunOutput`] (a deep
    /// copy: the service hands `Arc`s of it to whole query batches while
    /// the view itself stays mutable for the next refresh).
    pub fn output(&self) -> RunOutput {
        RunOutput {
            catalog: self.out.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Stats of the operation that produced the current contents (a
    /// refresh carries [`EvalStats::view`] accounting; a scratch run the
    /// usual fixpoint numbers).
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Lifetime maintenance counters across every refresh and fallback.
    pub fn view_stats(&self) -> &ViewStats {
        &self.view_stats
    }

    /// Whether commits are absorbed incrementally (false = every refresh
    /// is a scratch rebuild: ineligible program shape or configuration).
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// The prepared program this view stands over.
    pub fn program(&self) -> &Arc<PreparedProgram> {
        &self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    const TC: &str = "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).";

    /// The `(relation, rows)` commit shape `refresh` takes.
    type Batch = Vec<(String, Vec<Vec<Value>>)>;

    fn commit(
        db: &mut Database,
        ins: &[(&str, &[(Value, Value)])],
        del: &[(&str, &[(Value, Value)])],
    ) -> (Batch, Batch) {
        let widen = |batch: &[(&str, &[(Value, Value)])]| {
            batch
                .iter()
                .map(|(name, rows)| {
                    (
                        name.to_string(),
                        rows.iter().map(|&(a, b)| vec![a, b]).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let (inserts, deletes) = (widen(ins), widen(del));
        let mut tx = db.transaction();
        for (name, rows) in &inserts {
            tx.load_rows(name, 2, rows.iter().map(Vec::as_slice))
                .unwrap();
        }
        for (name, rows) in &deletes {
            tx.delete_rows(name, 2, rows.iter().map(Vec::as_slice))
                .unwrap();
        }
        tx.commit().unwrap();
        (inserts, deletes)
    }

    fn rows_sorted(out: &RunOutput, name: &str) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = out
            .relation(name)
            .map(|h| h.iter_rows().map(|r| r.to_vec()).collect())
            .unwrap_or_default();
        rows.sort();
        rows
    }

    /// The maintained view must match a from-scratch run after each step.
    fn assert_matches_scratch(view: &MaterializedView, db: &Database, rels: &[&str]) {
        let scratch = view.program().run_shared(db).unwrap();
        let out = view.output();
        for rel in rels {
            assert_eq!(
                rows_sorted(&out, rel),
                rows_sorted(&scratch, rel),
                "maintained '{rel}' diverged from scratch"
            );
        }
    }

    #[test]
    fn tc_view_absorbs_inserts_incrementally() {
        let engine = Engine::builder().threads(2).build().unwrap();
        let prog = Arc::new(engine.prepare(TC).unwrap());
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        assert!(view.incremental());
        assert_eq!(view.output().row_count("tc"), 6);

        let (ins, del) = commit(&mut db, &[("arc", &[(3, 4)])], &[]);
        view.refresh(&db, &ins, &del).unwrap();
        assert_eq!(view.view_stats().view_refreshes, 1);
        assert_eq!(view.view_stats().view_fallbacks, 0);
        assert!(view.view_stats().view_seeded_strata >= 1);
        assert_matches_scratch(&view, &db, &["tc"]);
        assert_eq!(view.output().row_count("tc"), 10);
    }

    #[test]
    fn tc_view_absorbs_deletes_via_dred() {
        let engine = Engine::builder().threads(2).build().unwrap();
        let prog = Arc::new(engine.prepare(TC).unwrap());
        let mut db = Database::new().unwrap();
        // A diamond plus a tail: deleting one diamond edge keeps paths
        // alive through the other side (the classic DRed rederive case).
        db.load_edges("arc", &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
            .unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        let (ins, del) = commit(&mut db, &[], &[("arc", &[(1, 3)])]);
        view.refresh(&db, &ins, &del).unwrap();
        assert!(view.view_stats().view_dred_strata >= 1);
        assert!(view.view_stats().view_tuples_retracted >= 1);
        assert_matches_scratch(&view, &db, &["tc"]);
        // 0→3 and 0→4 must survive through the 0→2→3 side.
        let rows = rows_sorted(&view.output(), "tc");
        assert!(
            rows.contains(&vec![0, 3]) && rows.contains(&vec![0, 4]),
            "{rows:?}"
        );
        assert!(
            !rows.contains(&vec![1, 3]) && !rows.contains(&vec![1, 4]),
            "{rows:?}"
        );
    }

    #[test]
    fn mixed_commit_and_noop_deltas() {
        let engine = Engine::builder().threads(1).build().unwrap();
        let prog = Arc::new(engine.prepare(TC).unwrap());
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        // Insert + delete in one commit, plus a duplicate insert (no-op)
        // and a delete of an absent row (no-op).
        let (ins, del) = commit(
            &mut db,
            &[("arc", &[(2, 3), (0, 1), (7, 8)])],
            &[("arc", &[(1, 2), (5, 6), (7, 8)])],
        );
        view.refresh(&db, &ins, &del).unwrap();
        assert_matches_scratch(&view, &db, &["tc"]);
        // A commit to a relation the program never reads is a no-op.
        let mut tx = db.transaction();
        tx.load_rows("unrelated", 2, [vec![1, 2]].iter().map(Vec::as_slice))
            .unwrap();
        tx.commit().unwrap();
        view.refresh(&db, &[("unrelated".into(), vec![vec![1, 2]])], &[])
            .unwrap();
        assert_matches_scratch(&view, &db, &["tc"]);
    }

    #[test]
    fn nonrecursive_program_uses_counting() {
        let engine = Engine::builder().threads(1).build().unwrap();
        // Two-hop join: purely non-recursive, so deletes go through the
        // support-count path rather than DRed.
        let prog = Arc::new(
            engine
                .prepare("hop2(x, y) :- arc(x, z), arc(z, y).")
                .unwrap(),
        );
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2), (1, 3), (0, 4), (4, 2)])
            .unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        assert_matches_scratch(&view, &db, &["hop2"]);
        // (0,2) has two derivations (via 1 and via 4): deleting one edge
        // must keep it; deleting both must retract it.
        let (ins, del) = commit(&mut db, &[], &[("arc", &[(1, 2)])]);
        view.refresh(&db, &ins, &del).unwrap();
        assert!(view.view_stats().view_counting_strata >= 1);
        assert_matches_scratch(&view, &db, &["hop2"]);
        assert!(rows_sorted(&view.output(), "hop2").contains(&vec![0, 2]));
        let (ins, del) = commit(&mut db, &[], &[("arc", &[(4, 2)])]);
        view.refresh(&db, &ins, &del).unwrap();
        assert!(!rows_sorted(&view.output(), "hop2").contains(&vec![0, 2]));
        assert_matches_scratch(&view, &db, &["hop2"]);
    }

    #[test]
    fn ineligible_programs_fall_back_to_scratch() {
        let engine = Engine::builder().threads(1).build().unwrap();
        let prog = Arc::new(engine.prepare("s(x, SUM(y)) :- e(x, y).").unwrap());
        let mut db = Database::new().unwrap();
        db.load_edges("e", &[(1, 10), (1, 20)]).unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        assert!(!view.incremental());
        assert_eq!(rows_sorted(&view.output(), "s"), vec![vec![1, 30]]);
        let (ins, del) = commit(&mut db, &[("e", &[(1, 5)])], &[]);
        view.refresh(&db, &ins, &del).unwrap();
        assert_eq!(view.view_stats().view_fallbacks, 1);
        assert_eq!(rows_sorted(&view.output(), "s"), vec![vec![1, 35]]);
    }

    #[test]
    fn idb_touching_commit_falls_back() {
        let engine = Engine::builder().threads(1).build().unwrap();
        let prog = Arc::new(engine.prepare(TC).unwrap());
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1)]).unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        assert!(view.incremental());
        // Writing the derived relation directly is outside the fragment.
        let (ins, del) = commit(&mut db, &[("tc", &[(9, 9)])], &[]);
        view.refresh(&db, &ins, &del).unwrap();
        assert_eq!(view.view_stats().view_fallbacks, 1);
        assert_matches_scratch(&view, &db, &["tc"]);
    }

    #[test]
    fn no_incremental_ablation_disables_maintenance() {
        let engine = Engine::builder()
            .threads(1)
            .incremental_views(false)
            .build()
            .unwrap();
        let prog = Arc::new(engine.prepare(TC).unwrap());
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
        let mut view = MaterializedView::create(Arc::clone(&prog), &db).unwrap();
        assert!(!view.incremental());
        let (ins, del) = commit(&mut db, &[("arc", &[(2, 3)])], &[]);
        view.refresh(&db, &ins, &del).unwrap();
        assert_eq!(view.view_stats().view_fallbacks, 1);
        assert_matches_scratch(&view, &db, &["tc"]);
    }
}
