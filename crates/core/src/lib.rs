//! # RecStep — a parallel in-memory Datalog engine on a relational substrate
//!
//! Rust reproduction of *Scaling-Up In-Memory Datalog Processing:
//! Observations and Techniques* (Fan et al., VLDB 2019): a general-purpose
//! Datalog engine evaluating stratified programs with negation and
//! (recursive) aggregation by semi-naïve evaluation over a parallel
//! columnar backend, with the paper's five engine optimizations — UIE, OOF,
//! DSD, EOST, FAST-DEDUP — plus parallel bit-matrix evaluation (PBME) for
//! dense-graph TC/SG strata. Every optimization is a [`Config`] toggle so
//! the paper's ablations are one flag away.
//!
//! ```
//! use recstep::{Config, RecStep};
//!
//! let mut engine = RecStep::new(Config::default().threads(2)).unwrap();
//! engine.load_edges("arc", &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let stats = engine
//!     .run_source("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).")
//!     .unwrap();
//! assert_eq!(engine.row_count("tc"), 6);
//! assert!(stats.iterations >= 1);
//! ```

pub mod capabilities;
pub mod config;
pub mod engine;
pub mod io;
pub mod pbme;
pub mod stats;

pub use config::{Config, OofMode, PbmeMode};
pub use engine::RecStep;
pub use stats::{EvalStats, PhaseTimes, StratumStats};

// Re-exports so downstream users need only this crate.
pub use recstep_common::{Error, Result, Value};
pub use recstep_datalog::{analyze, parser, plan, programs, sqlgen};
pub use recstep_exec::dedup::DedupImpl;
pub use recstep_exec::setdiff::SetDiffStrategy;

/// Parse + analyze + compile a program source in one call (for tools that
/// want the plan without an engine, e.g. SQL rendering).
pub fn compile_source(src: &str) -> Result<recstep_datalog::CompiledProgram> {
    plan::compile(&analyze::analyze(parser::parse(src)?)?)
}
