//! # RecStep — a parallel in-memory Datalog engine on a relational substrate
//!
//! Rust reproduction of *Scaling-Up In-Memory Datalog Processing:
//! Observations and Techniques* (Fan et al., VLDB 2019): a general-purpose
//! Datalog engine evaluating stratified programs with negation and
//! (recursive) aggregation by semi-naïve evaluation over a parallel
//! columnar backend, with the paper's five engine optimizations — UIE, OOF,
//! DSD, EOST, FAST-DEDUP — plus parallel bit-matrix evaluation (PBME) for
//! dense-graph TC/SG strata. Every optimization is a builder toggle so the
//! paper's ablations are one flag away.
//!
//! ## The three-part API
//!
//! * [`Engine`] — immutable evaluation machinery (config + worker pool +
//!   planner), built once via the fluent [`EngineBuilder`]; `Send + Sync`
//!   and cheap to clone.
//! * [`Database`] — the data: EDB facts loaded through batched `load_*`
//!   calls or a [`Transaction`] bulk loader, IDB results read back through
//!   zero-copy [`RelHandle`]s.
//! * [`PreparedProgram`] — a program parsed, analyzed and compiled
//!   **once** ([`Engine::prepare`]), then run any number of times —
//!   concurrently over distinct databases ([`PreparedProgram::run`]), or
//!   concurrently over **one** shared database
//!   ([`PreparedProgram::run_shared`], results in a [`RunOutput`] overlay,
//!   with frozen-relation join indexes built once across all runs via the
//!   database's [`IndexCache`]).
//!
//! ```
//! use recstep::{Database, Engine};
//!
//! let engine = Engine::builder().threads(2).build().unwrap();
//! let tc = engine
//!     .prepare("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).")
//!     .unwrap();
//!
//! let mut db = Database::new().unwrap();
//! db.load_edges("arc", &[(0, 1), (1, 2), (2, 3)]).unwrap();
//! let stats = tc.run(&mut db).unwrap();
//!
//! let result = db.relation("tc").unwrap();
//! assert_eq!(result.len(), 6);
//! assert!(result.as_pairs().unwrap().contains(&(0, 3)));
//! assert!(stats.iterations >= 1);
//! ```
//!
//! ## Migrating from the old `RecStep` surface
//!
//! The former `RecStep` god-object (still available as a deprecated shim)
//! fused all three roles and re-compiled the program on every
//! `run_source` call. The mapping:
//!
//! | old (`RecStep`)                  | new                                            |
//! |----------------------------------|------------------------------------------------|
//! | `RecStep::new(config)`           | `Engine::builder()...build()` / [`Engine::from_config`] |
//! | `engine.load_edges(...)`         | [`Database::load_edges`] (or a [`Transaction`]) |
//! | `engine.run_source(src)` (N×)    | [`Engine::prepare`] once + [`PreparedProgram::run`] N× |
//! | `engine.rows("tc")` (clones)     | `db.relation("tc")` → [`RelHandle`] (`iter_rows`, `as_pairs`, `try_decode`; `to_vec` to clone) |
//! | `engine.row_count("tc")`         | [`Database::row_count`]                        |
//! | `RecStep::explain(src)`          | [`PreparedProgram::explain_sql`]               |

#![deny(missing_docs)]

pub mod capabilities;
pub mod config;
pub mod db;
pub mod engine;
mod eval;
pub mod io;
pub mod pbme;
pub mod prepared;
mod shim;
pub mod stats;
pub mod view;

pub use config::{Config, OofMode, PbmeMode, ServeConfig};
pub use db::{Database, RunOutput, Transaction};
pub use engine::{Engine, EngineBuilder};
pub use prepared::PreparedProgram;
pub use recstep_exec::cache::IndexCache;
#[allow(deprecated)]
pub use shim::RecStep;
pub use stats::{EvalStats, IndexStats, PhaseTimes, StratumStats, ViewStats};
pub use view::MaterializedView;

// Re-exports so downstream users need only this crate.
pub use recstep_common::{Error, Result, Value};
pub use recstep_datalog::{analyze, parser, plan, programs, sqlgen};
pub use recstep_exec::dedup::DedupImpl;
pub use recstep_exec::setdiff::SetDiffStrategy;
pub use recstep_storage::wal;
pub use recstep_storage::{Durability, RelHandle, Relation, RowDecode, RowIter, RowRef};

/// Parse + analyze + compile a program source in one call (for tools that
/// want the plan without an engine, e.g. SQL rendering).
pub fn compile_source(src: &str) -> Result<recstep_datalog::CompiledProgram> {
    plan::compile(&analyze::analyze(parser::parse(src)?)?)
}
