//! The database: EDB facts plus derived relations, separated from the
//! engine that computes over them.
//!
//! A [`Database`] owns a [`Catalog`] of columnar relations and the
//! simulated persistent store backing them. It knows nothing about
//! evaluation: programs are compiled by an [`crate::Engine`] into
//! [`crate::PreparedProgram`]s, which run over any database — one program
//! over many databases, many programs over one database, or both.
//!
//! Results come back through the zero-copy [`RelHandle`] layer:
//! [`Database::relation`] borrows the stored columns directly, and
//! materializing an owned `Vec<Vec<Value>>` is an explicit `to_vec()`
//! escape hatch rather than the default.
//!
//! The database also owns the **shared cross-run index cache**
//! ([`Database::index_cache`]): join build-side indexes over frozen
//! relations, built by one run and reused — concurrently — by every other
//! run over this database. The cache is keyed by catalog version, so
//! loading new data never serves stale indexes; it just makes them cold.

use std::sync::Arc;

use recstep_common::{Error, Result, Value};
use recstep_exec::cache::IndexCache;
use recstep_storage::wal::WalCommit;
use recstep_storage::{Catalog, CommitMode, DiskManager, RelHandle, Schema};

use crate::stats::EvalStats;

/// A collection of relations: EDB inputs plus the IDB results of any
/// programs that have run over it.
pub struct Database {
    catalog: Catalog,
    disk: DiskManager,
    cache: Arc<IndexCache>,
}

// `&Database` is handed to N concurrent `run_shared` evaluations.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    /// Create an empty database with a fresh simulated persistent store.
    pub fn new() -> Result<Self> {
        Ok(Database {
            catalog: Catalog::new(),
            disk: DiskManager::new(CommitMode::Eost)?,
            cache: Arc::new(IndexCache::new()),
        })
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Zero-copy handle over a relation, if it exists.
    pub fn relation(&self, name: &str) -> Option<RelHandle<'_>> {
        self.catalog
            .lookup(name)
            .map(|id| RelHandle::new(self.catalog.rel(id)))
    }

    /// Row count of a relation (0 if unknown).
    pub fn row_count(&self, name: &str) -> usize {
        self.catalog
            .lookup(name)
            .map_or(0, |id| self.catalog.rel(id).len())
    }

    /// Total heap bytes across all stored relations.
    pub fn heap_bytes(&self) -> usize {
        self.catalog.heap_bytes()
    }

    /// Load (or extend) a relation from row-major data in one batch.
    pub fn load_relation(&mut self, name: &str, arity: usize, rows: &[Vec<Value>]) -> Result<()> {
        let mut tx = self.transaction();
        tx.load_rows(name, arity, rows.iter().map(Vec::as_slice))?;
        tx.commit()
    }

    /// Load a binary edge relation.
    pub fn load_edges(&mut self, name: &str, edges: &[(Value, Value)]) -> Result<()> {
        let mut tx = self.transaction();
        tx.load_edges(name, edges)?;
        tx.commit()
    }

    /// Load a weighted edge relation `(src, dst, weight)`.
    pub fn load_weighted_edges(
        &mut self,
        name: &str,
        edges: &[(Value, Value, Value)],
    ) -> Result<()> {
        let mut tx = self.transaction();
        tx.load_weighted_edges(name, edges)?;
        tx.commit()
    }

    /// Load a binary relation given symbolically; strings are dictionary
    /// encoded (paper §5.2 fn. 2) into `dict`, which also resolves results
    /// back via [`recstep_common::dict::Dictionary::resolve`].
    pub fn load_symbolic_edges(
        &mut self,
        name: &str,
        dict: &mut recstep_common::dict::Dictionary,
        edges: &[(&str, &str)],
    ) -> Result<()> {
        let encoded: Vec<(Value, Value)> = edges
            .iter()
            .map(|&(a, b)| (dict.intern(a), dict.intern(b)))
            .collect();
        self.load_edges(name, &encoded)
    }

    /// Start a bulk-load transaction: stage any number of `load_*` calls,
    /// then [`Transaction::commit`] applies them all at once (or drop the
    /// transaction to discard everything staged).
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction {
            db: self,
            staged: Vec::new(),
        }
    }

    /// Catalog version of one relation (0 if it does not exist yet).
    ///
    /// Every commit touching the relation bumps this; the query service
    /// uses it to invalidate prepared programs per relation read rather
    /// than on every `/facts` commit.
    pub fn relation_version(&self, name: &str) -> u64 {
        self.catalog
            .lookup(name)
            .map_or(0, |id| self.catalog.version(id))
    }

    /// WAL-recovery entry point: apply one logged `/facts` commit through
    /// a regular [`Transaction`], reproducing exactly what the original
    /// commit did (inserts first, then staged deletes).
    pub fn apply_wal_commit(&mut self, commit: &WalCommit) -> Result<()> {
        let mut tx = self.transaction();
        for b in &commit.inserts {
            if b.arity == 0 {
                return Err(Error::durability(format!(
                    "wal commit v{}: relation '{}' has arity 0",
                    commit.version, b.name
                )));
            }
            tx.load_rows(&b.name, b.arity, b.rows.chunks(b.arity))?;
        }
        for b in &commit.deletes {
            if b.arity == 0 {
                return Err(Error::durability(format!(
                    "wal commit v{}: relation '{}' has arity 0",
                    commit.version, b.name
                )));
            }
            tx.delete_rows(&b.name, b.arity, b.rows.chunks(b.arity))?;
        }
        tx.commit()
    }

    /// The shared cross-run index cache owned by this database.
    ///
    /// Useful for observation (resident bytes, entry count) and for
    /// explicit spills: [`IndexCache::evict_all`] drops every entry no run
    /// is currently using, after which the next run simply rebuilds.
    ///
    /// ```
    /// use recstep::{Database, Engine};
    ///
    /// let engine = Engine::builder().threads(1).build().unwrap();
    /// let prog = engine.prepare("p(x) :- node(x), !blocked(x).").unwrap();
    /// let mut db = Database::new().unwrap();
    /// db.load_relation("node", 1, &[vec![1], vec![2], vec![3]]).unwrap();
    /// db.load_relation("blocked", 1, &[vec![1], vec![3]]).unwrap();
    ///
    /// let first = prog.run(&mut db).unwrap();
    /// assert_eq!(first.index.cache_misses, 1); // built + published
    /// assert!(db.index_cache().resident_bytes() > 0);
    ///
    /// let again = prog.run(&mut db).unwrap();
    /// assert_eq!(again.index.cache_hits, 1); // reused, not rebuilt
    ///
    /// db.index_cache().evict_all(); // explicit spill: next run rebuilds
    /// assert_eq!(db.index_cache().resident_bytes(), 0);
    /// ```
    pub fn index_cache(&self) -> &Arc<IndexCache> {
        &self.cache
    }

    /// Split borrow for evaluation: mutable catalog + mutable store.
    pub(crate) fn eval_parts(&mut self) -> (&mut Catalog, &mut DiskManager) {
        (&mut self.catalog, &mut self.disk)
    }
}

/// The results of one shared-mode evaluation
/// ([`crate::PreparedProgram::run_shared`]): the run-local overlay catalog
/// holding every relation the run derived (or shadowed), plus the run's
/// statistics. The base [`Database`] is untouched — reading results goes
/// through this value instead.
pub struct RunOutput {
    pub(crate) catalog: Catalog,
    pub(crate) stats: EvalStats,
}

impl RunOutput {
    /// Zero-copy handle over a derived relation, if this run produced it.
    pub fn relation(&self, name: &str) -> Option<RelHandle<'_>> {
        self.catalog
            .lookup(name)
            .map(|id| RelHandle::new(self.catalog.rel(id)))
    }

    /// Row count of a derived relation (0 if this run did not produce it).
    pub fn row_count(&self, name: &str) -> usize {
        self.catalog
            .lookup(name)
            .map_or(0, |id| self.catalog.rel(id).len())
    }

    /// The run's evaluation statistics.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// The overlay catalog itself (every relation this run wrote).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// One staged relation of a [`Transaction`]: name, arity, column-major
/// inserts plus row-major deletes.
struct Staged {
    name: String,
    arity: usize,
    cols: Vec<Vec<Value>>,
    deletes: Vec<Vec<Value>>,
}

/// A bulk loader staging rows for several relations and applying them
/// atomically on [`commit`](Transaction::commit).
///
/// Validation (arity conflicts with already-stored relations or between
/// staged batches) happens at staging time, so a `commit` after successful
/// `load_*` calls cannot half-apply: either every staged row lands or —
/// when the transaction is dropped instead — none do.
pub struct Transaction<'a> {
    db: &'a mut Database,
    staged: Vec<Staged>,
}

impl Transaction<'_> {
    /// Stage row-major data for a relation.
    pub fn load_rows<'r>(
        &mut self,
        name: &str,
        arity: usize,
        rows: impl IntoIterator<Item = &'r [Value]>,
    ) -> Result<()> {
        // Buffer locally first so a ragged row part-way through leaves
        // nothing staged from this call.
        let mut cols = vec![Vec::new(); arity];
        for row in rows {
            if row.len() != arity {
                return Err(Error::exec(format!(
                    "row arity {} does not match declared arity {arity} for '{name}'",
                    row.len()
                )));
            }
            for (col, &v) in cols.iter_mut().zip(row) {
                col.push(v);
            }
        }
        let staged = self.staged_entry(name, arity)?;
        for (dst, mut src) in staged.cols.iter_mut().zip(cols) {
            dst.append(&mut src);
        }
        Ok(())
    }

    /// Stage a binary edge relation.
    pub fn load_edges(&mut self, name: &str, edges: &[(Value, Value)]) -> Result<()> {
        let staged = self.staged_entry(name, 2)?;
        staged.cols[0].extend(edges.iter().map(|&(s, _)| s));
        staged.cols[1].extend(edges.iter().map(|&(_, t)| t));
        Ok(())
    }

    /// Stage a weighted edge relation `(src, dst, weight)`.
    pub fn load_weighted_edges(
        &mut self,
        name: &str,
        edges: &[(Value, Value, Value)],
    ) -> Result<()> {
        let staged = self.staged_entry(name, 3)?;
        staged.cols[0].extend(edges.iter().map(|&(s, _, _)| s));
        staged.cols[1].extend(edges.iter().map(|&(_, t, _)| t));
        staged.cols[2].extend(edges.iter().map(|&(_, _, w)| w));
        Ok(())
    }

    /// Stage whole-tuple deletions for a relation (applied after this
    /// transaction's inserts; every matching occurrence is removed).
    pub fn delete_rows<'r>(
        &mut self,
        name: &str,
        arity: usize,
        rows: impl IntoIterator<Item = &'r [Value]>,
    ) -> Result<()> {
        let mut staged_rows = Vec::new();
        for row in rows {
            if row.len() != arity {
                return Err(Error::exec(format!(
                    "row arity {} does not match declared arity {arity} for '{name}'",
                    row.len()
                )));
            }
            staged_rows.push(row.to_vec());
        }
        let staged = self.staged_entry(name, arity)?;
        staged.deletes.append(&mut staged_rows);
        Ok(())
    }

    /// Apply every staged batch to the database.
    pub fn commit(self) -> Result<()> {
        for staged in self.staged {
            let id = match self.db.catalog.lookup(&staged.name) {
                Some(id) => id,
                None => self
                    .db
                    .catalog
                    .create(Schema::with_arity(&staged.name, staged.arity))?,
            };
            let rel = self.db.catalog.rel_mut(id);
            rel.append_columns(staged.cols);
            if !staged.deletes.is_empty() {
                rel.delete_rows(&staged.deletes);
            }
        }
        Ok(())
    }

    fn staged_entry(&mut self, name: &str, arity: usize) -> Result<&mut Staged> {
        // Arity conflicts surface at staging time, before anything applies.
        if let Some(id) = self.db.catalog.lookup(name) {
            let existing = self.db.catalog.rel(id).arity();
            if existing != arity {
                return Err(Error::exec(format!(
                    "relation '{name}' exists with arity {existing}, got {arity}"
                )));
            }
        }
        let pos = match self.staged.iter().position(|s| s.name == name) {
            Some(pos) => {
                if self.staged[pos].arity != arity {
                    return Err(Error::exec(format!(
                        "relation '{name}' staged with arity {}, got {arity}",
                        self.staged[pos].arity
                    )));
                }
                pos
            }
            None => {
                self.staged.push(Staged {
                    name: name.to_string(),
                    arity,
                    cols: vec![Vec::new(); arity],
                    deletes: Vec::new(),
                });
                self.staged.len() - 1
            }
        };
        Ok(&mut self.staged[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_read_back_through_handle() {
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
        db.load_edges("arc", &[(3, 4)]).unwrap();
        assert_eq!(db.row_count("arc"), 3);
        let arc = db.relation("arc").unwrap();
        assert_eq!(arc.as_pairs().unwrap(), vec![(1, 2), (2, 3), (3, 4)]);
        assert!(db.relation("nope").is_none());
        assert!(db.heap_bytes() >= 3 * 2 * 8);
    }

    #[test]
    fn transaction_is_all_or_nothing() {
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(1, 2)]).unwrap();
        // Arity conflict detected at staging; nothing staged before the
        // failure lands because the transaction is dropped uncommitted.
        let mut tx = db.transaction();
        tx.load_edges("other", &[(5, 6)]).unwrap();
        let err = tx.load_rows("arc", 3, [vec![1, 2, 3]].iter().map(Vec::as_slice));
        assert!(err.is_err());
        drop(tx);
        assert_eq!(db.row_count("other"), 0);
        assert_eq!(db.row_count("arc"), 1);
        // A committed transaction applies every staged batch.
        let mut tx = db.transaction();
        tx.load_edges("arc", &[(2, 3)]).unwrap();
        tx.load_weighted_edges("warc", &[(1, 2, 9)]).unwrap();
        tx.commit().unwrap();
        assert_eq!(db.row_count("arc"), 2);
        assert_eq!(db.row_count("warc"), 1);
    }

    #[test]
    fn staged_deletes_apply_after_inserts_and_bump_the_version() {
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(1, 2), (2, 3), (1, 2)]).unwrap();
        let id = db.catalog.lookup("arc").unwrap();
        let v0 = db.catalog.version(id);
        let mut tx = db.transaction();
        tx.load_edges("arc", &[(4, 5)]).unwrap();
        tx.delete_rows("arc", 2, [vec![1, 2]].iter().map(Vec::as_slice))
            .unwrap();
        // Arity mismatches surface at staging, like inserts.
        assert!(tx
            .delete_rows("arc", 3, [vec![1, 2, 3]].iter().map(Vec::as_slice))
            .is_err());
        tx.commit().unwrap();
        let arc = db.relation("arc").unwrap();
        assert_eq!(arc.as_pairs().unwrap(), vec![(2, 3), (4, 5)]);
        assert!(
            db.catalog.version(id) > v0,
            "writes must invalidate version-keyed caches"
        );
    }

    #[test]
    fn ragged_rows_rejected_at_staging() {
        let mut db = Database::new().unwrap();
        let mut tx = db.transaction();
        let rows = [vec![1, 2], vec![3]];
        assert!(tx
            .load_rows("t", 2, rows.iter().map(Vec::as_slice))
            .is_err());
    }

    #[test]
    fn wal_commit_replays_like_the_original_transaction() {
        use recstep_storage::wal::{WalBatch, WalCommit};
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(1, 2), (2, 3)]).unwrap();
        let v_arc = db.relation_version("arc");
        assert!(v_arc > 0);
        assert_eq!(db.relation_version("nope"), 0);

        db.apply_wal_commit(&WalCommit {
            version: 1,
            inserts: vec![WalBatch {
                name: "arc".into(),
                arity: 2,
                rows: vec![3, 4, 4, 5],
            }],
            deletes: vec![WalBatch {
                name: "arc".into(),
                arity: 2,
                rows: vec![1, 2],
            }],
        })
        .unwrap();
        let arc = db.relation("arc").unwrap();
        assert_eq!(arc.as_pairs().unwrap(), vec![(2, 3), (3, 4), (4, 5)]);
        assert!(db.relation_version("arc") > v_arc);

        // Corrupt arity is a durability error, not a panic.
        let err = db
            .apply_wal_commit(&WalCommit {
                version: 2,
                inserts: vec![WalBatch {
                    name: "arc".into(),
                    arity: 0,
                    rows: vec![],
                }],
                deletes: vec![],
            })
            .unwrap_err();
        assert!(err.to_string().contains("arity 0"), "{err}");
    }

    #[test]
    fn symbolic_edges_roundtrip() {
        let mut dict = recstep_common::dict::Dictionary::new();
        let mut db = Database::new().unwrap();
        db.load_symbolic_edges("arc", &mut dict, &[("a", "b"), ("b", "c")])
            .unwrap();
        assert_eq!(db.row_count("arc"), 2);
        assert_eq!(dict.len(), 3);
    }
}
