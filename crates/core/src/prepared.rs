//! Prepared programs: compile once, run many times.
//!
//! [`PreparedProgram`] is the product of [`crate::Engine::prepare`]: the
//! program source parsed, analyzed, stratified and compiled exactly once.
//! Running it takes `&self`, so a single prepared program — behind an
//! `Arc` or by reference — can evaluate over any number of
//! [`Database`]s, including concurrently from multiple threads. The hot
//! path never re-parses or re-compiles anything.

use recstep_common::Result;
use recstep_datalog::plan::CompiledProgram;
use recstep_datalog::sqlgen;

use crate::db::{Database, RunOutput};
use crate::engine::Engine;
use crate::eval::EvalRun;
use crate::stats::EvalStats;
use recstep_storage::{CommitMode, RunCatalog};

/// A compiled Datalog program bound to the engine that will evaluate it.
pub struct PreparedProgram {
    engine: Engine,
    compiled: CompiledProgram,
}

// A prepared program is shared across threads by design (`Arc<PreparedProgram>`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedProgram>();
};

impl PreparedProgram {
    pub(crate) fn new(engine: Engine, compiled: CompiledProgram) -> Self {
        PreparedProgram { engine, compiled }
    }

    /// Evaluate over `db` to fixpoint.
    ///
    /// IDB relations named by the program are reset at the start of the
    /// run (EDB facts are left untouched), inline facts are loaded
    /// set-wise (a fact already present is not duplicated, so repeated
    /// runs over one database stay idempotent), and
    /// results land in `db` — read them back through
    /// [`Database::relation`]. Any number of runs may happen, over this
    /// database or others; runs over *distinct* databases may proceed
    /// concurrently from multiple threads and share the engine's worker
    /// pool. (When runs do overlap, [`EvalStats::busy`] reports pool-wide
    /// busy time, so per-run CPU attribution blurs — wall times and
    /// result counts stay exact.)
    pub fn run(&self, db: &mut Database) -> Result<EvalStats> {
        run_compiled(&self.engine, db, &self.compiled)
    }

    /// Evaluate over a *shared* database to fixpoint, without mutating it.
    ///
    /// The database is only read: every write — IDB results, inline facts
    /// — lands in a run-local overlay returned as [`RunOutput`]. Because
    /// nothing mutates `db`, **any number of `run_shared` calls may
    /// proceed concurrently over one database** (the serving-style
    /// workload), and they cooperate through the database's shared index
    /// cache: each frozen join index is built by exactly one of them and
    /// reused by the rest (`EvalStats::index.cache_hits` / `cache_misses`
    /// account for it).
    ///
    /// Differences from [`PreparedProgram::run`]: results are read from
    /// the returned [`RunOutput`] instead of the database, and nothing is
    /// committed to the simulated persistent store (shared runs are
    /// in-memory serving; `io_bytes`/`io_flushes` report 0).
    ///
    /// ```
    /// use recstep::{Database, Engine};
    ///
    /// let engine = Engine::builder().threads(2).build().unwrap();
    /// let tc = engine
    ///     .prepare("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).")
    ///     .unwrap();
    /// let mut db = Database::new().unwrap();
    /// db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
    ///
    /// let out = std::thread::scope(|s| {
    ///     let a = s.spawn(|| tc.run_shared(&db).unwrap());
    ///     let b = s.spawn(|| tc.run_shared(&db).unwrap());
    ///     (a.join().unwrap(), b.join().unwrap())
    /// });
    /// assert_eq!(out.0.row_count("tc"), 3);
    /// assert_eq!(out.1.row_count("tc"), 3);
    /// assert_eq!(db.row_count("tc"), 0); // the database itself is untouched
    /// ```
    pub fn run_shared(&self, db: &Database) -> Result<RunOutput> {
        self.run_shared_inner(db, None)
    }

    /// [`PreparedProgram::run_shared`] with a cooperative cancellation
    /// token: the fixpoint polls `cancel` at iteration boundaries and
    /// aborts with [`recstep_common::Error::Cancelled`] once it reports
    /// cancelled (explicitly or by deadline). Nothing escapes an aborted
    /// run — the overlay dies with it — so a timed-out request leaves the
    /// database and the shared caches exactly as a never-started one.
    pub fn run_shared_cancellable(
        &self,
        db: &Database,
        cancel: &recstep_common::sched::CancelToken,
    ) -> Result<RunOutput> {
        self.run_shared_inner(db, Some(cancel))
    }

    fn run_shared_inner(
        &self,
        db: &Database,
        cancel: Option<&recstep_common::sched::CancelToken>,
    ) -> Result<RunOutput> {
        let (cfg, ctx, alpha) = self.engine.parts();
        let mut run = EvalRun {
            cfg,
            ctx,
            alpha,
            catalog: RunCatalog::shared(db.catalog()),
            disk: None,
            cache: cfg.shared_index_cache.then(|| &**db.index_cache()),
            cancel,
        };
        let stats = run.run(&self.compiled)?;
        let catalog = run
            .catalog
            .into_overlay()
            .expect("shared runs evaluate over an overlay");
        Ok(RunOutput { catalog, stats })
    }

    /// Render the backend SQL this program executes (UIE form), stratum by
    /// stratum — the paper's Figure 4 view of any program.
    pub fn explain_sql(&self) -> String {
        render_program_sql(&self.compiled)
    }

    /// The underlying compiled plan.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The engine this program is bound to.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Relations named by `.input` directives (load these before running).
    pub fn inputs(&self) -> &[String] {
        &self.compiled.inputs
    }

    /// Relations named by `.output` directives (empty = every IDB).
    pub fn outputs(&self) -> &[String] {
        &self.compiled.outputs
    }
}

/// One evaluation of a compiled program over a database — the single
/// place wiring engine policy (EOST commit mode, config, pool) to the
/// database's catalog and store. Both [`PreparedProgram::run`] and the
/// deprecated `RecStep` shim go through here.
pub(crate) fn run_compiled(
    engine: &Engine,
    db: &mut Database,
    compiled: &CompiledProgram,
) -> Result<EvalStats> {
    let (cfg, ctx, alpha) = engine.parts();
    let cache = db.index_cache().clone();
    let (catalog, disk) = db.eval_parts();
    // EOST is an engine policy; the store belongs to the database.
    disk.set_mode(if cfg.eost {
        CommitMode::Eost
    } else {
        CommitMode::PerQuery
    });
    EvalRun {
        cfg,
        ctx,
        alpha,
        catalog: RunCatalog::Exclusive(catalog),
        disk: Some(disk),
        cache: cfg.shared_index_cache.then_some(&*cache),
        cancel: None,
    }
    .run(compiled)
}

/// Shared SQL rendering for `explain_sql` and the deprecated
/// `RecStep::explain`.
pub(crate) fn render_program_sql(compiled: &CompiledProgram) -> String {
    let mut out = String::new();
    for (si, stratum) in compiled.strata.iter().enumerate() {
        out.push_str(&format!(
            "-- stratum {si} ({})\n",
            if stratum.recursive {
                "recursive"
            } else {
                "non-recursive"
            }
        ));
        for idb in &stratum.idbs {
            out.push_str(&sqlgen::render_uie(idb));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).";

    #[test]
    fn prepare_once_run_many() {
        let engine = Engine::builder().threads(2).build().unwrap();
        let tc = engine.prepare(TC).unwrap();
        let mut db = Database::new().unwrap();
        db.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
        tc.run(&mut db).unwrap();
        assert_eq!(db.row_count("tc"), 3);
        // Re-running over the same database is idempotent (IDBs reset).
        tc.run(&mut db).unwrap();
        assert_eq!(db.row_count("tc"), 3);
        // And the same prepared program serves a different database.
        let mut other = Database::new().unwrap();
        other.load_edges("arc", &[(5, 6)]).unwrap();
        tc.run(&mut other).unwrap();
        assert_eq!(other.row_count("tc"), 1);
        assert_eq!(db.row_count("tc"), 3);
    }

    #[test]
    fn explain_sql_renders_strata() {
        let engine = Engine::builder().threads(1).build().unwrap();
        let sql = engine.prepare(TC).unwrap().explain_sql();
        assert!(sql.contains("-- stratum 0 (non-recursive)"), "{sql}");
        assert!(sql.contains("-- stratum 1 (recursive)"), "{sql}");
    }

    #[test]
    fn inline_facts_are_idempotent_across_runs() {
        let engine = Engine::builder().threads(1).build().unwrap();
        let prog = engine
            .prepare(
                "arc(1, 2). arc(2, 3).\ntc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).",
            )
            .unwrap();
        assert_eq!(prog.compiled().facts.len(), 2);
        let mut db = Database::new().unwrap();
        prog.run(&mut db).unwrap();
        assert_eq!(db.row_count("tc"), 3);
        // Facts must not accumulate in the EDB relation run over run.
        prog.run(&mut db).unwrap();
        assert_eq!(db.row_count("arc"), 2);
        assert_eq!(db.row_count("tc"), 3);
    }

    #[test]
    fn aggregation_over_inline_facts_is_stable_across_runs() {
        // Regression: facts used to be re-appended on every run, which
        // doubled SUM results on the second run over the same database.
        let engine = Engine::builder().threads(1).build().unwrap();
        let prog = engine
            .prepare("e(1, 10). e(1, 20).\ns(x, SUM(y)) :- e(x, y).")
            .unwrap();
        let mut db = Database::new().unwrap();
        prog.run(&mut db).unwrap();
        assert_eq!(db.relation("s").unwrap().as_pairs().unwrap(), vec![(1, 30)]);
        prog.run(&mut db).unwrap();
        assert_eq!(db.relation("s").unwrap().as_pairs().unwrap(), vec![(1, 30)]);
    }
}
