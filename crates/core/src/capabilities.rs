//! The qualitative system-comparison matrix (paper Table 1).
//!
//! Each engine in this repository reports its capabilities; the
//! `tab01_capabilities` bench target prints the table. Values for the
//! in-repo engines are facts about the implementations; the paper's
//! qualitative rows (memory consumption, CPU utilization/efficiency, tuning
//! burden) are carried over as the paper states them for the systems our
//! baselines stand in for.

/// One engine's row of Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Engine name.
    pub name: &'static str,
    /// Scales up with cores on one node.
    pub scale_up: bool,
    /// Scales out across nodes.
    pub scale_out: bool,
    /// Qualitative memory footprint ("low" / "medium" / "high").
    pub memory_consumption: &'static str,
    /// Qualitative multi-core utilization.
    pub cpu_utilization: &'static str,
    /// Qualitative CPU efficiency (Appendix B definition).
    pub cpu_efficiency: &'static str,
    /// Hyper-parameter tuning burden.
    pub tuning_required: &'static str,
    /// Supports mutual recursion.
    pub mutual_recursion: bool,
    /// Supports non-recursive aggregation.
    pub non_recursive_aggregation: bool,
    /// Supports recursive aggregation.
    pub recursive_aggregation: bool,
}

/// Rows of Table 1 for the engines in this repository (each standing in for
/// the correspondingly named system of the paper).
pub fn table1() -> Vec<Capabilities> {
    vec![
        Capabilities {
            name: "RecStep",
            scale_up: true,
            scale_out: false,
            memory_consumption: "low",
            cpu_utilization: "high",
            cpu_efficiency: "high",
            tuning_required: "no",
            mutual_recursion: true,
            non_recursive_aggregation: true,
            recursive_aggregation: true,
        },
        Capabilities {
            name: "Graspan (worklist baseline)",
            scale_up: true,
            scale_out: false,
            memory_consumption: "low",
            cpu_utilization: "medium",
            cpu_efficiency: "low",
            tuning_required: "yes (lightweight)",
            mutual_recursion: true,
            non_recursive_aggregation: false,
            recursive_aggregation: false,
        },
        Capabilities {
            name: "bddbddb (BDD baseline)",
            scale_up: false,
            scale_out: false,
            memory_consumption: "low",
            cpu_utilization: "poor",
            cpu_efficiency: "-",
            tuning_required: "yes (complex)",
            mutual_recursion: true,
            non_recursive_aggregation: false,
            recursive_aggregation: false,
        },
        Capabilities {
            name: "BigDatalog (generic parallel baseline)",
            scale_up: true,
            scale_out: true,
            memory_consumption: "high",
            cpu_utilization: "high",
            cpu_efficiency: "medium",
            tuning_required: "yes (moderate)",
            mutual_recursion: false,
            non_recursive_aggregation: true,
            recursive_aggregation: true,
        },
        Capabilities {
            name: "Souffle (compiled single-node baseline)",
            scale_up: true,
            scale_out: false,
            memory_consumption: "medium",
            cpu_utilization: "medium",
            cpu_efficiency: "high",
            tuning_required: "no",
            mutual_recursion: true,
            non_recursive_aggregation: true,
            recursive_aggregation: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recstep_supports_everything_single_node() {
        let t = table1();
        let rs = t.iter().find(|c| c.name == "RecStep").unwrap();
        assert!(rs.scale_up && !rs.scale_out);
        assert!(rs.mutual_recursion && rs.non_recursive_aggregation && rs.recursive_aggregation);
    }

    #[test]
    fn matches_paper_support_matrix() {
        let t = table1();
        let by = |n: &str| t.iter().find(|c| c.name.starts_with(n)).unwrap();
        // Paper Table 1: BigDatalog lacks mutual recursion; Souffle lacks
        // recursive aggregation; Graspan/bddbddb lack aggregation entirely.
        assert!(!by("BigDatalog").mutual_recursion);
        assert!(!by("Souffle").recursive_aggregation);
        assert!(by("Souffle").non_recursive_aggregation);
        assert!(!by("Graspan").non_recursive_aggregation);
        assert!(!by("bddbddb").non_recursive_aggregation);
    }
}
