//! Engine configuration: every optimization of paper §5 is a toggle so the
//! Figure 2/3 ablations can turn each one off individually.

use recstep_exec::dedup::DedupImpl;
use recstep_exec::setdiff::SetDiffStrategy;
use recstep_storage::wal::Durability;

/// Statistics-collection policy driving on-the-fly re-optimization (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OofMode {
    /// OOF-NA: plans are frozen after the first iteration (the same query
    /// plan at every iteration).
    None,
    /// RecStep's default: collect exactly the statistics each operator
    /// needs — sizes for join build-side choice, a conservative distinct
    /// estimate for dedup sizing, min/max/sum only where aggregation needs
    /// them.
    Selective,
    /// OOF-FA: collect the full statistics of every updated table at every
    /// iteration.
    Full,
}

/// When to use parallel bit-matrix evaluation (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PbmeMode {
    /// Never.
    Off,
    /// Use it when the stratum matches the TC/SG pattern *and* the matrix
    /// plus index fit the memory budget (the paper's build condition).
    Auto,
    /// Use it whenever the pattern matches, regardless of the budget check.
    Force,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Unified IDB evaluation: issue all subqueries of an IDB as one query
    /// (§5.1 UIE). Off = one query per subquery with separate temp tables.
    pub uie: bool,
    /// Statistics / re-optimization policy (§5.1 OOF).
    pub oof: OofMode,
    /// Set-difference strategy (§5.1 DSD; `Dynamic` is the paper's choice).
    pub setdiff: SetDiffStrategy,
    /// Evaluation as one single transaction (§5.2 EOST). Off = flush dirty
    /// state after every state-changing query.
    pub eost: bool,
    /// Deduplication implementation (§5.2 FAST-DEDUP = `Fast`).
    pub dedup: DedupImpl,
    /// Keep hash indexes alive across fixpoint iterations: the full-R
    /// dedup/set-difference table is built once per stratum and appended
    /// thereafter (fused into one pass over Rt), and join build sides over
    /// unchanged catalog relations are cached. Off = rebuild every table
    /// at every iteration (the paper's Algorithm 1, kept for ablations).
    pub index_reuse: bool,
    /// Fused streaming delta pipeline: push dedup + set difference into
    /// the final operator of every subquery, so the UNION-ALL intermediate
    /// `Rt` is never materialized — duplicates are dropped at the probe
    /// site. Applies to non-aggregated IDBs when `index_reuse`, `uie` and
    /// `eost` are on; under OOF-FA a reservoir sampler attached to the
    /// sink stands in for the `Rt` the statistics pass would otherwise
    /// re-scan. Off = keep the two-phase materialize-then-absorb pipeline
    /// (for ablations).
    pub fused_pipeline: bool,
    /// Group-at-source streaming aggregation: aggregated heads (recursive
    /// MIN/MAX and non-recursive group-by) stream every produced row into
    /// a concurrent aggregate state at the probe site — a CAS-on-best
    /// monotonic map whose dirty list *is* ∆R, or sharded group-by
    /// partials merged once at sink flush — so the pre-aggregation `Rt`
    /// is never materialized, and OOF-FA statistics are sampled from the
    /// sink (reservoir + exact counts) instead of re-scanning `Rt`.
    /// Applies when `uie` and `eost` are on. Off = group over a
    /// materialized `Rt` in a second pass (for ablations).
    pub fused_agg: bool,
    /// Shared cross-run index cache: join build-side indexes over frozen
    /// relations (EDBs, relations this program never derives) are
    /// published into the database-owned [`recstep_exec::cache::IndexCache`]
    /// keyed by `(relation, catalog version, key columns)`, so N runs over
    /// one database — sequential or concurrent — build each such index
    /// exactly once. Off = every run rebuilds its own indexes (the
    /// pre-cache per-run behavior, kept for ablations).
    pub shared_index_cache: bool,
    /// Resident-byte budget of the shared index cache. A publish that
    /// would exceed it evicts coldest entries first (scored by
    /// `bytes / rebuild_cost`), and the engine's memory-pressure path
    /// spills the cache before reporting OOM.
    pub index_cache_budget_bytes: usize,
    /// Publish the final full-`R` indexes of a run's IDB *results* into
    /// the shared index cache (exclusive, store-committed runs only), so
    /// a later program that joins or anti-joins against those now-frozen
    /// relations reuses the table this run already built. Off by default:
    /// one-shot CLI runs would only pay the resident bytes — the query
    /// service and its warmup path turn it on.
    pub publish_idb_indexes: bool,
    /// Bit-matrix evaluation policy (§5.3 PBME).
    pub pbme: PbmeMode,
    /// Work-order threshold for coordinated SG-PBME (Figure 7); `None` =
    /// zero-coordination (the paper's default).
    pub pbme_coordination: Option<usize>,
    /// Memory budget in bytes. Evaluations exceeding it abort with an
    /// out-of-memory error (how the harness reports OOM bars honestly).
    pub mem_budget_bytes: usize,
    /// Morsel size for parallel operators.
    pub grain: usize,
    /// Run the offline α calibration for the DSD cost model at engine
    /// construction (Appendix A Eq. 7); otherwise use the default α = 2.
    pub calibrate_dsd: bool,
    /// Maintain standing materialized views over prepared programs: the
    /// query service keeps a completed run's IDB relations and full-`R`
    /// indexes alive and answers version-bumped queries by incremental
    /// maintenance (∆-seeded semi-naive re-entry for insertions,
    /// counting/DRed for deletions) instead of recompiling + rerunning
    /// from scratch. `--no-incremental` is the ablation switch.
    pub incremental_views: bool,
    /// Worst-case optimal multiway joins: subqueries whose body is a
    /// *cyclic* join hypergraph (the triangle query, longer cycles) are
    /// evaluated by a variable-ordered generic join over sorted
    /// compact-key tries instead of the binary chain, bounding work by
    /// the AGM output bound rather than the largest binary intermediate.
    /// The planner attaches the WCOJ plan at compile time; this flag picks
    /// it at run time, so `--no-wcoj` ablates without recompiling.
    /// Acyclic bodies always keep their binary plans.
    pub wcoj: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 0,
            uie: true,
            oof: OofMode::Selective,
            setdiff: SetDiffStrategy::Dynamic,
            eost: true,
            dedup: DedupImpl::Fast,
            index_reuse: true,
            fused_pipeline: true,
            fused_agg: true,
            shared_index_cache: true,
            index_cache_budget_bytes: 2 << 30,
            publish_idb_indexes: false,
            pbme: PbmeMode::Auto,
            pbme_coordination: None,
            mem_budget_bytes: 8 << 30,
            grain: 4096,
            calibrate_dsd: false,
            incremental_views: true,
            wcoj: true,
        }
    }
}

impl Config {
    /// All optimizations on (the paper's RecStep configuration).
    pub fn recstep() -> Self {
        Config::default()
    }

    /// Everything off (the paper's RecStep-NO-OP ablation point).
    pub fn no_op() -> Self {
        Config {
            uie: false,
            oof: OofMode::None,
            setdiff: SetDiffStrategy::AlwaysOpsd,
            eost: false,
            dedup: DedupImpl::Generic,
            index_reuse: false,
            fused_pipeline: false,
            fused_agg: false,
            shared_index_cache: false,
            pbme: PbmeMode::Off,
            wcoj: false,
            ..Config::default()
        }
    }

    /// Toggle standing materialized views (incremental maintenance).
    pub fn incremental_views(mut self, on: bool) -> Self {
        self.incremental_views = on;
        self
    }

    /// Toggle worst-case optimal joins on cyclic rule bodies (off = the
    /// binary join chain everywhere).
    pub fn wcoj(mut self, on: bool) -> Self {
        self.wcoj = on;
        self
    }

    /// Set worker threads.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Toggle UIE.
    pub fn uie(mut self, on: bool) -> Self {
        self.uie = on;
        self
    }

    /// Set the OOF mode.
    pub fn oof(mut self, mode: OofMode) -> Self {
        self.oof = mode;
        self
    }

    /// Set the set-difference strategy.
    pub fn setdiff(mut self, s: SetDiffStrategy) -> Self {
        self.setdiff = s;
        self
    }

    /// Toggle EOST.
    pub fn eost(mut self, on: bool) -> Self {
        self.eost = on;
        self
    }

    /// Set the dedup implementation.
    pub fn dedup(mut self, d: DedupImpl) -> Self {
        self.dedup = d;
        self
    }

    /// Toggle persistent incremental indexes (off = per-iteration rebuild).
    pub fn index_reuse(mut self, on: bool) -> Self {
        self.index_reuse = on;
        self
    }

    /// Toggle the fused streaming delta pipeline (off = materialize `Rt`
    /// and absorb it in a second pass).
    pub fn fused_pipeline(mut self, on: bool) -> Self {
        self.fused_pipeline = on;
        self
    }

    /// Toggle group-at-source streaming aggregation (off = group over a
    /// materialized pre-aggregation `Rt` in a second pass).
    pub fn fused_agg(mut self, on: bool) -> Self {
        self.fused_agg = on;
        self
    }

    /// Toggle the shared cross-run index cache (off = per-run indexes).
    pub fn shared_index_cache(mut self, on: bool) -> Self {
        self.shared_index_cache = on;
        self
    }

    /// Set the shared index cache's resident-byte budget.
    pub fn index_cache_budget(mut self, bytes: usize) -> Self {
        self.index_cache_budget_bytes = bytes;
        self
    }

    /// Toggle publishing final IDB result indexes into the shared cache.
    pub fn publish_idb_indexes(mut self, on: bool) -> Self {
        self.publish_idb_indexes = on;
        self
    }

    /// Set the PBME mode.
    pub fn pbme(mut self, mode: PbmeMode) -> Self {
        self.pbme = mode;
        self
    }

    /// Enable coordinated SG-PBME with the given work-order threshold.
    pub fn pbme_coordination(mut self, threshold: Option<usize>) -> Self {
        self.pbme_coordination = threshold;
        self
    }

    /// Set the memory budget in bytes.
    pub fn mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Enable DSD α calibration at startup.
    pub fn calibrate_dsd(mut self, on: bool) -> Self {
        self.calibrate_dsd = on;
        self
    }

    /// Resolved thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Configuration of the long-lived query service (`recstep serve`).
///
/// Admission control is deliberately simple and fully bounded: at most
/// `max_concurrent_runs` evaluations execute at once, at most
/// `queue_depth` requests wait for a permit, and everything beyond that
/// is shed immediately with `429`/`Retry-After`. Each admitted request
/// carries a deadline (`request_timeout_ms`) that doubles as the
/// cooperative cancellation point of its fixpoint.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Maximum evaluations in flight at once (`--max-concurrent-runs`,
    /// clamped to ≥ 1). Backpressure, not parallelism: each run already
    /// fans out over the engine's worker pool.
    pub max_concurrent_runs: usize,
    /// Maximum requests allowed to wait for a run permit
    /// (`--queue-depth`); callers beyond it are shed with `429`.
    pub queue_depth: usize,
    /// Per-request wall-clock budget in milliseconds
    /// (`--request-timeout-ms`), covering both queue wait and evaluation;
    /// an over-budget fixpoint is cancelled at its next iteration
    /// boundary.
    pub request_timeout_ms: u64,
    /// Programs evaluated at startup (`--warmup FILE`, repeatable): each
    /// runs exclusively with `publish_idb_indexes` on, so the caches are
    /// hot before the first client connects.
    pub warmup: Vec<String>,
    /// Prepared-program cache capacity (entries); least-recently-used
    /// programs are evicted past it.
    pub prepared_capacity: usize,
    /// Durable-state directory (`--data-dir`). When set (and `durability`
    /// is not [`Durability::Off`]) the server write-ahead-logs every
    /// `/facts` commit there, snapshots the database periodically, and
    /// restores snapshot-then-WAL-tail on startup. `None` = in-memory
    /// only, the pre-durability behaviour.
    pub data_dir: Option<String>,
    /// WAL sync policy (`--durability {off,commit,batch}`): `commit`
    /// fsyncs per `/facts` commit (an acked commit survives `kill -9`),
    /// `batch` defers the fsync to snapshots/shutdown, `off` disables the
    /// WAL entirely even with a data dir.
    pub durability: Durability,
    /// Snapshot + WAL-compaction threshold
    /// (`--snapshot-every-n-commits`): after this many logged commits the
    /// server writes a fresh snapshot and resets the log to a barrier.
    /// 0 = never snapshot (the log grows unboundedly).
    pub snapshot_every_n_commits: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            max_concurrent_runs: 2,
            queue_depth: 32,
            request_timeout_ms: 30_000,
            warmup: Vec::new(),
            prepared_capacity: 64,
            data_dir: None,
            durability: Durability::Commit,
            snapshot_every_n_commits: 64,
        }
    }
}

impl ServeConfig {
    /// Set the listen address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Set the concurrent-run cap.
    pub fn max_concurrent_runs(mut self, n: usize) -> Self {
        self.max_concurrent_runs = n.max(1);
        self
    }

    /// Set the admission queue depth.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Set the per-request timeout in milliseconds.
    pub fn request_timeout_ms(mut self, ms: u64) -> Self {
        self.request_timeout_ms = ms;
        self
    }

    /// Add a warmup program file.
    pub fn warmup(mut self, path: impl Into<String>) -> Self {
        self.warmup.push(path.into());
        self
    }

    /// Set the prepared-program cache capacity.
    pub fn prepared_capacity(mut self, n: usize) -> Self {
        self.prepared_capacity = n.max(1);
        self
    }

    /// Set the durable-state directory.
    pub fn data_dir(mut self, dir: impl Into<String>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Set the WAL sync policy.
    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Set the snapshot/compaction threshold (0 = never snapshot).
    pub fn snapshot_every_n_commits(mut self, n: u64) -> Self {
        self.snapshot_every_n_commits = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_optimizations_on() {
        let c = Config::recstep();
        assert!(c.uie);
        assert!(c.eost);
        assert!(c.index_reuse);
        assert!(c.fused_pipeline);
        assert!(c.fused_agg);
        assert!(c.shared_index_cache);
        assert!(c.wcoj);
        assert!(c.index_cache_budget_bytes > 0);
        assert_eq!(c.oof, OofMode::Selective);
        assert_eq!(c.setdiff, SetDiffStrategy::Dynamic);
        assert_eq!(c.dedup, DedupImpl::Fast);
        assert_eq!(c.pbme, PbmeMode::Auto);
    }

    #[test]
    fn no_op_turns_everything_off() {
        let c = Config::no_op();
        assert!(!c.uie);
        assert!(!c.eost);
        assert!(!c.index_reuse);
        assert!(!c.fused_pipeline);
        assert!(!c.fused_agg);
        assert!(!c.shared_index_cache);
        assert!(!c.wcoj);
        assert_eq!(c.oof, OofMode::None);
        assert_eq!(c.setdiff, SetDiffStrategy::AlwaysOpsd);
        assert_eq!(c.dedup, DedupImpl::Generic);
        assert_eq!(c.pbme, PbmeMode::Off);
    }

    #[test]
    fn builder_chains() {
        let c = Config::default()
            .threads(3)
            .uie(false)
            .eost(false)
            .mem_budget(1024);
        assert_eq!(c.effective_threads(), 3);
        assert!(!c.uie);
        assert_eq!(c.mem_budget_bytes, 1024);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(Config::default().effective_threads() >= 1);
    }

    #[test]
    fn serve_config_defaults_and_builders() {
        let s = ServeConfig::default();
        assert!(s.max_concurrent_runs >= 1);
        assert!(s.prepared_capacity >= 1);
        assert!(s.warmup.is_empty());
        let s = ServeConfig::default()
            .addr("0.0.0.0:9000")
            .max_concurrent_runs(0)
            .queue_depth(4)
            .request_timeout_ms(500)
            .warmup("w.datalog")
            .prepared_capacity(0);
        assert_eq!(s.addr, "0.0.0.0:9000");
        assert_eq!(s.max_concurrent_runs, 1, "clamped to ≥ 1");
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.request_timeout_ms, 500);
        assert_eq!(s.warmup, vec!["w.datalog".to_string()]);
        assert_eq!(s.prepared_capacity, 1, "clamped to ≥ 1");
    }
}
