//! Engine configuration: every optimization of paper §5 is a toggle so the
//! Figure 2/3 ablations can turn each one off individually.

use recstep_exec::dedup::DedupImpl;
use recstep_exec::setdiff::SetDiffStrategy;

/// Statistics-collection policy driving on-the-fly re-optimization (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OofMode {
    /// OOF-NA: plans are frozen after the first iteration (the same query
    /// plan at every iteration).
    None,
    /// RecStep's default: collect exactly the statistics each operator
    /// needs — sizes for join build-side choice, a conservative distinct
    /// estimate for dedup sizing, min/max/sum only where aggregation needs
    /// them.
    Selective,
    /// OOF-FA: collect the full statistics of every updated table at every
    /// iteration.
    Full,
}

/// When to use parallel bit-matrix evaluation (§5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PbmeMode {
    /// Never.
    Off,
    /// Use it when the stratum matches the TC/SG pattern *and* the matrix
    /// plus index fit the memory budget (the paper's build condition).
    Auto,
    /// Use it whenever the pattern matches, regardless of the budget check.
    Force,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Unified IDB evaluation: issue all subqueries of an IDB as one query
    /// (§5.1 UIE). Off = one query per subquery with separate temp tables.
    pub uie: bool,
    /// Statistics / re-optimization policy (§5.1 OOF).
    pub oof: OofMode,
    /// Set-difference strategy (§5.1 DSD; `Dynamic` is the paper's choice).
    pub setdiff: SetDiffStrategy,
    /// Evaluation as one single transaction (§5.2 EOST). Off = flush dirty
    /// state after every state-changing query.
    pub eost: bool,
    /// Deduplication implementation (§5.2 FAST-DEDUP = `Fast`).
    pub dedup: DedupImpl,
    /// Keep hash indexes alive across fixpoint iterations: the full-R
    /// dedup/set-difference table is built once per stratum and appended
    /// thereafter (fused into one pass over Rt), and join build sides over
    /// unchanged catalog relations are cached. Off = rebuild every table
    /// at every iteration (the paper's Algorithm 1, kept for ablations).
    pub index_reuse: bool,
    /// Fused streaming delta pipeline: push dedup + set difference into
    /// the final operator of every subquery, so the UNION-ALL intermediate
    /// `Rt` is never materialized — duplicates are dropped at the probe
    /// site. Applies to recursive, non-aggregated IDBs when `index_reuse`,
    /// `uie` and `eost` are on and OOF is not collecting full statistics
    /// (those paths genuinely need a materialized `Rt`). Off = keep the
    /// two-phase materialize-then-absorb pipeline (for ablations).
    pub fused_pipeline: bool,
    /// Group-at-source streaming aggregation: aggregated heads (recursive
    /// MIN/MAX and non-recursive group-by) stream every produced row into
    /// a concurrent aggregate state at the probe site — a CAS-on-best
    /// monotonic map whose dirty list *is* ∆R, or sharded group-by
    /// partials merged once at sink flush — so the pre-aggregation `Rt`
    /// is never materialized, and OOF-FA statistics are sampled from the
    /// sink (reservoir + exact counts) instead of re-scanning `Rt`.
    /// Applies when `uie` and `eost` are on. Off = group over a
    /// materialized `Rt` in a second pass (for ablations).
    pub fused_agg: bool,
    /// Shared cross-run index cache: join build-side indexes over frozen
    /// relations (EDBs, relations this program never derives) are
    /// published into the database-owned [`recstep_exec::cache::IndexCache`]
    /// keyed by `(relation, catalog version, key columns)`, so N runs over
    /// one database — sequential or concurrent — build each such index
    /// exactly once. Off = every run rebuilds its own indexes (the
    /// pre-cache per-run behavior, kept for ablations).
    pub shared_index_cache: bool,
    /// Resident-byte budget of the shared index cache. A publish that
    /// would exceed it evicts coldest entries first (scored by
    /// `bytes / rebuild_cost`), and the engine's memory-pressure path
    /// spills the cache before reporting OOM.
    pub index_cache_budget_bytes: usize,
    /// Bit-matrix evaluation policy (§5.3 PBME).
    pub pbme: PbmeMode,
    /// Work-order threshold for coordinated SG-PBME (Figure 7); `None` =
    /// zero-coordination (the paper's default).
    pub pbme_coordination: Option<usize>,
    /// Memory budget in bytes. Evaluations exceeding it abort with an
    /// out-of-memory error (how the harness reports OOM bars honestly).
    pub mem_budget_bytes: usize,
    /// Morsel size for parallel operators.
    pub grain: usize,
    /// Run the offline α calibration for the DSD cost model at engine
    /// construction (Appendix A Eq. 7); otherwise use the default α = 2.
    pub calibrate_dsd: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threads: 0,
            uie: true,
            oof: OofMode::Selective,
            setdiff: SetDiffStrategy::Dynamic,
            eost: true,
            dedup: DedupImpl::Fast,
            index_reuse: true,
            fused_pipeline: true,
            fused_agg: true,
            shared_index_cache: true,
            index_cache_budget_bytes: 2 << 30,
            pbme: PbmeMode::Auto,
            pbme_coordination: None,
            mem_budget_bytes: 8 << 30,
            grain: 4096,
            calibrate_dsd: false,
        }
    }
}

impl Config {
    /// All optimizations on (the paper's RecStep configuration).
    pub fn recstep() -> Self {
        Config::default()
    }

    /// Everything off (the paper's RecStep-NO-OP ablation point).
    pub fn no_op() -> Self {
        Config {
            uie: false,
            oof: OofMode::None,
            setdiff: SetDiffStrategy::AlwaysOpsd,
            eost: false,
            dedup: DedupImpl::Generic,
            index_reuse: false,
            fused_pipeline: false,
            fused_agg: false,
            shared_index_cache: false,
            pbme: PbmeMode::Off,
            ..Config::default()
        }
    }

    /// Set worker threads.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Toggle UIE.
    pub fn uie(mut self, on: bool) -> Self {
        self.uie = on;
        self
    }

    /// Set the OOF mode.
    pub fn oof(mut self, mode: OofMode) -> Self {
        self.oof = mode;
        self
    }

    /// Set the set-difference strategy.
    pub fn setdiff(mut self, s: SetDiffStrategy) -> Self {
        self.setdiff = s;
        self
    }

    /// Toggle EOST.
    pub fn eost(mut self, on: bool) -> Self {
        self.eost = on;
        self
    }

    /// Set the dedup implementation.
    pub fn dedup(mut self, d: DedupImpl) -> Self {
        self.dedup = d;
        self
    }

    /// Toggle persistent incremental indexes (off = per-iteration rebuild).
    pub fn index_reuse(mut self, on: bool) -> Self {
        self.index_reuse = on;
        self
    }

    /// Toggle the fused streaming delta pipeline (off = materialize `Rt`
    /// and absorb it in a second pass).
    pub fn fused_pipeline(mut self, on: bool) -> Self {
        self.fused_pipeline = on;
        self
    }

    /// Toggle group-at-source streaming aggregation (off = group over a
    /// materialized pre-aggregation `Rt` in a second pass).
    pub fn fused_agg(mut self, on: bool) -> Self {
        self.fused_agg = on;
        self
    }

    /// Toggle the shared cross-run index cache (off = per-run indexes).
    pub fn shared_index_cache(mut self, on: bool) -> Self {
        self.shared_index_cache = on;
        self
    }

    /// Set the shared index cache's resident-byte budget.
    pub fn index_cache_budget(mut self, bytes: usize) -> Self {
        self.index_cache_budget_bytes = bytes;
        self
    }

    /// Set the PBME mode.
    pub fn pbme(mut self, mode: PbmeMode) -> Self {
        self.pbme = mode;
        self
    }

    /// Enable coordinated SG-PBME with the given work-order threshold.
    pub fn pbme_coordination(mut self, threshold: Option<usize>) -> Self {
        self.pbme_coordination = threshold;
        self
    }

    /// Set the memory budget in bytes.
    pub fn mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Enable DSD α calibration at startup.
    pub fn calibrate_dsd(mut self, on: bool) -> Self {
        self.calibrate_dsd = on;
        self
    }

    /// Resolved thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_optimizations_on() {
        let c = Config::recstep();
        assert!(c.uie);
        assert!(c.eost);
        assert!(c.index_reuse);
        assert!(c.fused_pipeline);
        assert!(c.fused_agg);
        assert!(c.shared_index_cache);
        assert!(c.index_cache_budget_bytes > 0);
        assert_eq!(c.oof, OofMode::Selective);
        assert_eq!(c.setdiff, SetDiffStrategy::Dynamic);
        assert_eq!(c.dedup, DedupImpl::Fast);
        assert_eq!(c.pbme, PbmeMode::Auto);
    }

    #[test]
    fn no_op_turns_everything_off() {
        let c = Config::no_op();
        assert!(!c.uie);
        assert!(!c.eost);
        assert!(!c.index_reuse);
        assert!(!c.fused_pipeline);
        assert!(!c.fused_agg);
        assert!(!c.shared_index_cache);
        assert_eq!(c.oof, OofMode::None);
        assert_eq!(c.setdiff, SetDiffStrategy::AlwaysOpsd);
        assert_eq!(c.dedup, DedupImpl::Generic);
        assert_eq!(c.pbme, PbmeMode::Off);
    }

    #[test]
    fn builder_chains() {
        let c = Config::default()
            .threads(3)
            .uie(false)
            .eost(false)
            .mem_budget(1024);
        assert_eq!(c.effective_threads(), 3);
        assert!(!c.uie);
        assert_eq!(c.mem_budget_bytes, 1024);
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        assert!(Config::default().effective_threads() >= 1);
    }
}
