//! The engine: immutable evaluation machinery, shared freely.
//!
//! An [`Engine`] bundles what is constant across evaluations — the
//! configuration (every paper-§5 optimization toggle), the worker pool,
//! and the DSD cost-model calibration. It holds **no data and no program
//! state**: facts live in a [`crate::Database`], compiled programs in
//! [`crate::PreparedProgram`]s. That split makes the engine `Send + Sync`
//! and cheap to clone (one `Arc`), so one engine can serve many programs
//! and many databases, concurrently, from many threads.
//!
//! Construction goes through the fluent [`EngineBuilder`], which absorbs
//! the old `Config` builder surface:
//!
//! ```
//! use recstep::Engine;
//!
//! let engine = Engine::builder().threads(2).mem_budget(1 << 30).build().unwrap();
//! assert_eq!(engine.config().effective_threads(), 2);
//! ```

use std::sync::Arc;

use recstep_common::sched::ThreadPool;
use recstep_common::Result;
use recstep_datalog::plan::CompiledProgram;
use recstep_datalog::{analyze::analyze, parser::parse, plan::compile};
use recstep_exec::dedup::DedupImpl;
use recstep_exec::setdiff::{calibrate_alpha, SetDiffStrategy};
use recstep_exec::ExecCtx;

use crate::config::{Config, OofMode, PbmeMode};
use crate::prepared::PreparedProgram;

pub(crate) struct EngineInner {
    pub(crate) cfg: Config,
    pub(crate) ctx: ExecCtx,
    /// DSD cost-model constant (Appendix A Eq. 7), calibrated at build
    /// time when the configuration asks for it.
    pub(crate) alpha: f64,
}

/// The immutable RecStep engine: configuration + worker pool + planner.
///
/// Cloning is an `Arc` bump; clones share the pool. The engine is
/// `Send + Sync`, so it (and every [`PreparedProgram`] it produces) can be
/// shared across threads and run concurrently over distinct databases.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

// Compile-time guarantee backing the concurrent-serving design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

impl Engine {
    /// Start building an engine with the default configuration.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            cfg: Config::default(),
        }
    }

    /// Engine with the default configuration (all optimizations on).
    pub fn with_defaults() -> Result<Self> {
        Self::builder().build()
    }

    /// Engine from an explicit configuration value (the ablation presets
    /// like [`Config::no_op`] enter here).
    pub fn from_config(cfg: Config) -> Result<Self> {
        EngineBuilder { cfg }.build()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &Config {
        &self.inner.cfg
    }

    /// The worker pool (for harness-level utilization sampling).
    pub fn pool(&self) -> &ThreadPool {
        &self.inner.ctx.pool
    }

    /// Shared handle to the worker pool, so a sampler thread can observe
    /// busy time while the engine runs (Figures 7a and 16).
    pub fn pool_handle(&self) -> Arc<ThreadPool> {
        Arc::clone(&self.inner.ctx.pool)
    }

    /// Parse, analyze and compile a program **once**, yielding a reusable
    /// [`PreparedProgram`]. The prepared program holds a clone of this
    /// engine, so the engine value itself need not be kept around.
    pub fn prepare(&self, src: &str) -> Result<PreparedProgram> {
        let compiled = compile(&analyze(parse(src)?)?)?;
        Ok(self.prepare_compiled(compiled))
    }

    /// Wrap an already-compiled program (for callers driving the frontend
    /// themselves, e.g. [`crate::compile_source`]).
    pub fn prepare_compiled(&self, compiled: CompiledProgram) -> PreparedProgram {
        PreparedProgram::new(self.clone(), compiled)
    }

    pub(crate) fn parts(&self) -> (&Config, &ExecCtx, f64) {
        (&self.inner.cfg, &self.inner.ctx, self.inner.alpha)
    }
}

/// Fluent engine construction; absorbs the old `Config` builder surface.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    cfg: Config,
}

impl EngineBuilder {
    /// Replace the whole configuration (keeps later fluent calls working).
    pub fn config(mut self, cfg: Config) -> Self {
        self.cfg = cfg;
        self
    }

    /// Worker threads (0 = all available cores).
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.threads = t;
        self
    }

    /// Toggle unified IDB evaluation (§5.1 UIE).
    pub fn uie(mut self, on: bool) -> Self {
        self.cfg.uie = on;
        self
    }

    /// Statistics / re-optimization policy (§5.1 OOF).
    pub fn oof(mut self, mode: OofMode) -> Self {
        self.cfg.oof = mode;
        self
    }

    /// Set-difference strategy (§5.1 DSD).
    pub fn setdiff(mut self, s: SetDiffStrategy) -> Self {
        self.cfg.setdiff = s;
        self
    }

    /// Toggle evaluation as one single transaction (§5.2 EOST).
    pub fn eost(mut self, on: bool) -> Self {
        self.cfg.eost = on;
        self
    }

    /// Deduplication implementation (§5.2 FAST-DEDUP = `Fast`).
    pub fn dedup(mut self, d: DedupImpl) -> Self {
        self.cfg.dedup = d;
        self
    }

    /// Toggle persistent incremental indexes (off = per-iteration rebuild,
    /// the paper's Algorithm 1 behaviour, kept for ablations).
    pub fn index_reuse(mut self, on: bool) -> Self {
        self.cfg.index_reuse = on;
        self
    }

    /// Toggle group-at-source streaming aggregation (off = aggregated
    /// heads group over a materialized pre-aggregation `Rt`).
    pub fn fused_agg(mut self, on: bool) -> Self {
        self.cfg.fused_agg = on;
        self
    }

    /// Toggle the shared cross-run index cache (off = every run builds its
    /// own frozen-relation indexes, the pre-cache per-run behavior).
    pub fn shared_index_cache(mut self, on: bool) -> Self {
        self.cfg.shared_index_cache = on;
        self
    }

    /// Resident-byte budget of the shared index cache (publishes evict
    /// coldest-first past it; the pre-OOM pressure path spills it).
    pub fn index_cache_budget(mut self, bytes: usize) -> Self {
        self.cfg.index_cache_budget_bytes = bytes;
        self
    }

    /// Bit-matrix evaluation policy (§5.3 PBME).
    pub fn pbme(mut self, mode: PbmeMode) -> Self {
        self.cfg.pbme = mode;
        self
    }

    /// Coordinated SG-PBME work-order threshold (`None` = no coordination).
    pub fn pbme_coordination(mut self, threshold: Option<usize>) -> Self {
        self.cfg.pbme_coordination = threshold;
        self
    }

    /// Toggle standing materialized views over prepared programs
    /// (incremental view maintenance; off = every query re-runs from
    /// scratch, the `--no-incremental` ablation).
    pub fn incremental_views(mut self, on: bool) -> Self {
        self.cfg.incremental_views = on;
        self
    }

    /// Memory budget in bytes (evaluations exceeding it abort with OOM).
    pub fn mem_budget(mut self, bytes: usize) -> Self {
        self.cfg.mem_budget_bytes = bytes;
        self
    }

    /// Morsel size for parallel operators.
    pub fn grain(mut self, rows: usize) -> Self {
        self.cfg.grain = rows;
        self
    }

    /// Run the offline α calibration for the DSD cost model at build time.
    pub fn calibrate_dsd(mut self, on: bool) -> Self {
        self.cfg.calibrate_dsd = on;
        self
    }

    /// Spawn the worker pool, calibrate if requested, freeze the engine.
    pub fn build(self) -> Result<Engine> {
        let cfg = self.cfg;
        let pool = Arc::new(ThreadPool::new(cfg.effective_threads()));
        let mut ctx = ExecCtx::new(pool);
        ctx.grain = cfg.grain.max(1);
        let alpha = if cfg.calibrate_dsd {
            calibrate_alpha(&ctx, 2, 2)
        } else {
            2.0
        };
        Ok(Engine {
            inner: Arc::new(EngineInner { cfg, ctx, alpha }),
        })
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Engine::builder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_mirrors_config_surface() {
        let e = Engine::builder()
            .threads(2)
            .uie(false)
            .eost(false)
            .pbme(PbmeMode::Off)
            .mem_budget(123)
            .grain(17)
            .build()
            .unwrap();
        assert!(!e.config().uie);
        assert!(!e.config().eost);
        assert_eq!(e.config().pbme, PbmeMode::Off);
        assert_eq!(e.config().mem_budget_bytes, 123);
        assert_eq!(e.config().grain, 17);
        assert_eq!(e.pool().threads(), 2);
    }

    #[test]
    fn from_config_preserves_presets() {
        let e = Engine::from_config(Config::no_op().threads(1)).unwrap();
        assert!(!e.config().uie);
        assert_eq!(e.config().oof, OofMode::None);
    }

    #[test]
    fn clones_share_the_pool() {
        let a = Engine::builder().threads(2).build().unwrap();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.pool_handle(), &b.pool_handle()));
    }
}
