//! Deprecated compatibility shim: the old `RecStep` god-object.
//!
//! `RecStep` fused engine, database and program into one mutable value;
//! the API is now split into [`Engine`] (immutable machinery),
//! [`Database`] (facts + results) and [`crate::PreparedProgram`]
//! (compile once, run many). This shim keeps the old surface working by
//! delegating to the new types — including `run_source`'s re-parse on
//! every call, which is exactly the cost the new API removes. New code
//! should not use it; see the crate-level migration notes.

#![allow(deprecated)]

use std::sync::Arc;

use recstep_common::sched::ThreadPool;
use recstep_common::{Result, Value};
use recstep_datalog::plan::CompiledProgram;
use recstep_datalog::{analyze::analyze, parser::parse, plan::compile};
use recstep_storage::{Catalog, Relation};

use crate::config::Config;
use crate::db::Database;
use crate::engine::Engine;
use crate::prepared::render_program_sql;
use crate::stats::EvalStats;

/// The old fused engine + database object.
#[deprecated(
    since = "0.1.0",
    note = "split into Engine (machinery), Database (facts + results) and \
            PreparedProgram (compile once, run many); see the crate docs' \
            migration notes"
)]
pub struct RecStep {
    engine: Engine,
    db: Database,
}

impl RecStep {
    /// Build an engine from a configuration.
    pub fn new(cfg: Config) -> Result<Self> {
        Ok(RecStep {
            engine: Engine::from_config(cfg)?,
            db: Database::new()?,
        })
    }

    /// Engine with the default configuration.
    pub fn with_defaults() -> Result<Self> {
        Self::new(Config::default())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &Config {
        self.engine.config()
    }

    /// The worker pool.
    pub fn pool(&self) -> &ThreadPool {
        self.engine.pool()
    }

    /// Shared handle to the worker pool.
    pub fn pool_handle(&self) -> Arc<ThreadPool> {
        self.engine.pool_handle()
    }

    /// The catalog (read access to all relations).
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// A relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.db
            .catalog()
            .lookup(name)
            .map(|id| self.db.catalog().rel(id))
    }

    /// Materialized rows of a relation (row-major; `None` if unknown).
    pub fn rows(&self, name: &str) -> Option<Vec<Vec<Value>>> {
        self.db.relation(name).map(|h| h.to_vec())
    }

    /// Row count of a relation (0 if unknown).
    pub fn row_count(&self, name: &str) -> usize {
        self.db.row_count(name)
    }

    /// Load (or extend) an input relation from row-major data.
    pub fn load_relation(&mut self, name: &str, arity: usize, rows: &[Vec<Value>]) -> Result<()> {
        self.db.load_relation(name, arity, rows)
    }

    /// Load a binary edge relation.
    pub fn load_edges(&mut self, name: &str, edges: &[(Value, Value)]) -> Result<()> {
        self.db.load_edges(name, edges)
    }

    /// Load a weighted edge relation `(src, dst, weight)`.
    pub fn load_weighted_edges(
        &mut self,
        name: &str,
        edges: &[(Value, Value, Value)],
    ) -> Result<()> {
        self.db.load_weighted_edges(name, edges)
    }

    /// Load a binary relation given symbolically via dictionary encoding.
    pub fn load_symbolic_edges(
        &mut self,
        name: &str,
        dict: &mut recstep_common::dict::Dictionary,
        edges: &[(&str, &str)],
    ) -> Result<()> {
        self.db.load_symbolic_edges(name, dict, edges)
    }

    /// Render the backend SQL a program would execute (UIE form).
    pub fn explain(src: &str) -> Result<String> {
        Ok(render_program_sql(&compile(&analyze(parse(src)?)?)?))
    }

    /// Parse, analyze, compile and evaluate a program source — on *every*
    /// call (the legacy slow path; prefer [`Engine::prepare`]).
    pub fn run_source(&mut self, src: &str) -> Result<EvalStats> {
        let prepared = self.engine.prepare(src)?;
        prepared.run(&mut self.db)
    }

    /// Evaluate a compiled program.
    pub fn run(&mut self, prog: &CompiledProgram) -> Result<EvalStats> {
        crate::prepared::run_compiled(&self.engine, &mut self.db, prog)
    }

    /// Evaluate a compiled program after loading extra facts.
    pub fn run_with_facts(
        &mut self,
        prog: &CompiledProgram,
        facts: &[(String, Vec<Value>)],
    ) -> Result<EvalStats> {
        let mut augmented = prog.clone();
        augmented.facts.extend_from_slice(facts);
        self.run(&augmented)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_delegates_to_the_new_api() {
        let mut e = RecStep::new(Config::default().threads(2)).unwrap();
        e.load_edges("arc", &[(0, 1), (1, 2)]).unwrap();
        let stats = e
            .run_source("tc(x, y) :- arc(x, y).\ntc(x, y) :- tc(x, z), arc(z, y).")
            .unwrap();
        assert!(stats.iterations >= 1);
        assert_eq!(e.row_count("tc"), 3);
        let mut rows = e.rows("tc").unwrap();
        rows.sort();
        assert_eq!(rows, vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert!(RecStep::explain("tc(x, y) :- arc(x, y).")
            .unwrap()
            .contains("stratum 0"));
    }
}
