//! Evaluation statistics: the instrumentation behind the paper's figures.

use std::time::Duration;

use recstep_exec::setdiff::SetDiffAlgo;

/// Wall-clock time spent in each engine phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Rule-body evaluation (joins, projections) on the materializing path.
    pub eval: Duration,
    /// The fused streaming pipeline: rule-body evaluation with dedup + set
    /// difference pushed into the operators' probe loops (replaces
    /// `eval` + `dedup` + `setdiff` when the pipeline is fused).
    pub pipeline: Duration,
    /// Deduplication.
    pub dedup: Duration,
    /// Set difference.
    pub setdiff: Duration,
    /// Aggregation (group-by and monotonic absorb).
    pub aggregate: Duration,
    /// Merging ∆R into R.
    pub merge: Duration,
    /// `analyze()` statistics collection.
    pub analyze: Duration,
    /// Persistent-index maintenance (incremental appends, rehashes).
    pub index: Duration,
    /// Simulated persistent-storage I/O.
    pub io: Duration,
    /// Bit-matrix evaluation.
    pub pbme: Duration,
}

/// Hash-index build/append accounting: the rebuild-vs-incremental
/// instrumentation behind the `index_reuse` ablation. With reuse on, the
/// full-R table of each recursive IDB is built once and appended
/// thereafter; with reuse off every iteration rebuilds it, and these
/// counters make the difference directly plottable.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Membership tables built from scratch for the dedup/set-difference
    /// stage. With reuse on this counts persistent full-R index builds
    /// (one per recursive IDB per stratum, plus at most one compact-key
    /// invalidation rebuild); with reuse off it counts every table a set
    /// difference rebuilt per iteration — OPSD builds on all of R, TPSD
    /// on the smaller of Rδ/R plus the intersection, so the off-path
    /// count is per-iteration table *builds*, not all of them R-sized.
    pub full_builds: usize,
    /// Incremental appends into persistent full-R indexes.
    pub full_appends: usize,
    /// Transient Rt-sized dedup tables (the fused pass's scratch, or the
    /// rebuild path's per-iteration dedup table).
    pub scratch_builds: usize,
    /// Join/anti-join build-side tables built into the per-stratum cache.
    pub join_builds: usize,
    /// Incremental appends into cached join build-side tables.
    pub join_appends: usize,
    /// Joins that probed a cached build-side table without any insert.
    pub join_reuses: usize,
    /// Probes served by the shared cross-run index cache (an index some
    /// earlier — possibly concurrent — run already built).
    pub cache_hits: usize,
    /// Shared-cache misses this run paid for by building (and publishing)
    /// the index. Across N concurrent runs over one database, hits and
    /// misses sum so that each frozen index is built exactly once.
    pub cache_misses: usize,
    /// Entries the shared cache evicted on this run's behalf (budget
    /// pressure at publish time or the engine's pre-OOM spill).
    pub cache_evictions: usize,
    /// Resident bytes of the shared cache when the run finished.
    pub cache_bytes: usize,
    /// Final IDB result indexes this run published into the shared cache
    /// (`publish_idb_indexes`): full-`R` tables frozen at fixpoint for
    /// later programs that join against the now-frozen results.
    pub published: usize,
    /// Rows inserted by from-scratch builds (persistent indexes only).
    pub build_rows: usize,
    /// Rows inserted by incremental appends (persistent indexes only).
    pub append_rows: usize,
    /// Peak bytes held by persistent indexes plus their scratch tables.
    pub bytes_peak: usize,
}

/// Per-stratum observations.
#[derive(Clone, Debug, Default)]
pub struct StratumStats {
    /// Head relations of the stratum.
    pub idbs: Vec<String>,
    /// Iterations run (1 for non-recursive strata).
    pub iterations: usize,
    /// Whether PBME handled this stratum.
    pub pbme: bool,
}

/// Incremental view maintenance accounting: how a standing materialized
/// view absorbed `/facts` commits — ∆-seeded semi-naive re-entries for
/// insertions, support-count (counting) updates for non-recursive strata,
/// DRed over-delete + rederive for recursive strata under deletions, and
/// full scratch recomputes when the program shape (aggregation, negation,
/// inline facts) or a failed refresh forces the fallback.
#[derive(Clone, Copy, Debug, Default)]
pub struct ViewStats {
    /// Incremental refreshes applied to a standing view.
    pub view_refreshes: u64,
    /// Strata re-entered from insertion-seeded deltas.
    pub view_seeded_strata: u64,
    /// Non-recursive strata maintained by support counting.
    pub view_counting_strata: u64,
    /// Recursive strata maintained by DRed over-delete + rederivation.
    pub view_dred_strata: u64,
    /// Refreshes answered by a full from-scratch recompute instead
    /// (ineligible program shape, ineligible commit, or a failed refresh).
    pub view_fallbacks: u64,
    /// Fresh tuples appended by seeding and rederivation passes.
    pub view_tuples_seeded: u64,
    /// Tuples retracted by counting and DRed maintenance.
    pub view_tuples_retracted: u64,
}

impl ViewStats {
    /// Accumulate another operation's counters (lifetime aggregation).
    pub fn merge(&mut self, other: &ViewStats) {
        self.view_refreshes += other.view_refreshes;
        self.view_seeded_strata += other.view_seeded_strata;
        self.view_counting_strata += other.view_counting_strata;
        self.view_dred_strata += other.view_dred_strata;
        self.view_fallbacks += other.view_fallbacks;
        self.view_tuples_seeded += other.view_tuples_seeded;
        self.view_tuples_retracted += other.view_tuples_retracted;
    }
}

/// Statistics of one `run` of the engine.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// End-to-end wall time.
    pub total: Duration,
    /// Phase breakdown.
    pub phase: PhaseTimes,
    /// Per-stratum details.
    pub strata: Vec<StratumStats>,
    /// Total fixpoint iterations across strata.
    pub iterations: usize,
    /// Queries issued to the backend (the per-query overhead UIE batches).
    pub queries_issued: usize,
    /// Tuples produced by rule evaluation before deduplication.
    pub tuples_considered: usize,
    /// How often each set-difference algorithm ran.
    pub opsd_runs: usize,
    /// How often each set-difference algorithm ran.
    pub tpsd_runs: usize,
    /// Fused dedup+set-difference passes against a persistent index (the
    /// `index_reuse` replacement for an OPSD/TPSD + dedup pair), whether
    /// streaming or over a materialized `Rt`.
    pub fused_runs: usize,
    /// Fused *streaming* pipeline passes: `Rt` never materialized,
    /// duplicates dropped at the operators' probe sites.
    pub pipeline_runs: usize,
    /// Candidate rows the streaming pipeline dropped at the probe site
    /// (rows the materializing path would have buffered, merged, flushed
    /// and re-scanned before discarding them).
    pub rt_rows_skipped_at_source: usize,
    /// Bytes those dropped rows would have occupied in a materialized `Rt`.
    pub rt_bytes_never_materialized: usize,
    /// Bytes of UNION-ALL (`Rt`) candidate columns materialized and merged
    /// by the non-streaming path. Zero under the fused pipeline — the
    /// acceptance signal that duplicates die at the probe site.
    pub rt_merge_bytes: usize,
    /// Subquery evaluations dispatched to the generic worst-case optimal
    /// join (cyclic bodies walked as one variable-ordered intersection
    /// instead of a chain of binary joins).
    pub wcoj_runs: usize,
    /// Rows the WCOJ leaf enumeration emitted into its sink, pre-dedup —
    /// one per distinct variable binding, never one per intermediate
    /// row-combination.
    pub wcoj_rows_emitted: usize,
    /// Group-at-source streaming aggregation passes: aggregated heads
    /// whose produced rows were folded into concurrent aggregate state at
    /// the probe site instead of materializing a pre-aggregation `Rt`.
    pub agg_sink_runs: usize,
    /// Candidate rows the aggregation sink folded at source (rows the
    /// materializing path would have buffered into `Rt`, merged, and
    /// re-scanned by the group-by pass).
    pub agg_rows_folded_at_source: usize,
    /// Groups the aggregation sink emitted as ∆: strict improvements for
    /// monotonic (recursive MIN/MAX) heads, all result groups for one-shot
    /// group-by heads.
    pub agg_groups_improved: usize,
    /// Rows the sink-side reservoir handed to the OOF-FA statistics pass
    /// in place of a full `Rt` re-scan (0 unless `--oof-fa` streams
    /// through an aggregation sink).
    pub sink_stat_samples: usize,
    /// Hash-index build/append accounting (rebuild vs. incremental).
    pub index: IndexStats,
    /// Peak engine-estimated heap bytes (relations + operator tables).
    pub peak_bytes: usize,
    /// Bytes written to (simulated) persistent storage.
    pub io_bytes: u64,
    /// Flush operations against persistent storage.
    pub io_flushes: u64,
    /// Worker busy-time over the run (for CPU-utilization reporting).
    pub busy: Duration,
    /// Bit-matrix bytes allocated, when PBME ran.
    pub pbme_matrix_bytes: usize,
    /// Work orders posted by coordinated SG-PBME.
    pub coord_orders_posted: u64,
    /// Incremental view maintenance accounting (all zero outside the
    /// query service's standing materialized views).
    pub view: ViewStats,
}

impl PhaseTimes {
    fn merge(&mut self, other: &PhaseTimes) {
        self.eval += other.eval;
        self.pipeline += other.pipeline;
        self.dedup += other.dedup;
        self.setdiff += other.setdiff;
        self.aggregate += other.aggregate;
        self.merge += other.merge;
        self.analyze += other.analyze;
        self.index += other.index;
        self.io += other.io;
        self.pbme += other.pbme;
    }
}

impl IndexStats {
    fn merge(&mut self, other: &IndexStats) {
        self.full_builds += other.full_builds;
        self.full_appends += other.full_appends;
        self.scratch_builds += other.scratch_builds;
        self.join_builds += other.join_builds;
        self.join_appends += other.join_appends;
        self.join_reuses += other.join_reuses;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        // A gauge, not a counter: the later run's snapshot wins.
        self.cache_bytes = other.cache_bytes;
        self.published += other.published;
        self.build_rows += other.build_rows;
        self.append_rows += other.append_rows;
        self.bytes_peak = self.bytes_peak.max(other.bytes_peak);
    }
}

impl EvalStats {
    /// Fold another run's statistics into this accumulator — the
    /// engine-lifetime aggregate view behind the service's `/stats`
    /// endpoint (per-run reports only ever covered one evaluation).
    /// Counters and durations sum, per-stratum details concatenate,
    /// peaks take the maximum, and gauges (`index.cache_bytes`) take the
    /// later run's snapshot.
    pub fn merge(&mut self, other: &EvalStats) {
        self.total += other.total;
        self.phase.merge(&other.phase);
        self.strata.extend(other.strata.iter().cloned());
        self.iterations += other.iterations;
        self.queries_issued += other.queries_issued;
        self.tuples_considered += other.tuples_considered;
        self.opsd_runs += other.opsd_runs;
        self.tpsd_runs += other.tpsd_runs;
        self.fused_runs += other.fused_runs;
        self.pipeline_runs += other.pipeline_runs;
        self.rt_rows_skipped_at_source += other.rt_rows_skipped_at_source;
        self.rt_bytes_never_materialized += other.rt_bytes_never_materialized;
        self.rt_merge_bytes += other.rt_merge_bytes;
        self.wcoj_runs += other.wcoj_runs;
        self.wcoj_rows_emitted += other.wcoj_rows_emitted;
        self.agg_sink_runs += other.agg_sink_runs;
        self.agg_rows_folded_at_source += other.agg_rows_folded_at_source;
        self.agg_groups_improved += other.agg_groups_improved;
        self.sink_stat_samples += other.sink_stat_samples;
        self.index.merge(&other.index);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.io_bytes += other.io_bytes;
        self.io_flushes += other.io_flushes;
        self.busy += other.busy;
        self.pbme_matrix_bytes = self.pbme_matrix_bytes.max(other.pbme_matrix_bytes);
        self.coord_orders_posted += other.coord_orders_posted;
        self.view.merge(&other.view);
    }

    /// Record a set-difference algorithm choice.
    pub(crate) fn note_setdiff(&mut self, algo: SetDiffAlgo) {
        match algo {
            SetDiffAlgo::Opsd => self.opsd_runs += 1,
            SetDiffAlgo::Tpsd => self.tpsd_runs += 1,
        }
    }

    /// Mean CPU utilization over the run: busy time divided by
    /// `threads × wall`.
    pub fn cpu_utilization(&self, threads: usize) -> f64 {
        let denom = self.total.as_secs_f64() * threads.max(1) as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / denom).min(1.0)
    }

    /// CPU efficiency as defined in Appendix B: `1 / (t · n)` for runtime
    /// `t` seconds on `n` cores.
    pub fn cpu_efficiency(&self, threads: usize) -> f64 {
        let t = self.total.as_secs_f64();
        if t <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / (t * threads.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setdiff_counting() {
        let mut s = EvalStats::default();
        s.note_setdiff(SetDiffAlgo::Opsd);
        s.note_setdiff(SetDiffAlgo::Opsd);
        s.note_setdiff(SetDiffAlgo::Tpsd);
        assert_eq!(s.opsd_runs, 2);
        assert_eq!(s.tpsd_runs, 1);
    }

    #[test]
    fn utilization_bounded() {
        let s = EvalStats {
            total: Duration::from_secs(2),
            busy: Duration::from_secs(6),
            ..Default::default()
        };
        assert!((s.cpu_utilization(4) - 0.75).abs() < 1e-9);
        // More busy than wall × threads clamps to 1.
        assert_eq!(s.cpu_utilization(1), 1.0);
        let zero = EvalStats::default();
        assert_eq!(zero.cpu_utilization(4), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut acc = EvalStats {
            iterations: 3,
            peak_bytes: 100,
            total: Duration::from_secs(1),
            ..Default::default()
        };
        acc.index.cache_hits = 1;
        acc.index.cache_bytes = 10;
        acc.index.bytes_peak = 50;
        let mut other = EvalStats {
            iterations: 4,
            peak_bytes: 80,
            total: Duration::from_secs(2),
            ..Default::default()
        };
        other.index.cache_hits = 2;
        other.index.cache_bytes = 7;
        other.index.bytes_peak = 60;
        other.strata.push(StratumStats::default());
        acc.merge(&other);
        assert_eq!(acc.iterations, 7);
        assert_eq!(acc.total, Duration::from_secs(3));
        assert_eq!(acc.peak_bytes, 100, "peaks take the max");
        assert_eq!(acc.index.cache_hits, 3);
        assert_eq!(acc.index.cache_bytes, 7, "gauge takes the later snapshot");
        assert_eq!(acc.index.bytes_peak, 60);
        assert_eq!(acc.strata.len(), 1);
    }

    #[test]
    fn efficiency_definition() {
        let s = EvalStats {
            total: Duration::from_secs(10),
            ..Default::default()
        };
        assert!((s.cpu_efficiency(5) - 0.02).abs() < 1e-9);
    }
}
