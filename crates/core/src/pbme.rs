//! PBME pattern detection and dispatch (paper §5.3).
//!
//! The engine swaps tuple-based evaluation of a recursive stratum for
//! parallel bit-matrix evaluation when the stratum *is* transitive closure
//! or same generation over a binary EDB, and (in
//! [`PbmeMode::Auto`](crate::PbmeMode::Auto)) when
//! the matrix plus index fits the memory budget — the paper's rule: "We
//! decide to build the bit-matrix data structure only if the memory
//! available can fit both the bit matrix, as well as any additional index
//! data structures used during evaluation."

use recstep_common::lang::Expr;
use recstep_datalog::{AtomVersion, CompiledStratum};

/// A stratum PBME can take over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PbmePlan {
    /// `R(x,y) :- R(x,z), E(z,y).` (or the mirrored left-composition form).
    Tc {
        /// The recursive IDB.
        idb: String,
        /// The binary EDB composed with.
        edges: String,
        /// True for `R(x,y) :- E(x,z), R(z,y).` — evaluated on the
        /// transposed graph.
        mirrored: bool,
    },
    /// `R(x,y) :- E(a,x), R(a,b), E(b,y).`
    Sg {
        /// The recursive IDB.
        idb: String,
        /// The binary EDB.
        edges: String,
    },
}

impl PbmePlan {
    /// Name of the IDB the plan evaluates.
    pub fn idb(&self) -> &str {
        match self {
            PbmePlan::Tc { idb, .. } | PbmePlan::Sg { idb, .. } => idb,
        }
    }

    /// Name of the EDB the plan composes with.
    pub fn edges(&self) -> &str {
        match self {
            PbmePlan::Tc { edges, .. } | PbmePlan::Sg { edges, .. } => edges,
        }
    }
}

/// Match a recursive stratum against the TC and SG shapes.
pub fn detect(stratum: &CompiledStratum) -> Option<PbmePlan> {
    if !stratum.recursive || stratum.idbs.len() != 1 {
        return None;
    }
    let idb = &stratum.idbs[0];
    if idb.agg.is_some() || idb.arity != 2 || idb.subqueries.len() != 1 {
        return None;
    }
    let sq = &idb.subqueries[0];
    let clean = sq.residual.is_empty()
        && sq.negations.is_empty()
        && sq
            .scans
            .iter()
            .all(|s| s.filters.is_empty() && s.arity == 2);
    if !clean {
        return None;
    }
    match sq.scans.len() {
        2 => {
            let (s0, s1) = (&sq.scans[0], &sq.scans[1]);
            let join = &sq.joins[0];
            let head_ok = sq.head_exprs == vec![Expr::Col(0), Expr::Col(3)];
            let keys_ok = join.left_keys == vec![1] && join.right_keys == vec![0];
            if !(head_ok && keys_ok) {
                return None;
            }
            // R(x,y) :- R(x,z), E(z,y).
            if s0.version == AtomVersion::Delta
                && s0.rel == idb.rel
                && s1.version == AtomVersion::Base
                && s1.rel != idb.rel
            {
                return Some(PbmePlan::Tc {
                    idb: idb.rel.clone(),
                    edges: s1.rel.clone(),
                    mirrored: false,
                });
            }
            // R(x,y) :- E(x,z), R(z,y).
            if s0.version == AtomVersion::Base
                && s0.rel != idb.rel
                && s1.version == AtomVersion::Delta
                && s1.rel == idb.rel
            {
                return Some(PbmePlan::Tc {
                    idb: idb.rel.clone(),
                    edges: s0.rel.clone(),
                    mirrored: true,
                });
            }
            None
        }
        3 => {
            // R(x,y) :- E(a,x), R(a,b), E(b,y).
            let (s0, s1, s2) = (&sq.scans[0], &sq.scans[1], &sq.scans[2]);
            let ok = s0.version == AtomVersion::Base
                && s2.version == AtomVersion::Base
                && s0.rel == s2.rel
                && s0.rel != idb.rel
                && s1.version == AtomVersion::Delta
                && s1.rel == idb.rel
                && sq.joins[0].left_keys == vec![0]
                && sq.joins[0].right_keys == vec![0]
                && sq.joins[1].left_keys == vec![3]
                && sq.joins[1].right_keys == vec![0]
                && sq.head_exprs == vec![Expr::Col(1), Expr::Col(5)];
            if ok {
                Some(PbmePlan::Sg {
                    idb: idb.rel.clone(),
                    edges: s0.rel.clone(),
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The paper's memory-fit condition: matrix bytes plus index bytes within
/// the budget.
pub fn fits_budget(n: usize, edge_count: usize, budget_bytes: usize) -> bool {
    let matrix = recstep_bitmatrix::BitMatrix::bytes_for(n);
    let index = (n + 1) * 4 + edge_count * 4; // CSR adjacency
    matrix.saturating_add(index) <= budget_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_datalog::{analyze::analyze, parser::parse, plan::compile};

    fn strata_of(src: &str) -> Vec<CompiledStratum> {
        compile(&analyze(parse(src).unwrap()).unwrap())
            .unwrap()
            .strata
    }

    #[test]
    fn detects_canonical_tc() {
        let strata = strata_of(recstep_datalog::programs::TC);
        assert_eq!(detect(&strata[0]), None);
        assert_eq!(
            detect(&strata[1]),
            Some(PbmePlan::Tc {
                idb: "tc".into(),
                edges: "arc".into(),
                mirrored: false
            })
        );
    }

    #[test]
    fn detects_mirrored_tc() {
        let strata = strata_of("tc(x, y) :- arc(x, y).\ntc(x, y) :- arc(x, z), tc(z, y).");
        assert_eq!(
            detect(&strata[1]),
            Some(PbmePlan::Tc {
                idb: "tc".into(),
                edges: "arc".into(),
                mirrored: true
            })
        );
    }

    #[test]
    fn detects_sg() {
        let strata = strata_of(recstep_datalog::programs::SG);
        let rec = strata.iter().find(|s| s.recursive).unwrap();
        assert_eq!(
            detect(rec),
            Some(PbmePlan::Sg {
                idb: "sg".into(),
                edges: "arc".into()
            })
        );
    }

    #[test]
    fn rejects_reach_and_other_shapes() {
        // REACH is monadic — not a bit-matrix candidate.
        let strata = strata_of(recstep_datalog::programs::REACH);
        for s in &strata {
            assert_eq!(detect(s), None);
        }
        // Residual predicates disqualify.
        let strata = strata_of("t(x, y) :- e(x, y).\nt(x, y) :- t(x, z), e(z, y), x != y.");
        let rec = strata.iter().find(|s| s.recursive).unwrap();
        assert_eq!(detect(rec), None);
        // Mutual recursion disqualifies.
        let strata = strata_of(recstep_datalog::programs::CSPA);
        for s in &strata {
            assert_eq!(detect(s), None);
        }
    }

    #[test]
    fn budget_check() {
        // 1000 vertices → 125 KB matrix.
        assert!(fits_budget(1000, 10_000, 1 << 20));
        assert!(!fits_budget(100_000, 10_000, 1 << 20)); // 1.25 GB matrix
    }
}
