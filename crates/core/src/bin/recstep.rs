//! The `recstep` command-line interface: evaluate a `.datalog` program over
//! fact files, matching the paper's workflow (§4).
//!
//! ```text
//! recstep PROGRAM.datalog [OPTIONS]
//!
//! Options:
//!   --facts DIR       directory with <input>.facts files      [default: .]
//!   --out DIR         directory for <output>.csv files        [default: ./out]
//!   --threads N       worker threads (0 = all cores)          [default: 0]
//!   --budget-mb MB    memory budget                           [default: 8192]
//!   --explain         print the generated SQL and exit
//!   --no-uie | --no-eost | --no-pbme | --oof-na | --oof-fa
//!   --dedup-generic | --setdiff-opsd | --setdiff-tpsd | --no-index-reuse
//!   --no-fused-pipeline | --no-fused-agg | --no-shared-index-cache
//!                     turn individual optimizations off (the paper's
//!                     Figure 2 ablation switches, the persistent
//!                     incremental-index toggle, the fused streaming
//!                     delta pipeline toggle, the group-at-source
//!                     streaming aggregation toggle, and the shared
//!                     cross-run index cache toggle)
//!   --index-cache-budget MB
//!                     resident budget of the shared index cache
//!                     [default: 2048]
//!   --stats           print the evaluation statistics report (per-phase
//!                     pipeline timers and shared-cache counters included)
//! ```
//!
//! The program is compiled exactly once (`Engine::prepare`); evaluation
//! and the `--explain` rendering both reuse that compilation.

use std::path::PathBuf;
use std::process::ExitCode;

use recstep::io::run_datalog_file;
use recstep::{Config, Database, DedupImpl, Engine, OofMode, PbmeMode, SetDiffStrategy};

struct Args {
    program: PathBuf,
    facts: PathBuf,
    out: PathBuf,
    cfg: Config,
    explain: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: recstep PROGRAM.datalog [--facts DIR] [--out DIR] [--threads N] \
         [--budget-mb MB] [--explain] [--stats] [--no-uie] [--no-eost] [--no-pbme] \
         [--oof-na] [--oof-fa] [--dedup-generic] [--setdiff-opsd] [--setdiff-tpsd] \
         [--no-index-reuse] [--no-fused-pipeline] [--no-fused-agg] \
         [--no-shared-index-cache] [--index-cache-budget MB]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut program = None;
    let mut facts = PathBuf::from(".");
    let mut out = PathBuf::from("./out");
    let mut cfg = Config::default();
    let mut explain = false;
    let mut stats = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--facts" => facts = PathBuf::from(value("--facts")),
            "--out" => out = PathBuf::from(value("--out")),
            "--threads" => cfg.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--budget-mb" => {
                cfg.mem_budget_bytes = value("--budget-mb")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    << 20
            }
            "--explain" => explain = true,
            "--stats" => stats = true,
            "--no-uie" => cfg.uie = false,
            "--no-eost" => cfg.eost = false,
            "--no-pbme" => cfg.pbme = PbmeMode::Off,
            "--oof-na" => cfg.oof = OofMode::None,
            "--oof-fa" => cfg.oof = OofMode::Full,
            "--dedup-generic" => cfg.dedup = DedupImpl::Generic,
            "--setdiff-opsd" => cfg.setdiff = SetDiffStrategy::AlwaysOpsd,
            "--setdiff-tpsd" => cfg.setdiff = SetDiffStrategy::AlwaysTpsd,
            "--no-index-reuse" => cfg.index_reuse = false,
            "--no-fused-pipeline" => cfg.fused_pipeline = false,
            "--no-fused-agg" => cfg.fused_agg = false,
            "--no-shared-index-cache" => cfg.shared_index_cache = false,
            "--index-cache-budget" => {
                cfg.index_cache_budget_bytes = value("--index-cache-budget")
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage())
                    << 20
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            other => {
                if program.replace(PathBuf::from(other)).is_some() {
                    eprintln!("multiple program files given");
                    usage();
                }
            }
        }
    }
    let Some(program) = program else {
        usage();
    };
    Args {
        program,
        facts,
        out,
        cfg,
        explain,
        stats,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("recstep: cannot read {}: {e}", args.program.display());
            return ExitCode::FAILURE;
        }
    };
    // --explain only renders SQL: compile without spawning any workers.
    let engine = {
        let mut cfg = args.cfg;
        if args.explain {
            cfg.threads = 1;
        }
        match Engine::from_config(cfg) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("recstep: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Compile once; --explain and evaluation both reuse this.
    let prepared = match engine.prepare(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.explain {
        println!(
            "-- index_reuse: {}",
            if engine.config().index_reuse {
                "on (persistent incremental indexes)"
            } else {
                "off (per-iteration rebuild)"
            }
        );
        println!(
            "-- fused_pipeline: {}",
            if engine.config().fused_pipeline {
                "on (dedup/set-difference at the join probe; Rt never materialized)"
            } else {
                "off (materialize Rt, absorb in a second pass)"
            }
        );
        println!(
            "-- fused_agg: {}",
            if engine.config().fused_agg {
                "on (aggregated heads group at source; pre-agg Rt never materialized)"
            } else {
                "off (group over a materialized pre-aggregation Rt)"
            }
        );
        println!(
            "-- shared_index_cache: {}",
            if engine.config().shared_index_cache {
                "on (frozen-relation join indexes shared across runs)"
            } else {
                "off (per-run indexes)"
            }
        );
        println!("{}", prepared.explain_sql());
        return ExitCode::SUCCESS;
    }
    let mut db = match Database::new() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("recstep: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_datalog_file(&prepared, &mut db, &args.facts, &args.out) {
        Ok((stats_out, written)) => {
            for (name, rows) in &written {
                println!("{name}: {rows} rows -> {}/{name}.csv", args.out.display());
            }
            if args.stats {
                println!("\nstrata: {}", stats_out.strata.len());
                println!("iterations: {}", stats_out.iterations);
                println!("queries issued: {}", stats_out.queries_issued);
                println!("tuples considered: {}", stats_out.tuples_considered);
                println!(
                    "set difference: {} OPSD / {} TPSD / {} fused ({} streaming)",
                    stats_out.opsd_runs,
                    stats_out.tpsd_runs,
                    stats_out.fused_runs,
                    stats_out.pipeline_runs
                );
                println!(
                    "fused pipeline: {} rows skipped at source, {} bytes never \
                     materialized; rt merge bytes: {}",
                    stats_out.rt_rows_skipped_at_source,
                    stats_out.rt_bytes_never_materialized,
                    stats_out.rt_merge_bytes
                );
                println!(
                    "streaming aggregation: {} sink passes, {} rows folded at \
                     source, {} groups improved, {} sampled stat rows",
                    stats_out.agg_sink_runs,
                    stats_out.agg_rows_folded_at_source,
                    stats_out.agg_groups_improved,
                    stats_out.sink_stat_samples
                );
                println!(
                    "index tables: {} full builds / {} appends / {} scratch; \
                     joins {} built / {} appended / {} reused; peak {} bytes",
                    stats_out.index.full_builds,
                    stats_out.index.full_appends,
                    stats_out.index.scratch_builds,
                    stats_out.index.join_builds,
                    stats_out.index.join_appends,
                    stats_out.index.join_reuses,
                    stats_out.index.bytes_peak
                );
                println!(
                    "shared index cache: {} hits / {} misses / {} evictions; \
                     {} resident bytes",
                    stats_out.index.cache_hits,
                    stats_out.index.cache_misses,
                    stats_out.index.cache_evictions,
                    stats_out.index.cache_bytes
                );
                println!("peak bytes (engine estimate): {}", stats_out.peak_bytes);
                println!(
                    "io: {} bytes in {} flushes",
                    stats_out.io_bytes, stats_out.io_flushes
                );
                println!("pbme: {}", stats_out.strata.iter().any(|s| s.pbme));
                let p = &stats_out.phase;
                println!(
                    "phase: pipeline {:?} / eval {:?} / dedup {:?} / setdiff {:?} / \
                     aggregate {:?} / merge {:?} / analyze {:?} / index {:?} / io {:?} / \
                     pbme {:?}",
                    p.pipeline,
                    p.eval,
                    p.dedup,
                    p.setdiff,
                    p.aggregate,
                    p.merge,
                    p.analyze,
                    p.index,
                    p.io,
                    p.pbme
                );
                println!("total: {:?}", stats_out.total);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("recstep: {e}");
            ExitCode::FAILURE
        }
    }
}
