//! File-based input/output for the paper's `.datalog` workflow.
//!
//! The paper's architecture (§4) reads "a .datalog file, which, along with
//! the rules of the Datalog program, provides paths for the input and
//! output tables". This module implements that workflow over the
//! prepare-once API: relations named in `.input` directives load from
//! `<facts-dir>/<name>.facts` (whitespace- or comma-separated integers,
//! one fact per line, `#`/`//` comments) into a [`Database`], the
//! [`PreparedProgram`] runs, and relations named in `.output` directives
//! are written to `<out-dir>/<name>.csv`. The program is compiled exactly
//! once — input arities come from the compiled plan, not a second parse.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use recstep_common::{Error, Result};
use recstep_datalog::parser::parse_fact_line;

use crate::db::Database;
use crate::prepared::PreparedProgram;
use crate::stats::EvalStats;

/// Load whitespace/comma-separated integer facts from `path` into relation
/// `name` (created with `arity` if absent). Returns the number of facts
/// loaded.
pub fn load_facts_file(db: &mut Database, name: &str, arity: usize, path: &Path) -> Result<usize> {
    let file = fs::File::open(path)
        .map_err(|e| Error::exec(format!("cannot open {}: {e}", path.display())))?;
    let reader = BufReader::new(file);
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let Some(vals) = parse_fact_line(&line) else {
            continue;
        };
        if vals.len() != arity {
            return Err(Error::exec(format!(
                "{}:{}: expected {} values, found {}",
                path.display(),
                lineno + 1,
                arity,
                vals.len()
            )));
        }
        rows.push(vals);
    }
    let n = rows.len();
    db.load_relation(name, arity, &rows)?;
    Ok(n)
}

/// Write a relation as CSV to `path`. Returns the number of rows written.
pub fn write_relation_csv(db: &Database, name: &str, path: &Path) -> Result<usize> {
    let rel = db
        .relation(name)
        .ok_or_else(|| Error::exec(format!("unknown relation '{name}'")))?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(fs::File::create(path)?);
    for row in rel.iter_rows() {
        for c in 0..row.len() {
            if c > 0 {
                w.write_all(b",")?;
            }
            write!(w, "{}", row.get(c))?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(rel.len())
}

/// Run the full `.datalog` file workflow over an already-prepared program:
/// load every `.input` relation from `facts_dir/<name>.facts` into `db`,
/// evaluate, and write every `.output` relation to `out_dir/<name>.csv`.
/// Returns the evaluation statistics plus `(relation, rows)` pairs written.
pub fn run_datalog_file(
    prepared: &PreparedProgram,
    db: &mut Database,
    facts_dir: &Path,
    out_dir: &Path,
) -> Result<(EvalStats, Vec<(String, usize)>)> {
    // Load .input relations before evaluation (arities from the plan).
    for name in prepared.inputs() {
        let arity = prepared
            .compiled()
            .arity_of(name)
            .ok_or_else(|| Error::exec(format!("unknown input relation '{name}'")))?;
        load_facts_file(db, name, arity, &facts_dir.join(format!("{name}.facts")))?;
    }
    let stats = prepared.run(db)?;
    // Write .output relations (default: every IDB when none declared).
    let outputs: Vec<String> = if prepared.outputs().is_empty() {
        prepared
            .compiled()
            .idb_names()
            .map(str::to_string)
            .collect()
    } else {
        prepared.outputs().to_vec()
    };
    let mut written = Vec::with_capacity(outputs.len());
    for name in outputs {
        let rows = write_relation_csv(db, &name, &out_dir.join(format!("{name}.csv")))?;
        written.push((name, rows));
    }
    Ok((stats, written))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("recstep-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn facts_file_roundtrip() {
        let dir = tmpdir("roundtrip");
        fs::write(dir.join("arc.facts"), "# graph\n0 1\n1,2\n\n2\t3\n").unwrap();
        let mut db = Database::new().unwrap();
        let n = load_facts_file(&mut db, "arc", 2, &dir.join("arc.facts")).unwrap();
        assert_eq!(n, 3);
        assert_eq!(db.row_count("arc"), 3);
        let written = write_relation_csv(&db, "arc", &dir.join("out/arc.csv")).unwrap();
        assert_eq!(written, 3);
        let text = fs::read_to_string(dir.join("out/arc.csv")).unwrap();
        assert_eq!(text, "0,1\n1,2\n2,3\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn arity_mismatch_in_facts_file_is_reported_with_position() {
        let dir = tmpdir("arity");
        fs::write(dir.join("arc.facts"), "0 1\n2 3 4\n").unwrap();
        let mut db = Database::new().unwrap();
        let err = load_facts_file(&mut db, "arc", 2, &dir.join("arc.facts")).unwrap_err();
        assert!(err.to_string().contains(":2:"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_datalog_file_workflow() {
        let dir = tmpdir("workflow");
        fs::write(
            dir.join("tc.datalog"),
            ".input arc\n.output tc\n\
             tc(x, y) :- arc(x, y).\n\
             tc(x, y) :- tc(x, z), arc(z, y).\n",
        )
        .unwrap();
        fs::write(dir.join("arc.facts"), "0 1\n1 2\n").unwrap();
        let engine = Engine::builder().threads(2).build().unwrap();
        let src = fs::read_to_string(dir.join("tc.datalog")).unwrap();
        let prepared = engine.prepare(&src).unwrap();
        let mut db = Database::new().unwrap();
        let (stats, written) =
            run_datalog_file(&prepared, &mut db, &dir, &dir.join("out")).unwrap();
        assert!(stats.iterations >= 2);
        assert_eq!(written, vec![("tc".to_string(), 3)]);
        let text = fs::read_to_string(dir.join("out/tc.csv")).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["0,1", "0,2", "1,2"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_input_file_errors() {
        let dir = tmpdir("missing");
        let engine = Engine::builder().threads(1).build().unwrap();
        let prepared = engine
            .prepare(".input arc\ntc(x, y) :- arc(x, y).\n")
            .unwrap();
        let mut db = Database::new().unwrap();
        let err = run_datalog_file(&prepared, &mut db, &dir, &dir.join("out")).unwrap_err();
        assert!(err.to_string().contains("cannot open"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
