#![allow(clippy::needless_range_loop)]
//! Property-based tests of the parallel operators against sequential
//! oracles: the operators are the trusted computing base of the engine, so
//! they get the heaviest randomized scrutiny.

use proptest::prelude::*;
use recstep_common::lang::{CmpOp, Expr, Predicate};
use recstep_exec::agg::{group_aggregate, AggCol};
use recstep_exec::chain::ChainTable;
use recstep_exec::expr::AggFunc;
use recstep_exec::join::{anti_join, cross_join, hash_join, JoinSpec};
use recstep_exec::ExecCtx;
use recstep_storage::{Relation, Schema};
use std::collections::{BTreeMap, BTreeSet};

type Pair = (i64, i64);

fn rel_of(pairs: &[Pair]) -> Relation {
    let mut r = Relation::new(Schema::with_arity("t", 2));
    for &(a, b) in pairs {
        r.push_row(&[a, b]);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hash_join_matches_nested_loop(
        left in proptest::collection::vec((0i64..20, -5i64..5), 0..150),
        right in proptest::collection::vec((0i64..20, -5i64..5), 0..150),
        build_left in any::<bool>(),
    ) {
        let ctx = ExecCtx::with_threads(3);
        let l = rel_of(&left);
        let r = rel_of(&right);
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left,
            output: &[Expr::Col(1), Expr::Col(3)],
            residual: &[],
        };
        let out = hash_join(&ctx, l.view(), r.view(), &spec);
        let mut got: Vec<Pair> =
            (0..out[0].len()).map(|i| (out[0][i], out[1][i])).collect();
        got.sort_unstable();
        let mut oracle: Vec<Pair> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    oracle.push((lv, rv));
                }
            }
        }
        oracle.sort_unstable();
        prop_assert_eq!(got, oracle);
    }

    #[test]
    fn residual_prunes_exactly(
        rows in proptest::collection::vec((0i64..10, 0i64..10), 0..100),
    ) {
        let ctx = ExecCtx::with_threads(2);
        let l = rel_of(&rows);
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left: true,
            output: &[Expr::Col(1), Expr::Col(3)],
            residual: &[Predicate { lhs: Expr::Col(1), op: CmpOp::Lt, rhs: Expr::Col(3) }],
        };
        let out = hash_join(&ctx, l.view(), l.view(), &spec);
        for i in 0..out[0].len() {
            prop_assert!(out[0][i] < out[1][i]);
        }
        // Count matches the oracle.
        let mut expect = 0usize;
        for &(ak, av) in &rows {
            for &(bk, bv) in &rows {
                if ak == bk && av < bv {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(out[0].len(), expect);
    }

    #[test]
    fn anti_join_is_set_minus_on_keys(
        left in proptest::collection::vec((0i64..25, 0i64..25), 0..120),
        right_keys in proptest::collection::vec(0i64..25, 0..40),
    ) {
        let ctx = ExecCtx::with_threads(3);
        let l = rel_of(&left);
        let mut r = Relation::new(Schema::with_arity("r", 1));
        for &k in &right_keys {
            r.push_row(&[k]);
        }
        let out = anti_join(&ctx, l.view(), r.view(), &[0], &[0], &[Expr::Col(0), Expr::Col(1)]);
        let keys: BTreeSet<i64> = right_keys.iter().copied().collect();
        let mut got: Vec<Pair> = (0..out[0].len()).map(|i| (out[0][i], out[1][i])).collect();
        got.sort_unstable();
        let mut oracle: Vec<Pair> =
            left.iter().copied().filter(|(k, _)| !keys.contains(k)).collect();
        oracle.sort_unstable();
        prop_assert_eq!(got, oracle);
    }

    #[test]
    fn cross_join_counts(
        ln in 0usize..30,
        rn in 0usize..30,
    ) {
        let ctx = ExecCtx::with_threads(2);
        let l = rel_of(&(0..ln as i64).map(|i| (i, i)).collect::<Vec<_>>());
        let r = rel_of(&(0..rn as i64).map(|i| (i, i)).collect::<Vec<_>>());
        let out = cross_join(&ctx, l.view(), r.view(), &[Expr::Col(0), Expr::Col(2)], &[]);
        prop_assert_eq!(out[0].len(), ln * rn);
    }

    #[test]
    fn group_aggregate_matches_btreemap(
        rows in proptest::collection::vec((0i64..15, -100i64..100), 1..200),
    ) {
        let ctx = ExecCtx::with_threads(3);
        let rel = rel_of(&rows);
        for func in [AggFunc::Min, AggFunc::Max, AggFunc::Sum, AggFunc::Count] {
            let out = group_aggregate(
                &ctx,
                rel.view(),
                &[Expr::Col(0)],
                &[AggCol { func, expr: Expr::Col(1) }],
            );
            let got: BTreeMap<i64, i64> =
                (0..out[0].len()).map(|i| (out[0][i], out[1][i])).collect();
            let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
            for &(k, v) in &rows {
                oracle
                    .entry(k)
                    .and_modify(|acc| {
                        *acc = match func {
                            AggFunc::Min => (*acc).min(v),
                            AggFunc::Max => (*acc).max(v),
                            AggFunc::Sum => *acc + v,
                            AggFunc::Count => *acc + 1,
                            AggFunc::Avg => unreachable!(),
                        }
                    })
                    .or_insert(if func == AggFunc::Count { 1 } else { v });
            }
            prop_assert_eq!(got, oracle, "{:?}", func);
        }
    }

    #[test]
    fn chain_table_multimap_matches_hashmap(
        entries in proptest::collection::vec((0u64..64, 0u32..1000), 0..300),
    ) {
        let table = ChainTable::with_capacity(entries.len(), entries.len() * 2);
        let mut oracle: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
        for (i, &(key, _)) in entries.iter().enumerate() {
            table.insert_multi(i as u32, key);
            oracle.entry(key).or_default().insert(i as u32);
        }
        for key in 0u64..64 {
            let got: BTreeSet<u32> = table.iter_key(key).collect();
            let expect = oracle.get(&key).cloned().unwrap_or_default();
            prop_assert_eq!(got, expect, "key {}", key);
        }
    }

    #[test]
    fn chain_table_unique_keeps_first_winner_count(
        keys in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let table = ChainTable::with_capacity(keys.len(), keys.len() * 2);
        let mut winners = 0usize;
        for (i, &k) in keys.iter().enumerate() {
            if table.insert_unique(i as u32, k, |_, _| true) {
                winners += 1;
            }
        }
        let distinct: BTreeSet<u64> = keys.iter().copied().collect();
        prop_assert_eq!(winners, distinct.len());
    }

    #[test]
    fn chain_table_incremental_growth_equals_scratch_build(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..48, 0..40), 1..6),
        probes in proptest::collection::vec(0u64..64, 1..40),
    ) {
        // Incremental: grow node storage (and rehash) batch by batch, as a
        // persistent index does across fixpoint iterations.
        let mut inc = ChainTable::with_capacity(0, 4);
        let mut inc_winners = 0usize;
        let mut inserted = 0usize;
        for batch in &batches {
            inc.grow_nodes(inserted + batch.len());
            if (inserted + batch.len()) * 2 > inc.buckets() {
                inc.rehash((inserted + batch.len()) * 2);
            }
            for &k in batch {
                if inc.insert_unique(inserted as u32, k, |_, _| true) {
                    inc_winners += 1;
                }
                inserted += 1;
            }
        }
        // Scratch: one pre-sized build over the same key sequence.
        let all: Vec<u64> = batches.iter().flatten().copied().collect();
        let scratch = ChainTable::with_capacity(all.len(), all.len() * 2);
        let mut scratch_winners = 0usize;
        for (i, &k) in all.iter().enumerate() {
            if scratch.insert_unique(i as u32, k, |_, _| true) {
                scratch_winners += 1;
            }
        }
        prop_assert_eq!(inc_winners, scratch_winners);
        // Membership after growth is identical to build-from-scratch.
        for &p in &probes {
            prop_assert_eq!(
                inc.contains(p, |_| true),
                scratch.contains(p, |_| true),
                "probe {}", p
            );
        }
    }

    #[test]
    fn grow_chain_concurrent_inserts_match_sequential_membership(
        rows in proptest::collection::vec((0i64..24, 0i64..24), 0..400),
    ) {
        // The fused pipeline's scratch table: concurrent reserve + insert
        // (fetch_add slot allocator, chunked storage, duplicate races)
        // must yield exactly the membership of a sequential
        // build-from-scratch, with one winner per distinct row.
        use recstep_common::hash::hash_row;
        use recstep_common::sched::ThreadPool;
        use recstep_exec::chain::GrowChainTable;
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Tiny hints force chunk growth and long chains under contention.
        let concurrent = GrowChainTable::new(2, 4, 16);
        let winners = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        pool.parallel_for(rows.len(), 7, |range, _| {
            for i in range {
                let row = [rows[i].0, rows[i].1];
                if concurrent.insert_unique_row(hash_row(&row), &row) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        let sequential = GrowChainTable::new(2, 4, 16);
        for &(a, b) in &rows {
            let _ = sequential.insert_unique_row(hash_row(&[a, b]), &[a, b]);
        }
        let distinct: BTreeSet<Pair> = rows.iter().copied().collect();
        prop_assert_eq!(winners.load(Ordering::Relaxed), distinct.len());
        for a in 0..24i64 {
            for b in 0..24i64 {
                let row = [a, b];
                let key = hash_row(&row);
                prop_assert_eq!(
                    concurrent.contains_row(key, &row),
                    sequential.contains_row(key, &row),
                    "membership diverges at ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn concurrent_mono_map_matches_sequential_monotonic_agg(
        rows in proptest::collection::vec((0i64..16, -50i64..50), 1..400),
        threads in 2usize..5,
    ) {
        // The aggregation sink's concurrent map: CAS-on-best absorbs
        // racing across OS threads (random interleavings via
        // `thread::scope`, mirroring the GrowChainTable proptest above)
        // must converge to exactly the map a sequential MonotonicAgg
        // build produces — same groups, same best values — and the dirty
        // list must report each group exactly once with its final value.
        use recstep_exec::agg::{ConcurrentMonoMap, MonotonicAgg};
        use recstep_exec::expr::AggFunc;

        // Tiny hint forces chunk growth and long chains under contention.
        let mut concurrent = ConcurrentMonoMap::new(AggFunc::Min, 1, 2).unwrap();
        let shared = &concurrent;
        std::thread::scope(|scope| {
            for chunk in rows.chunks(rows.len().div_ceil(threads)) {
                scope.spawn(move || {
                    for &(g, v) in chunk {
                        shared.absorb(&[g], v);
                    }
                });
            }
        });

        let mut sequential = MonotonicAgg::new(AggFunc::Min).unwrap();
        for &(g, v) in &rows {
            sequential.absorb(&[g], v);
        }
        prop_assert_eq!(concurrent.len(), sequential.len());
        for g in 0..16i64 {
            prop_assert_eq!(
                concurrent.get(&[g]),
                sequential.get(&[g]),
                "best value diverges for group {}", g
            );
        }
        // ∆ = every group exactly once (all were new), final values only.
        let mut improved: Vec<(i64, i64)> = concurrent
            .take_improved()
            .chunks(2)
            .map(|r| (r[0], r[1]))
            .collect();
        improved.sort_unstable();
        prop_assert_eq!(improved.len(), sequential.len());
        for (g, v) in improved {
            prop_assert_eq!(sequential.get(&[g]), Some(v));
        }
        prop_assert!(concurrent.take_improved().is_empty());
    }
}
