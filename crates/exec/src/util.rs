//! Morsel-driven production helpers shared by the operators.
//!
//! Operators follow one pattern: workers pull morsel ranges from an atomic
//! counter, accumulate output rows in worker-local column buffers, and the
//! buffers are concatenated once at the end (relations are sets, so output
//! order is irrelevant). This avoids all synchronization on the hot path.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use recstep_common::sched::ThreadPool;
use recstep_common::Value;

/// Worker-local column buffer operators emit rows into.
pub struct ColBuf {
    cols: Vec<Vec<Value>>,
}

impl ColBuf {
    fn new(arity: usize) -> Self {
        ColBuf {
            cols: vec![Vec::new(); arity],
        }
    }

    /// Append one row.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Append a single value to column `c` (columnar emission; caller must
    /// keep columns aligned).
    #[inline]
    pub fn push_at(&mut self, c: usize, v: Value) {
        self.cols[c].push(v);
    }

    /// Rows currently buffered.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Run `produce` over all morsels of `0..n` in parallel and return the
/// concatenated output columns.
///
/// `produce(range, buf)` is called once per morsel with a worker-local
/// buffer; each closure instance owns its buffer for its whole run, so no
/// locking happens until the final merge.
pub fn parallel_produce<F>(
    pool: &ThreadPool,
    n: usize,
    grain: usize,
    arity: usize,
    produce: F,
) -> Vec<Vec<Value>>
where
    F: Fn(Range<usize>, &mut ColBuf) + Sync,
{
    let grain = grain.max(1);
    if n == 0 {
        return vec![Vec::new(); arity];
    }
    // Small inputs: skip the pool round-trip.
    if n <= grain {
        let mut buf = ColBuf::new(arity);
        produce(0..n, &mut buf);
        return buf.cols;
    }
    let next = AtomicUsize::new(0);
    let parts: Mutex<Vec<ColBuf>> = Mutex::new(Vec::new());
    pool.run(|_ctx| {
        let mut buf = ColBuf::new(arity);
        loop {
            let start = next.fetch_add(grain, Ordering::Relaxed);
            if start >= n {
                break;
            }
            produce(start..(start + grain).min(n), &mut buf);
        }
        if !buf.is_empty() {
            parts.lock().push(buf);
        }
    });
    merge_parts(parts.into_inner(), arity)
}

fn merge_parts(parts: Vec<ColBuf>, arity: usize) -> Vec<Vec<Value>> {
    let mut iter = parts.into_iter();
    let Some(first) = iter.next() else {
        return vec![Vec::new(); arity];
    };
    // The first part's buffers are moved, not copied; the remaining rows
    // are counted up front so every column grows exactly once.
    let rest: Vec<ColBuf> = iter.collect();
    let extra: usize = rest.iter().map(ColBuf::len).sum();
    let mut out = first.cols;
    if extra > 0 {
        for col in &mut out {
            col.reserve_exact(extra);
        }
        for part in rest {
            for (dst, mut src) in out.iter_mut().zip(part.cols) {
                dst.append(&mut src);
            }
        }
    }
    out
}

/// Fill `out[i] = f(i)` for `i in 0..n` in parallel.
///
/// Used for bulk key computation before table builds.
pub fn parallel_fill<T, F>(pool: &ThreadPool, n: usize, grain: usize, init: T, f: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![init; n];
    if n == 0 {
        return out;
    }
    let ptr = SendPtr(out.as_mut_ptr());
    pool.parallel_for(n, grain.max(1), |range, _| {
        let ptr = &ptr;
        for i in range {
            // SAFETY: morsel ranges partition 0..n disjointly, so every index
            // is written by exactly one worker; `out` outlives the call
            // because `parallel_for` joins before returning.
            unsafe { *ptr.0.add(i) = f(i) };
        }
    });
    out
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced at disjoint indices (see above).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Sync> Sync for SendPtr<T> {}

/// Round up to the next power of two, with a floor of `min`.
pub fn next_pow2_at_least(n: usize, min: usize) -> usize {
    n.max(min).max(1).next_power_of_two()
}

/// Deterministic row-cap accounting for producing operators.
///
/// Workers snapshot the global count once per morsel ([`CapGate::start`])
/// and fold their local emissions in per row without touching shared
/// state; the global counter is updated once per morsel
/// ([`CapGate::commit`]) and additionally every
/// [`CapGate::REFRESH_ROWS`] local emissions ([`CapGate::reached`]), so
/// the collective overshoot past the cap is bounded by
/// `workers × (REFRESH_ROWS + one probe row's fan-out)` rather than
/// `workers × cap`. Producers stop emitting as soon as
/// `global snapshot + local ≥ cap`, so a truncated output always carries
/// **at least `cap` rows** — callers detect overflow with `rows >= cap`,
/// never by a racy late check. (The previous protocol did a Relaxed
/// `fetch_add` per output row and only stopped *after* the cap had been
/// exceeded, making both the cost and the detection non-deterministic.)
pub struct CapGate {
    emitted: AtomicUsize,
    cap: usize,
}

impl CapGate {
    /// Local emissions between global refreshes: small enough to bound
    /// over-allocation to a few MiB per worker, large enough that the
    /// shared counter stays off the hot path.
    pub const REFRESH_ROWS: usize = 16 * 1024;

    /// Gate stopping production at `cap` rows.
    pub fn new(cap: usize) -> Self {
        CapGate {
            emitted: AtomicUsize::new(0),
            cap,
        }
    }

    /// Snapshot taken at morsel start; `None` when the cap is already
    /// reached (the worker should skip the morsel entirely).
    #[inline]
    pub fn start(&self) -> Option<usize> {
        let seen = self.emitted.load(Ordering::Relaxed);
        if seen >= self.cap {
            None
        } else {
            Some(seen)
        }
    }

    /// True when `snapshot + local` reaches the cap: stop emitting.
    /// Publishes the local count and refreshes the snapshot every
    /// [`CapGate::REFRESH_ROWS`] emissions so concurrent workers observe
    /// each other's progress long before the cap.
    #[inline]
    pub fn reached(&self, snapshot: &mut usize, local: &mut usize) -> bool {
        if *local >= Self::REFRESH_ROWS {
            *snapshot = self.emitted.fetch_add(*local, Ordering::Relaxed) + *local;
            *local = 0;
        }
        snapshot.saturating_add(*local) >= self.cap
    }

    /// Fold one morsel's remaining emissions into the global count.
    #[inline]
    pub fn commit(&self, local: usize) {
        if local > 0 {
            self.emitted.fetch_add(local, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_common::sched::ThreadPool;

    #[test]
    fn parallel_produce_collects_all_rows() {
        let pool = ThreadPool::new(4);
        let cols = parallel_produce(&pool, 1000, 16, 2, |range, buf| {
            for i in range {
                buf.push_row(&[i as Value, (i * 2) as Value]);
            }
        });
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 1000);
        let mut pairs: Vec<(Value, Value)> = cols[0]
            .iter()
            .copied()
            .zip(cols[1].iter().copied())
            .collect();
        pairs.sort_unstable();
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(*a, i as Value);
            assert_eq!(*b, (i * 2) as Value);
        }
    }

    #[test]
    fn parallel_produce_empty_input() {
        let pool = ThreadPool::new(2);
        let cols = parallel_produce(&pool, 0, 16, 3, |_, _| panic!("must not be called"));
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().all(Vec::is_empty));
    }

    #[test]
    fn parallel_produce_filters() {
        let pool = ThreadPool::new(3);
        let cols = parallel_produce(&pool, 100, 7, 1, |range, buf| {
            for i in range {
                if i % 2 == 0 {
                    buf.push_row(&[i as Value]);
                }
            }
        });
        assert_eq!(cols[0].len(), 50);
    }

    #[test]
    fn parallel_fill_computes_every_index() {
        let pool = ThreadPool::new(4);
        let out = parallel_fill(&pool, 10_000, 64, 0u64, |i| (i * i) as u64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn parallel_fill_empty() {
        let pool = ThreadPool::new(2);
        let out: Vec<u8> = parallel_fill(&pool, 0, 8, 0, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn next_pow2() {
        assert_eq!(next_pow2_at_least(0, 16), 16);
        assert_eq!(next_pow2_at_least(17, 16), 32);
        assert_eq!(next_pow2_at_least(16, 16), 16);
        assert_eq!(next_pow2_at_least(5, 1), 8);
    }
}
