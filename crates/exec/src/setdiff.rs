//! Set difference: OPSD, TPSD and the dynamic choice (DSD).
//!
//! Semi-naïve evaluation computes `∆R ← Rδ − R` for every IDB at every
//! iteration (Algorithm 1 line 12). The paper observes neither translation
//! dominates:
//!
//! * **OPSD** (one-phase, Algorithm 4): build a hash table on `R`, anti-probe
//!   with `Rδ`. Cost grows with `|R|` — and `R` only grows.
//! * **TPSD** (two-phase, Algorithm 5): build on the *smaller* of the two,
//!   compute the intersection `r`, then anti-probe `Rδ` against `r`. More
//!   operators, but never builds on `R`.
//!
//! **DSD** picks per iteration using the Appendix A cost model with
//! `α = C_build/C_probe` (offline calibration, Eq. 7), `β = |R|/|Rδ|`, and
//! the previous iteration's `µ = |Rδ|/|r|` when the decision falls in the
//! grey zone `β ∈ (1, 2α/(α−1))`.

use std::time::Instant;

use recstep_common::Value;
use recstep_storage::RelView;

use crate::chain::ChainTable;
use crate::key::KeyMode;
use crate::util::{parallel_fill, parallel_produce};
use crate::ExecCtx;

/// The concrete algorithm executed for one set difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetDiffAlgo {
    /// One-phase: build on `R`, anti-probe `Rδ`.
    Opsd,
    /// Two-phase: intersection first, then anti-probe `Rδ` against it.
    Tpsd,
}

/// Engine-level strategy (the DSD toggle of the Figure 2 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetDiffStrategy {
    /// Always one-phase.
    AlwaysOpsd,
    /// Always two-phase.
    AlwaysTpsd,
    /// Choose per iteration via the cost model (the paper's DSD).
    Dynamic,
}

/// Mutable DSD state carried across iterations of one IDB.
#[derive(Clone, Debug)]
pub struct DsdState {
    /// Calibrated build/probe cost ratio `α`.
    pub alpha: f64,
    /// `µ = |Rδ|/|r|` observed at the previous iteration (∞ when the last
    /// intersection was empty; `None` before any TPSD ran).
    pub prev_mu: Option<f64>,
    /// Cumulative hash tables built from scratch by set differences using
    /// this state (1 per OPSD, up to 2 per TPSD) — the rebuild-side
    /// counter of the rebuild-vs-incremental instrumentation.
    pub tables_built: usize,
}

impl DsdState {
    /// State with a given `α` and no observed `µ` yet.
    pub fn new(alpha: f64) -> Self {
        DsdState {
            alpha,
            prev_mu: None,
            tables_built: 0,
        }
    }
}

impl Default for DsdState {
    fn default() -> Self {
        // A build costs roughly twice a probe on chained tables; the
        // calibration in `calibrate_alpha` refines this.
        DsdState::new(2.0)
    }
}

/// Cost-model decision (Appendix A).
///
/// * `β ≤ 1` (R no bigger than Rδ): OPSD — Eq. (3) shows it always wins.
/// * `β ≥ 2α/(α−1)` (R much bigger): TPSD — Eq. (6) lower bound is positive.
/// * otherwise: sign of Eq. (5), `β(α−1) − (α + α/µ)`, using the previous
///   iteration's `µ` as the estimate; without one, stay with OPSD.
pub fn choose_algo(alpha: f64, beta: f64, prev_mu: Option<f64>) -> SetDiffAlgo {
    if beta <= 1.0 {
        return SetDiffAlgo::Opsd;
    }
    if alpha > 1.0 && beta >= 2.0 * alpha / (alpha - 1.0) {
        return SetDiffAlgo::Tpsd;
    }
    match prev_mu {
        Some(mu) if beta * (alpha - 1.0) > alpha + alpha / mu => SetDiffAlgo::Tpsd,
        _ => SetDiffAlgo::Opsd,
    }
}

/// Compute `Rδ − R`. `delta` (= `Rδ`) is assumed duplicate-free (Algorithm 1
/// deduplicates first); rows of the result preserve `delta`'s arity.
///
/// Returns the difference (column-major) and the algorithm actually used.
pub fn set_difference(
    ctx: &ExecCtx,
    delta: RelView<'_>,
    full: RelView<'_>,
    strategy: SetDiffStrategy,
    state: &mut DsdState,
) -> (Vec<Vec<Value>>, SetDiffAlgo) {
    assert_eq!(delta.arity(), full.arity());
    let arity = delta.arity();
    if delta.is_empty() {
        return (vec![Vec::new(); arity], SetDiffAlgo::Opsd);
    }
    if full.is_empty() {
        // Nothing to subtract.
        return (copy_view(ctx, delta), SetDiffAlgo::Opsd);
    }
    let algo = match strategy {
        SetDiffStrategy::AlwaysOpsd => SetDiffAlgo::Opsd,
        SetDiffStrategy::AlwaysTpsd => SetDiffAlgo::Tpsd,
        SetDiffStrategy::Dynamic => {
            let beta = full.len() as f64 / delta.len() as f64;
            choose_algo(state.alpha, beta, state.prev_mu)
        }
    };
    let cols: Vec<usize> = (0..arity).collect();
    let mode = KeyMode::for_views(delta, &cols, full, &cols);
    let out = match algo {
        SetDiffAlgo::Opsd => {
            state.tables_built += 1;
            anti_probe(ctx, delta, full, &mode, &cols)
        }
        SetDiffAlgo::Tpsd => {
            // Phase 1: r ← R ∩ Rδ, building on the smaller side.
            let (build, probe) = if delta.len() <= full.len() {
                (delta, full)
            } else {
                (full, delta)
            };
            state.tables_built += 1;
            let table = build_multi(ctx, build, &mode, &cols);
            let exact = mode.exact();
            let r = parallel_produce(&ctx.pool, probe.len(), ctx.grain, arity, |range, buf| {
                let mut scratch = Vec::new();
                for pr in range {
                    let key = mode.key_of(probe, pr, &cols, &mut scratch);
                    let hit = table
                        .iter_key(key)
                        .any(|node| exact || rows_eq(build, node as usize, probe, pr, arity));
                    if hit {
                        for c in 0..arity {
                            buf.push_at(c, probe.get(pr, c));
                        }
                    }
                }
            });
            // Record µ for the next iteration's grey-zone decision.
            let r_len = r.first().map_or(0, Vec::len);
            state.prev_mu = Some(if r_len == 0 {
                f64::INFINITY
            } else {
                delta.len() as f64 / r_len as f64
            });
            // Phase 2: ∆R ← Rδ − r.
            let r_view = RelView::over(&r);
            if r_view.is_empty() {
                copy_view(ctx, delta)
            } else {
                state.tables_built += 1;
                anti_probe(ctx, delta, r_view, &mode, &cols)
            }
        }
    };
    (out, algo)
}

/// Build a multimap table over `build`'s full tuples.
fn build_multi(ctx: &ExecCtx, build: RelView<'_>, mode: &KeyMode, cols: &[usize]) -> ChainTable {
    let n = build.len();
    let keys = parallel_fill(&ctx.pool, n, ctx.grain, 0u64, |r| {
        let mut scratch = Vec::new();
        mode.key_of(build, r, cols, &mut scratch)
    });
    let table = ChainTable::with_capacity(n, n * 2);
    ctx.pool.parallel_for(n, ctx.grain, |range, _| {
        for r in range {
            table.insert_multi(r as u32, keys[r]);
        }
    });
    table
}

/// Rows of `keep` that have no equal tuple in `reject`.
fn anti_probe(
    ctx: &ExecCtx,
    keep: RelView<'_>,
    reject: RelView<'_>,
    mode: &KeyMode,
    cols: &[usize],
) -> Vec<Vec<Value>> {
    let arity = keep.arity();
    let table = build_multi(ctx, reject, mode, cols);
    let exact = mode.exact();
    parallel_produce(&ctx.pool, keep.len(), ctx.grain, arity, |range, buf| {
        let mut scratch = Vec::new();
        for kr in range {
            let key = mode.key_of(keep, kr, cols, &mut scratch);
            let hit = table
                .iter_key(key)
                .any(|node| exact || rows_eq(reject, node as usize, keep, kr, arity));
            if !hit {
                for c in 0..arity {
                    buf.push_at(c, keep.get(kr, c));
                }
            }
        }
    })
}

fn copy_view(ctx: &ExecCtx, view: RelView<'_>) -> Vec<Vec<Value>> {
    let arity = view.arity();
    parallel_produce(&ctx.pool, view.len(), ctx.grain, arity, |range, buf| {
        for r in range {
            for c in 0..arity {
                buf.push_at(c, view.get(r, c));
            }
        }
    })
}

#[inline]
fn rows_eq(a: RelView<'_>, ar: usize, b: RelView<'_>, br: usize, arity: usize) -> bool {
    (0..arity).all(|c| a.get(ar, c) == b.get(br, c))
}

/// Offline calibration of `α = C_build/C_probe` (paper Eq. 7): run `runs`
/// build+probe rounds over `pairs` synthetic table pairs and average the
/// per-tuple cost ratio.
pub fn calibrate_alpha(ctx: &ExecCtx, pairs: usize, runs: usize) -> f64 {
    let mut ratios = Vec::new();
    for i in 0..pairs.max(1) {
        let build_n = 8_192 << i.min(2);
        let probe_n = build_n * 4;
        let build_rel = synth(build_n, 3);
        let probe_rel = synth(probe_n, 5);
        let cols = [0usize, 1usize];
        let bv = RelView::over(&build_rel);
        let pv = RelView::over(&probe_rel);
        let mode = KeyMode::for_views(bv, &cols, pv, &cols);
        for _ in 0..runs.max(1) {
            let t0 = Instant::now();
            let table = build_multi(ctx, bv, &mode, &cols);
            let build_per_tuple = t0.elapsed().as_secs_f64() / build_n as f64;
            let t1 = Instant::now();
            let mut hits = 0usize;
            let mut scratch = Vec::new();
            for r in 0..pv.len() {
                let key = mode.key_of(pv, r, &cols, &mut scratch);
                hits += table.iter_key(key).count();
            }
            std::hint::black_box(hits);
            let probe_per_tuple = t1.elapsed().as_secs_f64() / probe_n as f64;
            if probe_per_tuple > 0.0 {
                ratios.push(build_per_tuple / probe_per_tuple);
            }
        }
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    // Clamp to a sane band: a degenerate measurement must not wedge DSD into
    // one branch forever.
    mean.clamp(1.1, 8.0)
}

fn synth(n: usize, stride: i64) -> Vec<Vec<Value>> {
    let mut cols = vec![Vec::with_capacity(n), Vec::with_capacity(n)];
    for i in 0..n as i64 {
        cols[0].push((i * stride) % 10_007);
        cols[1].push(i % 613);
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashSet;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn rows_of(cols: &[Vec<Value>]) -> HashSet<Vec<Value>> {
        (0..cols.first().map_or(0, Vec::len))
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect()
    }

    fn oracle_diff(delta: &Relation, full: &Relation) -> HashSet<Vec<Value>> {
        let f: HashSet<Vec<Value>> = full.to_rows().into_iter().collect();
        delta
            .to_rows()
            .into_iter()
            .filter(|r| !f.contains(r))
            .collect()
    }

    #[test]
    fn opsd_tpsd_dynamic_agree_with_oracle() {
        let delta = Relation::from_rows(
            Schema::with_arity("d", 2),
            &(0..200)
                .map(|i| vec![i as Value, (i * 2) as Value])
                .collect::<Vec<_>>(),
        );
        let full = Relation::from_rows(
            Schema::with_arity("f", 2),
            &(0..300)
                .map(|i| vec![(i / 2) as Value, i as Value])
                .collect::<Vec<_>>(),
        );
        let oracle = oracle_diff(&delta, &full);
        let ctx = ctx();
        for strat in [
            SetDiffStrategy::AlwaysOpsd,
            SetDiffStrategy::AlwaysTpsd,
            SetDiffStrategy::Dynamic,
        ] {
            let mut st = DsdState::default();
            let (out, _) = set_difference(&ctx, delta.view(), full.view(), strat, &mut st);
            assert_eq!(rows_of(&out), oracle, "{strat:?}");
        }
    }

    #[test]
    fn empty_cases() {
        let ctx = ctx();
        let mut st = DsdState::default();
        let e = Relation::new(Schema::with_arity("e", 2));
        let f = Relation::from_rows(Schema::with_arity("f", 2), &[vec![1, 2]]);
        let (out, _) = set_difference(&ctx, e.view(), f.view(), SetDiffStrategy::Dynamic, &mut st);
        assert!(out[0].is_empty());
        let (out, _) = set_difference(&ctx, f.view(), e.view(), SetDiffStrategy::Dynamic, &mut st);
        assert_eq!(rows_of(&out), [vec![1, 2]].into_iter().collect());
    }

    #[test]
    fn disjoint_and_subset_extremes() {
        let ctx = ctx();
        let a = Relation::from_rows(
            Schema::with_arity("a", 1),
            &(0..50).map(|i| vec![i as Value]).collect::<Vec<_>>(),
        );
        let b = Relation::from_rows(
            Schema::with_arity("b", 1),
            &(50..100).map(|i| vec![i as Value]).collect::<Vec<_>>(),
        );
        for strat in [SetDiffStrategy::AlwaysOpsd, SetDiffStrategy::AlwaysTpsd] {
            let mut st = DsdState::default();
            // Disjoint: everything survives.
            let (out, _) = set_difference(&ctx, a.view(), b.view(), strat, &mut st);
            assert_eq!(out[0].len(), 50);
            // Subset: nothing survives.
            let (out, _) = set_difference(&ctx, a.view(), a.view(), strat, &mut st);
            assert!(out[0].is_empty());
        }
    }

    #[test]
    fn cost_model_boundaries() {
        let alpha = 2.0; // 2α/(α−1) = 4
        assert_eq!(choose_algo(alpha, 0.5, None), SetDiffAlgo::Opsd);
        assert_eq!(choose_algo(alpha, 1.0, None), SetDiffAlgo::Opsd);
        assert_eq!(choose_algo(alpha, 4.0, None), SetDiffAlgo::Tpsd);
        assert_eq!(choose_algo(alpha, 10.0, None), SetDiffAlgo::Tpsd);
        // Grey zone: no µ yet → OPSD.
        assert_eq!(choose_algo(alpha, 2.0, None), SetDiffAlgo::Opsd);
        // Grey zone with large µ: β(α−1)=3 > α + α/µ ≈ 2 → TPSD.
        assert_eq!(choose_algo(alpha, 3.0, Some(1e9)), SetDiffAlgo::Tpsd);
        // Grey zone with µ = 1: β(α−1)=3 < α + α = 4 → OPSD.
        assert_eq!(choose_algo(alpha, 3.0, Some(1.0)), SetDiffAlgo::Opsd);
    }

    #[test]
    fn alpha_le_one_never_picks_tpsd_without_mu_signal() {
        // If builds are cheaper than probes the TPSD threshold is undefined;
        // Eq. (5) stays negative so OPSD must win.
        assert_eq!(choose_algo(0.9, 100.0, Some(5.0)), SetDiffAlgo::Opsd);
    }

    #[test]
    fn tpsd_records_mu() {
        let ctx = ctx();
        let delta = Relation::from_rows(
            Schema::with_arity("d", 1),
            &(0..10).map(|i| vec![i as Value]).collect::<Vec<_>>(),
        );
        let full = Relation::from_rows(
            Schema::with_arity("f", 1),
            &(5..30).map(|i| vec![i as Value]).collect::<Vec<_>>(),
        );
        let mut st = DsdState::default();
        let (_, algo) = set_difference(
            &ctx,
            delta.view(),
            full.view(),
            SetDiffStrategy::AlwaysTpsd,
            &mut st,
        );
        assert_eq!(algo, SetDiffAlgo::Tpsd);
        // Intersection = {5..9}, so µ = 10/5 = 2.
        assert_eq!(st.prev_mu, Some(2.0));
    }

    #[test]
    fn dynamic_switches_as_full_grows() {
        // With β huge, Dynamic must pick TPSD.
        let ctx = ctx();
        let delta = Relation::from_rows(Schema::with_arity("d", 1), &[vec![100_000]]);
        let full = Relation::from_rows(
            Schema::with_arity("f", 1),
            &(0..10_000).map(|i| vec![i as Value]).collect::<Vec<_>>(),
        );
        let mut st = DsdState::new(2.0);
        let (out, algo) = set_difference(
            &ctx,
            delta.view(),
            full.view(),
            SetDiffStrategy::Dynamic,
            &mut st,
        );
        assert_eq!(algo, SetDiffAlgo::Tpsd);
        assert_eq!(out[0], vec![100_000]);
    }

    #[test]
    fn calibration_returns_sane_alpha() {
        let ctx = ctx();
        let alpha = calibrate_alpha(&ctx, 1, 1);
        assert!((1.1..=8.0).contains(&alpha), "alpha = {alpha}");
    }
}
