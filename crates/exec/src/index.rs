//! Persistent, incrementally maintained CCK-GSCHT indexes.
//!
//! Algorithm 1 rebuilds a fresh hash table for every dedup, set-difference
//! and join build, at every IDB, at every iteration — even though stored
//! relations are **strictly append-only with stable row ids** during a
//! stratum's fixpoint: the table needed at iteration `t+1` is always a
//! strict superset of the one built at iteration `t`, over the same node
//! numbering (node `i` is row `i`). A [`PersistentIndex`] exploits exactly
//! that invariant: it binds a growable [`ChainTable`] plus a [`KeyMode`] to
//! a relation's row ids and absorbs appended rows instead of rebuilding.
//!
//! ## The append-only row-id invariant
//!
//! Everything here relies on one storage contract: between `clear`s, a
//! `Relation` only ever *appends* rows, so row `i`'s tuple never changes
//! and new rows occupy ids `n..m`. The engine upholds this during stratum
//! evaluation (`R ← R ⊎ ∆R` appends; IDB resets happen before any stratum
//! runs). An index is synchronized by comparing its covered row count with
//! the relation's current length — equal prefixes are guaranteed, so only
//! the tail `rows()..rel.len()` needs inserting.
//!
//! ## Compact-key invalidation
//!
//! Packed CCK layouts are derived from the bounds seen so far. A later
//! append may produce a value outside those bounds, which the packed key
//! cannot represent. When that happens the index **falls back to hashed
//! mode and rebuilds once** ([`SyncAction::Rebuilt`]); hashed keys cover
//! all of `Value`, so at most one such rebuild ever happens per index.
//!
//! ## Fused dedup + set-difference
//!
//! [`PersistentIndex::absorb`] replaces the per-iteration
//! `dedup(Rt)`/`Rδ − R` pipeline with one pass over the candidates: each
//! candidate row computes its key once, probes the persistent full-R index
//! (set membership in `R`), and — when absent — races an `insert_unique`
//! into a scratch table sized to `|Rt|` (dedup *within* the candidates).
//! CAS winners are exactly `∆R`. The scratch table is transient by design:
//! winners' final row ids in `R` are only known after the merge, so staging
//! them in the persistent table would leave dead node slots behind; instead
//! the caller appends `∆R` to `R` and then calls
//! [`PersistentIndex::append`], which inserts the new rows under their
//! stable ids. Per-iteration work is `O(|Rt|)` — never `O(|R|)` — and the
//! full-R table is built exactly once per stratum.

use std::time::{Duration, Instant};

use recstep_common::Value;
use recstep_storage::RelView;

use crate::chain::ChainTable;
use crate::key::{bounds_of, KeyMode};
use crate::util::{parallel_fill, parallel_produce};
use crate::ExecCtx;

/// What a synchronization step ([`PersistentIndex::append`] /
/// [`PersistentIndex::sync_for_probe`]) had to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncAction {
    /// Index already covered the relation; nothing inserted.
    Reused,
    /// The given number of appended rows were inserted incrementally.
    Appended(usize),
    /// The index was rebuilt from scratch (first build, compact-key
    /// invalidation, or a shrunk relation).
    Rebuilt,
}

/// Outcome of one fused dedup + set-difference pass.
pub struct AbsorbOutcome {
    /// `∆R`: candidate rows neither present in the base relation nor
    /// duplicated within the candidates (column-major, candidate arity).
    pub fresh: Vec<Vec<Value>>,
    /// Bytes the transient scratch table occupied.
    pub scratch_bytes: usize,
    /// Whether compact-key invalidation forced a hashed rebuild first.
    pub rebuilt: bool,
}

/// A growable hash index pinned to a relation's stable row ids.
///
/// Node `i` of the chain table is row `i` of the indexed relation (the
/// rows the index *covers*: `0..self.rows()`). Key columns are fixed at
/// construction; for the fused dedup/set-difference use they span the
/// whole tuple, for join build sides they are the join keys (multimap).
pub struct PersistentIndex {
    table: ChainTable,
    mode: KeyMode,
    cols: Vec<usize>,
    rows: usize,
}

impl PersistentIndex {
    /// Build an index over all current rows of `base`.
    ///
    /// The key mode is chosen from `base`'s (cached) bounds: packed CCK
    /// when the key columns fit 64 bits, hashed otherwise. An index built
    /// over an empty relation defers the choice to the first batch of
    /// rows it sees.
    pub fn build(ctx: &ExecCtx, base: RelView<'_>, cols: Vec<usize>) -> Self {
        let mode = KeyMode::for_view(base, &cols);
        let n = base.len();
        let mut idx = PersistentIndex {
            table: ChainTable::with_capacity(n, n * 2),
            mode,
            cols,
            rows: 0,
        };
        idx.insert_range(ctx, base, 0, n);
        idx
    }

    /// Rows of the base relation this index covers (node `i` ⇔ row `i`
    /// for `i < rows()`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Key columns the index is built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.cols
    }

    /// The key mode in effect (packed CCK or hashed).
    pub fn mode(&self) -> &KeyMode {
        &self.mode
    }

    /// The underlying chain table (for prebuilt-table probes).
    pub fn table(&self) -> &ChainTable {
        &self.table
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }

    /// Insert rows `from..to` of `base` under their row ids (multimap
    /// semantics), growing node storage and doubling buckets as needed.
    fn insert_range(&mut self, ctx: &ExecCtx, base: RelView<'_>, from: usize, to: usize) {
        debug_assert_eq!(from, self.rows);
        if to > from {
            self.table.grow_nodes(to);
            // Keep the load factor at ≤ 0.5 nodes per bucket, the same
            // pre-allocation ratio scratch builds use; doubling amortizes
            // the relink cost over the rows that triggered it.
            if to * 2 > self.table.buckets() {
                self.table.rehash(to * 2);
            }
            let mode = &self.mode;
            let cols = &self.cols;
            let keys = parallel_fill(&ctx.pool, to - from, ctx.grain, 0u64, |i| {
                let mut scratch = Vec::new();
                mode.key_of(base, from + i, cols, &mut scratch)
            });
            let table = &self.table;
            ctx.pool.parallel_for(to - from, ctx.grain, |range, _| {
                for i in range {
                    table.insert_multi((from + i) as u32, keys[i]);
                }
            });
        }
        self.rows = to;
    }

    /// Discard the table and rebuild over all of `base` in hashed mode
    /// (the one-time compact-key invalidation path).
    fn rebuild_hashed(&mut self, ctx: &ExecCtx, base: RelView<'_>) {
        let n = base.len();
        self.mode = KeyMode::Hashed;
        self.table = ChainTable::with_capacity(n, n * 2);
        self.rows = 0;
        self.insert_range(ctx, base, 0, n);
    }

    /// True when rows whose key columns span `new_bounds` can be inserted
    /// without invalidating the current key mode.
    fn mode_admits(&self, new_bounds: &[(Value, Value)]) -> bool {
        match &self.mode {
            KeyMode::Packed(layout) => layout.covers(new_bounds),
            KeyMode::Hashed => true,
        }
    }

    /// Synchronize with `base` after rows were appended to it. Incremental
    /// whenever possible; rebuilds (hashed) when an appended value escapes
    /// a packed layout, and rebuilds defensively if the relation shrank
    /// (a cleared-and-refilled relation invalidates row ids).
    pub fn append(&mut self, ctx: &ExecCtx, base: RelView<'_>) -> SyncAction {
        let n = base.len();
        if n < self.rows {
            let mode = KeyMode::for_view(base, &self.cols);
            self.table = ChainTable::with_capacity(n, n * 2);
            self.mode = mode;
            self.rows = 0;
            self.insert_range(ctx, base, 0, n);
            return SyncAction::Rebuilt;
        }
        if n == self.rows {
            return SyncAction::Reused;
        }
        if self.rows == 0 {
            // Deferred mode choice: the index was created over an empty
            // relation; pick the mode from the first real rows.
            self.mode = KeyMode::for_view(base, &self.cols);
        } else if let Some(b) = bounds_of(base, &self.cols) {
            // Whole-relation bounds decide invalidation exactly: already
            // indexed rows fit the layout, so the combined bounds escape
            // iff some appended value escapes. For stored relations this
            // reads the O(1) incremental cache.
            if !self.mode_admits(&b) {
                self.rebuild_hashed(ctx, base);
                return SyncAction::Rebuilt;
            }
        }
        let added = n - self.rows;
        self.insert_range(ctx, base, self.rows, n);
        SyncAction::Appended(added)
    }

    /// Fused FAST-DEDUP + set difference: return candidate rows that are
    /// new with respect to `base` *and* distinct within `cand`, in one
    /// parallel pass.
    ///
    /// `base` must be the relation this index covers (`base.len() ==
    /// self.rows()`), with key columns spanning the full tuple so key
    /// equality means tuple equality. The caller merges the returned rows
    /// into `base` and then calls [`PersistentIndex::append`].
    pub fn absorb(&mut self, ctx: &ExecCtx, cand: RelView<'_>, base: RelView<'_>) -> AbsorbOutcome {
        assert_eq!(
            base.len(),
            self.rows,
            "index out of sync with its base relation"
        );
        let arity = cand.arity();
        let m = cand.len();
        if m == 0 {
            return AbsorbOutcome {
                fresh: vec![Vec::new(); arity],
                scratch_bytes: 0,
                rebuilt: false,
            };
        }
        let mut rebuilt = false;
        if self.rows == 0 {
            // Deferred mode choice from the first candidates (the table is
            // still empty, so this is free).
            self.mode = KeyMode::for_view(cand, &self.cols);
        } else if let Some(b) = bounds_of(cand, &self.cols) {
            if !self.mode_admits(&b) {
                self.rebuild_hashed(ctx, base);
                rebuilt = true;
            }
        }
        let scratch = ChainTable::with_capacity(m, m * 2);
        let mode = &self.mode;
        let cols = &self.cols;
        let table = &self.table;
        let exact = mode.exact();
        let in_base = |node: u32, r: usize| -> bool {
            exact
                || cols
                    .iter()
                    .all(|&c| base.get(node as usize, c) == cand.get(r, c))
        };
        let cand_eq = |a: u32, b: u32| -> bool {
            cols.iter()
                .all(|&c| cand.get(a as usize, c) == cand.get(b as usize, c))
        };
        let fresh = parallel_produce(&ctx.pool, m, ctx.grain, arity, |range, buf| {
            let mut key_scratch = Vec::new();
            for r in range {
                let key = mode.key_of(cand, r, cols, &mut key_scratch);
                if table.iter_key(key).any(|node| in_base(node, r)) {
                    continue; // already in R
                }
                if scratch.insert_unique(r as u32, key, cand_eq) {
                    for c in 0..arity {
                        buf.push_at(c, cand.get(r, c));
                    }
                }
            }
        });
        AbsorbOutcome {
            fresh,
            scratch_bytes: scratch.heap_bytes(),
            rebuilt,
        }
    }

    /// Prepare the index for probing with keys drawn from `probe`'s key
    /// columns: synchronize with `base`, then verify the probe values are
    /// representable under the current key mode — packed layouts that do
    /// not cover the probe bounds fall back to hashed and rebuild once.
    ///
    /// Returns the most intrusive action taken.
    pub fn sync_for_probe(
        &mut self,
        ctx: &ExecCtx,
        base: RelView<'_>,
        probe: RelView<'_>,
        probe_cols: &[usize],
    ) -> SyncAction {
        let action = self.append(ctx, base);
        if let Some(b) = bounds_of(probe, probe_cols) {
            if !self.mode_admits(&b) {
                self.rebuild_hashed(ctx, base);
                return SyncAction::Rebuilt;
            }
        }
        action
    }
}

/// An immutable, `Arc`-shareable snapshot of a [`PersistentIndex`].
///
/// A shared index is the read-only tier of index caching: it is built once
/// over a *frozen* relation snapshot (EDBs, or IDB relations of already
/// completed strata), published into a [`crate::cache::IndexCache`], and
/// probed concurrently by any number of evaluations. It is never
/// synchronized — staleness is handled by the cache key (relation version),
/// not by mutation — which is what makes `&SharedIndex` safe to hand to
/// many threads at once.
///
/// Probe compatibility still matters: a packed CCK layout derived from the
/// base relation's bounds may not cover a particular probe's values.
/// Callers check [`SharedIndex::admits_probe`] and fall back to a run-local
/// hashed [`PersistentIndex`] when it fails (the immutable snapshot cannot
/// rebuild itself).
pub struct SharedIndex {
    table: ChainTable,
    mode: KeyMode,
    cols: Vec<usize>,
    rows: usize,
    bytes: usize,
    build_cost: Duration,
}

// Backing stores are atomics + plain data; sharing across threads is the
// whole point.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedIndex>();
};

impl SharedIndex {
    /// Build an immutable index over all current rows of `base`, recording
    /// the build cost so cache eviction can weigh bytes against the price
    /// of rebuilding.
    pub fn build(ctx: &ExecCtx, base: RelView<'_>, cols: Vec<usize>) -> Self {
        let t0 = Instant::now();
        PersistentIndex::build(ctx, base, cols).freeze(t0.elapsed())
    }

    /// The underlying chain table (for prebuilt-table probes).
    pub fn table(&self) -> &ChainTable {
        &self.table
    }

    /// The key mode the snapshot was built with.
    pub fn mode(&self) -> &KeyMode {
        &self.mode
    }

    /// Rows of the frozen base relation the snapshot covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Key columns the index is built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.cols
    }

    /// Approximate heap footprint in bytes (frozen at build time).
    pub fn heap_bytes(&self) -> usize {
        self.bytes
    }

    /// Wall-clock cost of the original build — the denominator of the
    /// cache's `bytes / rebuild_cost` eviction score.
    pub fn build_cost(&self) -> Duration {
        self.build_cost
    }

    /// Whether keys drawn from `probe`'s key columns are representable
    /// under this snapshot's key mode. Hashed mode admits everything;
    /// packed layouts admit probes whose bounds they cover. A `false`
    /// answer means the caller needs a run-local hashed index instead.
    pub fn admits_probe(&self, probe: RelView<'_>, probe_cols: &[usize]) -> bool {
        match &self.mode {
            KeyMode::Hashed => true,
            KeyMode::Packed(layout) => match bounds_of(probe, probe_cols) {
                Some(b) => layout.covers(&b),
                None => true,
            },
        }
    }
}

impl PersistentIndex {
    /// Freeze this index into an immutable, shareable [`SharedIndex`],
    /// recording `build_cost` for eviction scoring.
    pub fn freeze(self, build_cost: Duration) -> SharedIndex {
        let bytes = self.heap_bytes();
        SharedIndex {
            table: self.table,
            mode: self.mode,
            cols: self.cols,
            rows: self.rows,
            bytes,
            build_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashSet;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn rows_of(cols: &[Vec<Value>]) -> HashSet<Vec<Value>> {
        (0..cols.first().map_or(0, Vec::len))
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect()
    }

    #[test]
    fn absorb_filters_base_members_and_candidate_duplicates() {
        let ctx = ctx();
        let mut base = Relation::new(Schema::with_arity("r", 2));
        base.push_row(&[0, 0]);
        base.push_row(&[9, 90]);
        let mut idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        assert!(idx.mode().exact());
        // In-bounds candidates: one already in R, one duplicated, two new.
        let cand = Relation::from_rows(
            Schema::with_arity("rt", 2),
            &[vec![9, 90], vec![3, 30], vec![3, 30], vec![4, 40]],
        );
        let out = idx.absorb(&ctx, cand.view(), base.view());
        assert_eq!(
            rows_of(&out.fresh),
            [vec![3, 30], vec![4, 40]].into_iter().collect()
        );
        assert!(!out.rebuilt);
        // Merge + append keeps the index usable next iteration.
        let mut delta = Relation::new(Schema::with_arity("d", 2));
        delta.append_columns(out.fresh);
        base.append_relation(&delta);
        assert_eq!(idx.append(&ctx, base.view()), SyncAction::Appended(2));
        let again = idx.absorb(&ctx, cand.view(), base.view());
        assert!(again.fresh[0].is_empty(), "everything is in R now");
    }

    #[test]
    fn fixpoint_loop_builds_once_and_appends() {
        // A 6-node path graph TC by hand: the full-R index must absorb
        // every iteration without ever rebuilding.
        let ctx = ctx();
        let edges: Vec<(Value, Value)> = (0..5).map(|i| (i, i + 1)).collect();
        let mut r = Relation::new(Schema::with_arity("tc", 2));
        let mut idx = PersistentIndex::build(&ctx, r.view(), vec![0, 1]);
        let mut delta: Vec<(Value, Value)> = edges.clone();
        let mut iterations = 0;
        while !delta.is_empty() {
            iterations += 1;
            // Rt = delta ⋈ edges plus (first iteration) the edges.
            let mut cand = Relation::new(Schema::with_arity("rt", 2));
            if iterations == 1 {
                for &(a, b) in &edges {
                    cand.push_row(&[a, b]);
                }
            }
            for &(a, b) in &delta {
                for &(c, d) in &edges {
                    if b == c {
                        cand.push_row(&[a, d]);
                    }
                }
            }
            let out = idx.absorb(&ctx, cand.view(), r.view());
            assert!(!out.rebuilt, "path-graph bounds never escape");
            delta = (0..out.fresh[0].len())
                .map(|i| (out.fresh[0][i], out.fresh[1][i]))
                .collect();
            let mut d = Relation::new(Schema::with_arity("d", 2));
            d.append_columns(out.fresh);
            r.append_relation(&d);
            match idx.append(&ctx, r.view()) {
                SyncAction::Appended(n) => assert_eq!(n, delta.len()),
                SyncAction::Reused => assert!(delta.is_empty()),
                SyncAction::Rebuilt => panic!("unexpected rebuild"),
            }
        }
        assert_eq!(iterations, 5); // last productive pass empties ∆R's successor
        assert_eq!(r.len(), 5 + 4 + 3 + 2 + 1); // closure of a 6-node path
    }

    #[test]
    fn escaping_values_fall_back_to_hashed_once() {
        let ctx = ctx();
        let mut base = Relation::new(Schema::with_arity("r", 2));
        base.push_row(&[1, 2]);
        let mut idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        assert!(idx.mode().exact(), "small values pack");
        // A candidate outside any packed layout forces the fallback.
        let cand = Relation::from_rows(
            Schema::with_arity("rt", 2),
            &[vec![Value::MIN, Value::MAX], vec![1, 2]],
        );
        let out = idx.absorb(&ctx, cand.view(), base.view());
        assert!(out.rebuilt);
        assert!(!idx.mode().exact());
        assert_eq!(
            rows_of(&out.fresh),
            [vec![Value::MIN, Value::MAX]].into_iter().collect()
        );
        // Hashed mode is sticky: no second rebuild.
        let mut d = Relation::new(Schema::with_arity("d", 2));
        d.append_columns(out.fresh);
        base.append_relation(&d);
        idx.append(&ctx, base.view());
        let cand2 = Relation::from_rows(Schema::with_arity("rt", 2), &[vec![Value::MAX, 0]]);
        let out2 = idx.absorb(&ctx, cand2.view(), base.view());
        assert!(!out2.rebuilt);
        assert_eq!(out2.fresh[0].len(), 1);
    }

    #[test]
    fn sync_for_probe_guards_probe_bounds() {
        let ctx = ctx();
        let base = Relation::from_rows(
            Schema::with_arity("edb", 2),
            &[vec![1, 2], vec![3, 4], vec![5, 6]],
        );
        let mut idx = PersistentIndex::build(&ctx, base.view(), vec![0]);
        assert!(idx.mode().exact());
        // In-bounds probe: reused as-is.
        let probe = Relation::from_rows(Schema::with_arity("p", 1), &[vec![3]]);
        assert_eq!(
            idx.sync_for_probe(&ctx, base.view(), probe.view(), &[0]),
            SyncAction::Reused
        );
        assert!(idx.mode().exact());
        // Out-of-bounds probe values force the hashed rebuild.
        let wide = Relation::from_rows(Schema::with_arity("p", 1), &[vec![Value::MAX]]);
        assert_eq!(
            idx.sync_for_probe(&ctx, base.view(), wide.view(), &[0]),
            SyncAction::Rebuilt
        );
        assert!(!idx.mode().exact());
        // Probing still finds the right nodes afterwards.
        let mut scratch = Vec::new();
        let key = idx.mode().key_of(base.view(), 1, &[0], &mut scratch);
        assert!(idx.table().contains(key, |n| n == 1));
    }

    #[test]
    fn shrunk_relation_triggers_defensive_rebuild() {
        let ctx = ctx();
        let mut base = Relation::from_rows(Schema::with_arity("r", 1), &[vec![1], vec![2]]);
        let mut idx = PersistentIndex::build(&ctx, base.view(), vec![0]);
        base.clear();
        base.push_row(&[7]);
        assert_eq!(idx.append(&ctx, base.view()), SyncAction::Rebuilt);
        assert_eq!(idx.rows(), 1);
        let mut scratch = Vec::new();
        let key = idx.mode().key_of(base.view(), 0, &[0], &mut scratch);
        assert!(idx.table().contains(key, |n| n == 0));
    }
}
