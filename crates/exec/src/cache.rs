//! The shared cross-run index cache with spill-aware eviction.
//!
//! PR 2/3 made CCK-GSCHT indexes persistent *within* a run: the full-`R`
//! table is built once per stratum and join build sides are cached for the
//! duration of a fixpoint. What still got rebuilt N times was everything
//! *between* runs — every concurrent (or sequential) evaluation over one
//! database re-built the same EDB and frozen-relation indexes from
//! scratch. An [`IndexCache`] closes that gap: it is an `Arc`-shared,
//! database-owned map from `(relation, catalog version, key columns)` to an
//! immutable [`SharedIndex`] snapshot, so N runs over one database build
//! each frozen index exactly once.
//!
//! ## First builder wins
//!
//! Each cache slot holds a `OnceLock`. Concurrent runs that miss on the
//! same key race into [`IndexCache::get_or_build`]; the first caller
//! initializes the slot (building the index), every other caller blocks on
//! the `OnceLock` and receives the same `Arc<SharedIndex>` — one build, N
//! consumers, no torn state. Staleness never needs invalidation callbacks:
//! the catalog version is part of the key, so a mutated relation simply
//! misses and the stale entry goes cold until eviction collects it.
//!
//! ## Spill-aware eviction
//!
//! The cache is a first-class citizen of the memory budget. Every resident
//! index accounts its byte footprint ([`IndexCache::resident_bytes`]) and
//! remembers its build cost. Under pressure — a publish that would exceed
//! the cache budget, or the engine's mid-stratum OOM check — eviction
//! drops entries **coldest-first, breaking ties by `bytes /
//! rebuild_cost`** (big-and-cheap-to-rebuild goes first), and only touches
//! entries no run is currently probing (the `Arc` strong count is the pin
//! count, so eviction never frees memory out from under a borrower). A
//! consumer that later finds its entry gone just rebuilds: a cache miss
//! *is* the rebuild signal, never a panic.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use recstep_common::hash::FxHashMap;

use crate::index::SharedIndex;

/// Cache key: a relation snapshot (id + modification version) and the key
/// columns the index is built on.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog id of the indexed relation.
    pub rel: usize,
    /// Modification version of the relation when the index was requested;
    /// any later mutation bumps the version and turns this entry stale.
    pub version: u64,
    /// Key columns the index is built on.
    pub cols: Vec<usize>,
}

/// One cache slot: the build-once cell plus the recency stamp eviction
/// reads. Kept behind an `Arc` so builders initialize it outside the map
/// lock.
struct Slot {
    cell: OnceLock<Arc<SharedIndex>>,
    /// Logical tick of the last touch (monotone cache-wide counter, not
    /// wall time): smaller = colder.
    last_used: AtomicU64,
}

/// What one [`IndexCache::get_or_build`] call did.
pub struct CacheOutcome {
    /// The (possibly freshly built) shared index.
    pub index: Arc<SharedIndex>,
    /// True when this caller performed the build (a cache miss); false
    /// when the index was already resident or another racer built it
    /// first (a hit).
    pub built: bool,
    /// Entries evicted to make room for a fresh build (0 on hits).
    pub evicted: usize,
}

/// Database-owned, `Arc`-shared cache of immutable [`SharedIndex`]es.
///
/// See the [module docs](crate::cache) for the protocol. All methods take
/// `&self`; the cache is `Send + Sync` and designed to be probed from many
/// concurrent evaluations.
#[derive(Default)]
pub struct IndexCache {
    map: Mutex<FxHashMap<CacheKey, Arc<Slot>>>,
    /// Bytes held by *initialized* resident entries.
    resident: AtomicUsize,
    /// Logical clock for recency stamps.
    clock: AtomicU64,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IndexCache>();
};

impl IndexCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bytes currently held by resident (built) entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Number of resident (built) entries.
    pub fn len(&self) -> usize {
        let map = self.map.lock().unwrap();
        map.values().filter(|s| s.cell.get().is_some()).count()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-building lookup: the resident index under `key`, if any. A
    /// `None` after a previous hit means the entry was evicted — the
    /// caller's rebuild signal.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<SharedIndex>> {
        let map = self.map.lock().unwrap();
        let slot = map.get(key)?;
        let idx = slot.cell.get()?.clone();
        slot.last_used.store(self.tick(), Ordering::Relaxed);
        Some(idx)
    }

    /// The resident index under `key`, building it (exactly once across
    /// all concurrent callers) on a miss.
    ///
    /// `budget` caps the cache's resident bytes: after a fresh build,
    /// other cold entries are evicted until the cache fits. The fresh
    /// entry itself is never evicted by its own publish (the caller holds
    /// it), so a budget smaller than one index degrades to "cache of the
    /// most recent build" rather than failing.
    pub fn get_or_build<F>(&self, key: &CacheKey, budget: usize, build: F) -> CacheOutcome
    where
        F: FnOnce() -> SharedIndex,
    {
        let slot = {
            let mut map = self.map.lock().unwrap();
            let slot = map
                .entry(key.clone())
                .or_insert_with(|| {
                    Arc::new(Slot {
                        cell: OnceLock::new(),
                        last_used: AtomicU64::new(0),
                    })
                })
                .clone();
            slot.last_used.store(self.tick(), Ordering::Relaxed);
            slot
        };
        // Build outside the map lock: racers on the same key serialize on
        // the OnceLock (first builder wins, the rest block and reuse);
        // builders of *different* keys proceed in parallel.
        let mut built = false;
        let index = slot
            .cell
            .get_or_init(|| {
                built = true;
                Arc::new(build())
            })
            .clone();
        let mut evicted = 0;
        if built {
            let mut map = self.map.lock().unwrap();
            // Defensive re-insert: today nothing can remove the slot while
            // its cell is uninitialized (eviction and stale-purging skip
            // such slots), but accounting depends on the built entry being
            // in the map, so keep the check cheap rather than clever.
            match map.get(key) {
                Some(s) if Arc::ptr_eq(s, &slot) => {}
                _ => {
                    map.insert(key.clone(), Arc::clone(&slot));
                }
            }
            self.resident
                .fetch_add(index.heap_bytes(), Ordering::Relaxed);
            // Older snapshots of the same (relation, cols) are garbage by
            // construction — collect them eagerly rather than waiting for
            // them to go cold.
            evicted += self.purge_stale_locked(&mut map, key);
            drop(map);
            evicted += self.evict_to_fit(budget).0;
        }
        CacheOutcome {
            index,
            built,
            evicted,
        }
    }

    /// Drop unpinned entries with the same relation and key columns but a
    /// different (older) version. Returns how many were removed.
    fn purge_stale_locked(
        &self,
        map: &mut FxHashMap<CacheKey, Arc<Slot>>,
        fresh: &CacheKey,
    ) -> usize {
        let stale: Vec<CacheKey> = map
            .iter()
            .filter(|(k, slot)| {
                k.rel == fresh.rel
                    && k.cols == fresh.cols
                    && k.version != fresh.version
                    && slot
                        .cell
                        .get()
                        .is_none_or(|idx| Arc::strong_count(idx) == 1)
            })
            .map(|(k, _)| k.clone())
            .collect();
        let mut removed = 0;
        for k in stale {
            if let Some(slot) = map.remove(&k) {
                if let Some(idx) = slot.cell.get() {
                    self.resident.fetch_sub(idx.heap_bytes(), Ordering::Relaxed);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Evict cold, unpinned entries until resident bytes fit `target`.
    ///
    /// Order: coldest first (smallest recency tick), ties broken by the
    /// spill score `bytes / rebuild_cost` descending — of two equally cold
    /// entries, the one buying the least rebuild time per resident byte
    /// goes first. Entries currently borrowed by a run (`Arc` strong count
    /// > 1) are pinned and skipped. Returns `(entries evicted, bytes
    /// freed)`.
    pub fn evict_to_fit(&self, target: usize) -> (usize, usize) {
        if self.resident_bytes() <= target {
            return (0, 0);
        }
        let mut map = self.map.lock().unwrap();
        let mut candidates: Vec<(CacheKey, u64, f64, usize)> = map
            .iter()
            .filter_map(|(k, slot)| {
                let idx = slot.cell.get()?;
                if Arc::strong_count(idx) > 1 {
                    return None; // pinned by a live run
                }
                let cost = idx.build_cost().as_nanos() as f64 + 1.0;
                let score = idx.heap_bytes() as f64 / cost;
                Some((
                    k.clone(),
                    slot.last_used.load(Ordering::Relaxed),
                    score,
                    idx.heap_bytes(),
                ))
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut evicted = 0;
        let mut freed = 0;
        for (key, _, _, bytes) in candidates {
            if self.resident_bytes() <= target {
                break;
            }
            map.remove(&key);
            self.resident.fetch_sub(bytes, Ordering::Relaxed);
            evicted += 1;
            freed += bytes;
        }
        (evicted, freed)
    }

    /// Drop every unpinned resident entry (full spill). Returns
    /// `(entries evicted, bytes freed)`.
    pub fn evict_all(&self) -> (usize, usize) {
        self.evict_to_fit(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecCtx;
    use recstep_storage::{Relation, Schema};

    fn shared_over(rows: &[Vec<i64>]) -> SharedIndex {
        let ctx = ExecCtx::with_threads(2);
        let rel = Relation::from_rows(Schema::with_arity("r", 2), rows);
        SharedIndex::build(&ctx, rel.view(), vec![0, 1])
    }

    fn key(rel: usize, version: u64) -> CacheKey {
        CacheKey {
            rel,
            version,
            cols: vec![0, 1],
        }
    }

    #[test]
    fn build_once_then_hit() {
        let cache = IndexCache::new();
        let k = key(0, 1);
        let first = cache.get_or_build(&k, usize::MAX, || shared_over(&[vec![1, 2]]));
        assert!(first.built);
        let second = cache.get_or_build(&k, usize::MAX, || panic!("must not rebuild"));
        assert!(!second.built);
        assert!(Arc::ptr_eq(&first.index, &second.index));
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn concurrent_racers_build_exactly_once() {
        let cache = Arc::new(IndexCache::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let k = key(7, 3);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let k = k.clone();
                scope.spawn(move || {
                    let out = cache.get_or_build(&k, usize::MAX, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        shared_over(&[vec![1, 2], vec![3, 4]])
                    });
                    assert_eq!(out.index.rows(), 2);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "one build across racers");
    }

    #[test]
    fn eviction_is_coldest_first_and_skips_pinned() {
        let cache = IndexCache::new();
        let a = cache.get_or_build(&key(0, 1), usize::MAX, || shared_over(&[vec![1, 2]]));
        drop(cache.get_or_build(&key(1, 1), usize::MAX, || shared_over(&[vec![3, 4]])));
        // Touch b so a is the coldest; keep a pinned via the held Arc.
        assert!(cache.get(&key(1, 1)).is_some());
        let pinned = a.index;
        let (evicted, freed) = cache.evict_all();
        // a is pinned (strong count 2), b's Arc from get() was dropped.
        assert_eq!(evicted, 1);
        assert!(freed > 0);
        assert!(cache.get(&key(1, 1)).is_none(), "b evicted");
        assert!(cache.get(&key(0, 1)).is_some(), "pinned a survives");
        drop(pinned);
        let (evicted, _) = cache.evict_all();
        assert_eq!(evicted, 1);
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn miss_after_eviction_is_a_rebuild_signal() {
        let cache = IndexCache::new();
        drop(cache.get_or_build(&key(0, 1), usize::MAX, || shared_over(&[vec![1, 2]])));
        cache.evict_all();
        assert!(cache.get(&key(0, 1)).is_none());
        // The caller rebuilds through the same entry point — no panic.
        let again = cache.get_or_build(&key(0, 1), usize::MAX, || shared_over(&[vec![1, 2]]));
        assert!(again.built);
    }

    #[test]
    fn publish_purges_stale_versions() {
        let cache = IndexCache::new();
        drop(cache.get_or_build(&key(5, 1), usize::MAX, || shared_over(&[vec![1, 2]])));
        let out = cache.get_or_build(&key(5, 2), usize::MAX, || {
            shared_over(&[vec![1, 2], vec![5, 6]])
        });
        assert!(out.built);
        assert!(out.evicted >= 1, "stale version collected");
        assert!(cache.get(&key(5, 1)).is_none());
        assert!(cache.get(&key(5, 2)).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tight_budget_keeps_only_the_fresh_build() {
        let cache = IndexCache::new();
        drop(cache.get_or_build(&key(0, 1), 1, || shared_over(&[vec![1, 2]])));
        // Publishing under a 1-byte budget evicts the (unpinned) older
        // entry; the fresh one stays because its caller pins it.
        let out = cache.get_or_build(&key(1, 1), 1, || shared_over(&[vec![3, 4]]));
        assert!(out.built);
        assert!(out.evicted >= 1);
        assert!(cache.get(&key(0, 1)).is_none());
        drop(out);
    }
}
