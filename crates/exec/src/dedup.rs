//! FAST-DEDUP: parallel deduplication over the CCK-GSCHT (paper §5.2).
//!
//! Deduplication runs at every iteration for every IDB in the stratum
//! (Algorithm 1 line 10), making it one of the two bottleneck operators. The
//! paper's specialized implementation combines:
//!
//! * a **global** separate-chaining table all workers insert into (no
//!   per-worker partials to merge),
//! * **pre-allocated** buckets sized from the optimizer's conservative
//!   distinct estimate,
//! * the **compact concatenated key**: the whole tuple packed into 8 bytes,
//!   doubling as its own hash value, so no ⟨key, value⟩ pair or hash is
//!   stored.
//!
//! [`DedupImpl::Generic`] is the comparison point of the Figure 2 ablation —
//! the same global table but with explicit hashed keys and row verification
//! (what "the original parallel global separate chaining hash table" does),
//! and [`DedupImpl::Sort`] is a sort-based alternative used by tests and the
//! operator micro-benchmarks.

use recstep_common::Value;
use recstep_storage::RelView;

use crate::chain::ChainTable;
use crate::key::KeyMode;
use crate::util::parallel_produce;
use crate::ExecCtx;

/// Which deduplication implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupImpl {
    /// CCK-GSCHT: packed compact keys when the tuple fits 64 bits,
    /// hashed+verified otherwise (the paper's FAST-DEDUP).
    Fast,
    /// Global chaining table with always-hashed keys and row verification
    /// (the pre-FAST-DEDUP behaviour toggled in the Figure 2 ablation).
    Generic,
    /// Sort + dedup baseline.
    Sort,
}

/// Outcome of a deduplication, including instrumentation the memory figures
/// report.
pub struct DedupOutput {
    /// Distinct rows, column-major.
    pub cols: Vec<Vec<Value>>,
    /// Rows in the input.
    pub input_rows: usize,
    /// Bytes the hash table occupied (0 for the sort path).
    pub table_bytes: usize,
    /// Hash tables built from scratch by this call (0 for the sort path) —
    /// the rebuild-vs-incremental instrumentation.
    pub tables_built: usize,
}

/// Deduplicate `view`, pre-sizing the table from `distinct_hint` (the
/// optimizer's conservative estimate; see `TableStats::distinct_estimate`).
pub fn deduplicate(
    ctx: &ExecCtx,
    view: RelView<'_>,
    imp: DedupImpl,
    distinct_hint: usize,
) -> DedupOutput {
    let n = view.len();
    let arity = view.arity();
    if n == 0 {
        return DedupOutput {
            cols: vec![Vec::new(); arity],
            input_rows: 0,
            table_bytes: 0,
            tables_built: 0,
        };
    }
    match imp {
        DedupImpl::Sort => {
            let mut rows = view.to_rows();
            rows.sort_unstable();
            rows.dedup();
            let mut cols = vec![Vec::with_capacity(rows.len()); arity];
            for row in &rows {
                for (c, &v) in cols.iter_mut().zip(row) {
                    c.push(v);
                }
            }
            DedupOutput {
                cols,
                input_rows: n,
                table_bytes: 0,
                tables_built: 0,
            }
        }
        DedupImpl::Fast | DedupImpl::Generic => {
            let all_cols: Vec<usize> = (0..arity).collect();
            let mode = if imp == DedupImpl::Fast {
                KeyMode::for_view(view, &all_cols)
            } else {
                KeyMode::Hashed
            };
            // Pre-allocate "as large as possible" within reason: 2× the
            // conservative distinct estimate, floored by the input size so
            // racing chains stay short.
            let buckets = (distinct_hint.max(n / 2)).saturating_mul(2);
            let table = ChainTable::with_capacity(n, buckets);
            let exact = mode.exact();
            let rows_eq = |a: u32, b: u32| -> bool {
                (0..arity).all(|c| view.get(a as usize, c) == view.get(b as usize, c))
            };
            let cols = parallel_produce(&ctx.pool, n, ctx.grain, arity, |range, buf| {
                let mut scratch = Vec::with_capacity(arity);
                for r in range {
                    let key = mode.key_of(view, r, &all_cols, &mut scratch);
                    let won = if exact {
                        table.insert_unique(r as u32, key, |_, _| true)
                    } else {
                        table.insert_unique(r as u32, key, rows_eq)
                    };
                    if won {
                        for c in 0..arity {
                            buf.push_at(c, view.get(r, c));
                        }
                    }
                }
            });
            // Generic mode also pays for stored hash+pointer pairs; the
            // paper's CCK saves exactly that. Model it in the byte count.
            let extra = if imp == DedupImpl::Generic { n * 16 } else { 0 };
            DedupOutput {
                cols,
                input_rows: n,
                table_bytes: table.heap_bytes() + extra,
                tables_built: 1,
            }
        }
    }
}

/// A persistent dedup index kept across iterations — the "incremental"
/// design alternative benchmarked in `appx_incremental` (not part of the
/// paper's engine, which recomputes set difference per iteration).
pub struct IncrementalSet {
    seen: recstep_common::hash::FxHashSet<Box<[Value]>>,
}

impl IncrementalSet {
    /// Empty set.
    pub fn new() -> Self {
        IncrementalSet {
            seen: Default::default(),
        }
    }

    /// Number of distinct rows absorbed so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no row has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Absorb all rows of `view`; return the rows never seen before
    /// (column-major). Sequential by design — the point of the ablation is
    /// comparing this simple design against the parallel per-iteration
    /// dedup + set-difference pipeline.
    pub fn absorb(&mut self, view: RelView<'_>) -> Vec<Vec<Value>> {
        let arity = view.arity();
        let mut cols = vec![Vec::new(); arity];
        let mut row = Vec::with_capacity(arity);
        for r in 0..view.len() {
            view.copy_row(r, &mut row);
            if !self.seen.contains(row.as_slice()) {
                self.seen.insert(row.clone().into_boxed_slice());
                for (c, &v) in cols.iter_mut().zip(&row) {
                    c.push(v);
                }
            }
        }
        cols
    }
}

impl Default for IncrementalSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashSet;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn rel_with_dups() -> Relation {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        for i in 0..500i64 {
            r.push_row(&[i % 50, (i * 3) % 20]);
        }
        r
    }

    fn as_set(cols: &[Vec<Value>]) -> HashSet<Vec<Value>> {
        (0..cols[0].len())
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect()
    }

    #[test]
    fn all_impls_agree_with_hashset_oracle() {
        let rel = rel_with_dups();
        let oracle: HashSet<Vec<Value>> = rel.to_rows().into_iter().collect();
        let ctx = ctx();
        for imp in [DedupImpl::Fast, DedupImpl::Generic, DedupImpl::Sort] {
            let out = deduplicate(&ctx, rel.view(), imp, rel.len());
            assert_eq!(as_set(&out.cols), oracle, "{imp:?}");
            assert_eq!(
                out.cols[0].len(),
                oracle.len(),
                "{imp:?} emitted duplicates"
            );
            assert_eq!(out.input_rows, rel.len());
        }
    }

    #[test]
    fn fast_handles_wide_values_via_hash_fallback() {
        let mut r = Relation::new(Schema::with_arity("w", 2));
        r.push_row(&[Value::MIN, Value::MAX]);
        r.push_row(&[Value::MIN, Value::MAX]);
        r.push_row(&[Value::MAX, Value::MIN]);
        let out = deduplicate(&ctx(), r.view(), DedupImpl::Fast, 4);
        assert_eq!(out.cols[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        let r = Relation::new(Schema::with_arity("e", 3));
        let out = deduplicate(&ctx(), r.view(), DedupImpl::Fast, 0);
        assert_eq!(out.cols.len(), 3);
        assert!(out.cols[0].is_empty());
        assert_eq!(out.table_bytes, 0);
    }

    #[test]
    fn generic_reports_extra_table_bytes() {
        let rel = rel_with_dups();
        let ctx = ctx();
        let fast = deduplicate(&ctx, rel.view(), DedupImpl::Fast, rel.len());
        let gen = deduplicate(&ctx, rel.view(), DedupImpl::Generic, rel.len());
        assert!(gen.table_bytes > fast.table_bytes);
    }

    #[test]
    fn incremental_set_absorbs_only_new_rows() {
        let mut inc = IncrementalSet::new();
        let a = Relation::from_rows(Schema::with_arity("a", 1), &[vec![1], vec![2], vec![1]]);
        let fresh = inc.absorb(a.view());
        assert_eq!(fresh[0].len(), 2);
        let b = Relation::from_rows(Schema::with_arity("b", 1), &[vec![2], vec![3]]);
        let fresh = inc.absorb(b.view());
        assert_eq!(fresh[0], vec![3]);
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn large_parallel_dedup_is_exact() {
        let mut r = Relation::new(Schema::with_arity("big", 2));
        for i in 0..50_000i64 {
            r.push_row(&[i % 1000, i % 997]);
        }
        let oracle: HashSet<Vec<Value>> = r.to_rows().into_iter().collect();
        let out = deduplicate(&ctx(), r.view(), DedupImpl::Fast, r.len());
        assert_eq!(out.cols[0].len(), oracle.len());
        assert_eq!(as_set(&out.cols), oracle);
    }
}
