//! Worst-case optimal multiway join (generic join) over sorted compact-key
//! tries.
//!
//! Binary join chains lose an asymptotic factor on cyclic rule bodies: the
//! triangle query `t(x,y,z) :- arc(x,y), arc(y,z), arc(x,z)` materializes
//! every 2-path before the closing edge filters them, `Θ(n·d²)` work for an
//! output the AGM bound caps at `O(m^{3/2})`. The generic join evaluates
//! one *variable* at a time instead of one *atom* at a time: for each
//! variable in a global elimination order, intersect the candidate values
//! of every atom containing it, bind, and recurse. Intersections are
//! seek-driven — enumerate the smallest participant's distinct values and
//! binary-search the others — so the work per level is bounded by the
//! smallest participating relation, which is what makes the algorithm
//! worst-case optimal.
//!
//! The access structure is a [`ScanTrie`] per body atom: the scan's row
//! ids sorted by its columns in global variable order. Sorting and seeking
//! ride the CCK machinery of [`crate::key`]: when the scan's key columns
//! fit a packed [`KeyLayout`], each row packs to one `u64` laid out so the
//! *first* sort column occupies the *highest* bits — plain `u64` order is
//! then exactly lexicographic tuple order, the sort is a flat integer
//! sort, and a level-`d` seek extracts one bit-field per comparison
//! without touching the columns. Values escaping the packed layout fall
//! back to comparator order over the raw columns (the ordered analogue of
//! the hashed fallback that [`crate::index::PersistentIndex`] uses for
//! escaping keys).
//!
//! The operator is sink-fused like every other producer in this crate
//! ([`SinkMode`]): each satisfying binding is offered at the leaf to the
//! [`DeltaSink`](crate::sink::DeltaSink) / `AggSink` of the fused
//! pipeline, so WCOJ-produced rows dedup and subtract `R` at the probe
//! site and never materialize an `Rt`. One row is emitted per *distinct
//! variable binding* — a duplicate-free refinement of the UNION-ALL
//! contract that the downstream dedup (fused or materializing) makes
//! indistinguishable from the binary plan's output.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use recstep_common::Value;
use recstep_storage::RelView;

use crate::expr::{eval_all, Expr, Predicate};
use crate::key::{bounds_of, KeyLayout};
use crate::sink::SinkMode;
use crate::util::{parallel_produce, CapGate, ColBuf};
use crate::ExecCtx;

/// Sort-order backing of a [`ScanTrie`].
enum TrieOrd {
    /// Rows packed to `u64` compact keys in lexicographic layout (first
    /// sort column in the highest bits); `keys` is parallel to the sorted
    /// row ids, and per-depth `(shift, mask, min)` extract one column.
    Packed {
        keys: Vec<u64>,
        shifts: Vec<u32>,
        masks: Vec<u64>,
        mins: Vec<Value>,
    },
    /// Values escape 64 packed bits: comparisons read the raw columns
    /// through the view.
    Raw,
}

/// One body atom's rows sorted by its columns in global variable order —
/// the leapfrog-style access structure of the generic join.
pub struct ScanTrie<'a> {
    view: RelView<'a>,
    cols: Vec<usize>,
    rows: Vec<u32>,
    ord: TrieOrd,
}

impl<'a> ScanTrie<'a> {
    /// Sort `view`'s rows by `cols` (scan-local column indices, ordered by
    /// the global variable order). Packs to compact keys when the columns'
    /// bounds fit 64 bits, otherwise sorts by raw value comparison.
    pub fn build(view: RelView<'a>, cols: &[usize]) -> ScanTrie<'a> {
        let n = view.len();
        let cols = cols.to_vec();
        // Reverse the columns for packing so the first sort column lands at
        // the highest shift: u64 order of the packed keys is then the
        // lexicographic order of the column tuple.
        let rev_cols: Vec<usize> = cols.iter().rev().copied().collect();
        let layout = bounds_of(view, &rev_cols).and_then(|b| KeyLayout::from_bounds(&b));
        match layout {
            Some(layout) => {
                let mut pairs: Vec<(u64, u32)> = (0..n)
                    .map(|r| (layout.pack_row(view, r, &rev_cols), r as u32))
                    .collect();
                pairs.sort_unstable();
                let d = cols.len();
                let mut shifts = vec![0u32; d];
                let mut masks = vec![0u64; d];
                let mut mins = vec![0 as Value; d];
                for (k, slot) in layout.slots().iter().enumerate() {
                    // Slot k packs rev_cols[k] = sort column d-1-k.
                    let depth = d - 1 - k;
                    shifts[depth] = slot.shift;
                    masks[depth] = if slot.bits >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << slot.bits) - 1
                    };
                    mins[depth] = slot.min;
                }
                let (keys, rows) = pairs.into_iter().unzip();
                ScanTrie {
                    view,
                    cols,
                    rows,
                    ord: TrieOrd::Packed {
                        keys,
                        shifts,
                        masks,
                        mins,
                    },
                }
            }
            None => {
                let mut rows: Vec<u32> = (0..n as u32).collect();
                rows.sort_unstable_by(|&a, &b| {
                    cols.iter()
                        .map(|&c| view.get(a as usize, c).cmp(&view.get(b as usize, c)))
                        .find(|o| o.is_ne())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                ScanTrie {
                    view,
                    cols,
                    rows,
                    ord: TrieOrd::Raw,
                }
            }
        }
    }

    /// Number of (sorted) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the trie holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Value of sort column `depth` at sorted position `pos`.
    #[inline]
    fn value_at(&self, pos: usize, depth: usize) -> Value {
        match &self.ord {
            TrieOrd::Packed {
                keys,
                shifts,
                masks,
                mins,
            } => {
                let off = (keys[pos] >> shifts[depth]) & masks[depth];
                ((mins[depth] as i128) + off as i128) as Value
            }
            TrieOrd::Raw => self.view.get(self.rows[pos] as usize, self.cols[depth]),
        }
    }

    /// Seek: the sub-range of `range` whose sort column `depth` equals `v`.
    /// `range` must hold the first `depth` sort columns fixed (the
    /// recursion's invariant), so comparing column `depth` alone is a
    /// total order within it.
    #[inline]
    fn equal_range(&self, range: Range<usize>, depth: usize, v: Value) -> Range<usize> {
        let lo = lower_bound(range.clone(), |i| self.value_at(i, depth) < v);
        let hi = lower_bound(lo..range.end, |i| self.value_at(i, depth) <= v);
        lo..hi
    }
}

/// First index in `range` where `below` turns false (`below` must be
/// monotonically true-then-false over the range).
#[inline]
fn lower_bound(range: Range<usize>, below: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (range.start, range.end);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if below(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Positional spec of one generic-join evaluation (the execution half of
/// the planner's `WcojPlan`; see `recstep_datalog::plan`).
pub struct WcojSpec<'a> {
    /// Number of join variables (= trie levels), in elimination order.
    pub levels: usize,
    /// Per scan: its column indices ordered by the global variable order.
    pub scan_cols: &'a [Vec<usize>],
    /// Per level: `(scan, depth)` participants — the scans binding this
    /// level's variable, with the variable's depth in that scan's sort
    /// order.
    pub level_scans: &'a [Vec<(usize, usize)>],
    /// Per level: flattened-row positions the bound value is written to
    /// (every occurrence of the variable across the body).
    pub level_slots: &'a [Vec<usize>],
    /// Width of the flattened body row the projection reads.
    pub width: usize,
    /// Projection to the head layout.
    pub output: &'a [Expr],
    /// Residual predicates over the flattened row.
    pub residual: &'a [Predicate],
}

/// Per-worker state of one generic-join enumeration.
struct Walk<'a, 'b> {
    tries: &'a [ScanTrie<'a>],
    spec: &'a WcojSpec<'a>,
    sink: &'a SinkMode<'a>,
    gate: &'a CapGate,
    buf: &'b mut ColBuf,
    /// Current sorted sub-range per scan (narrowed as levels bind).
    ranges: Vec<Range<usize>>,
    /// Saved ranges for restore on backtrack (one segment per live level).
    saved: Vec<(usize, Range<usize>)>,
    /// The flattened body row being built, one variable at a time.
    row: Vec<Value>,
    out_row: Vec<Value>,
    snapshot: usize,
    local: usize,
    considered: usize,
    emitted: usize,
}

impl Walk<'_, '_> {
    /// Enumerate all bindings of `level..`. Returns `false` when the row
    /// cap was reached and enumeration must stop.
    fn descend(&mut self, level: usize) -> bool {
        if level == self.spec.levels {
            return self.leaf();
        }
        let parts = &self.spec.level_scans[level];
        let (lead, lead_depth) = parts
            .iter()
            .copied()
            .min_by_key(|&(s, _)| self.ranges[s].len())
            .expect("every level has a participating scan");
        let end = self.ranges[lead].end;
        let mut pos = self.ranges[lead].start;
        while pos < end {
            let v = self.tries[lead].value_at(pos, lead_depth);
            let run = self.tries[lead].equal_range(pos..end, lead_depth, v);
            if !self.try_value(level, lead, run.clone(), v) {
                return false;
            }
            pos = run.end;
        }
        true
    }

    /// Intersect: seek every participant of `level` to `v` (the lead is
    /// already narrowed to `lead_run`); on success bind and recurse.
    /// Restores all narrowed ranges before returning.
    fn try_value(&mut self, level: usize, lead: usize, lead_run: Range<usize>, v: Value) -> bool {
        let base = self.saved.len();
        let mut ok = true;
        for &(s, d) in &self.spec.level_scans[level] {
            let narrowed = if s == lead {
                lead_run.clone()
            } else {
                self.tries[s].equal_range(self.ranges[s].clone(), d, v)
            };
            if narrowed.is_empty() {
                ok = false;
                break;
            }
            self.saved.push((s, self.ranges[s].clone()));
            self.ranges[s] = narrowed;
        }
        let keep_going = if ok {
            for &slot in &self.spec.level_slots[level] {
                self.row[slot] = v;
            }
            self.descend(level + 1)
        } else {
            true
        };
        while self.saved.len() > base {
            let (s, r) = self.saved.pop().expect("pushed above");
            self.ranges[s] = r;
        }
        keep_going
    }

    /// A full binding: evaluate the residual and emit through the sink
    /// (the same probe-site fusion as `join.rs`). Returns `false` on cap.
    #[inline]
    fn leaf(&mut self) -> bool {
        if self.gate.reached(&mut self.snapshot, &mut self.local) {
            return false;
        }
        if !eval_all(self.spec.residual, &self.row) {
            return true;
        }
        self.emitted += 1;
        match self.sink {
            SinkMode::Materialize => {
                for (c, e) in self.spec.output.iter().enumerate() {
                    self.buf.push_at(c, e.eval(&self.row));
                }
                self.local += 1;
            }
            SinkMode::Delta(s) => {
                self.out_row.clear();
                self.out_row
                    .extend(self.spec.output.iter().map(|e| e.eval(&self.row)));
                self.considered += 1;
                if s.offer(&self.out_row) {
                    self.buf.push_row(&self.out_row);
                    self.local += 1;
                }
            }
            SinkMode::Agg(s) => {
                self.out_row.clear();
                self.out_row
                    .extend(self.spec.output.iter().map(|e| e.eval(&self.row)));
                self.considered += 1;
                s.offer(&self.out_row);
            }
        }
        true
    }
}

/// Evaluate one cyclic subquery with the generic worst-case optimal join,
/// streaming each satisfying binding through `sink`. Returns the
/// materialized columns (fresh rows under a `Delta` sink, everything under
/// `Materialize`, nothing under `Agg`) and the number of bindings emitted
/// into the sink (pre-dedup).
///
/// Parallelism follows the crate's morsel idiom: workers split the
/// level-0 lead trie's sorted rows, each owning the distinct-value runs
/// that *start* inside its range, and produce into worker-local
/// [`ColBuf`]s. `ctx.row_cap` bounds total materialization through a
/// shared [`CapGate`], exactly as the binary joins do.
pub fn wcoj_sink(
    ctx: &ExecCtx,
    views: &[RelView<'_>],
    spec: &WcojSpec<'_>,
    sink: &SinkMode<'_>,
) -> (Vec<Vec<Value>>, usize) {
    let out_arity = spec.output.len();
    debug_assert_eq!(views.len(), spec.scan_cols.len());
    if spec.levels == 0 || views.iter().any(|v| v.is_empty()) {
        return (vec![Vec::new(); out_arity], 0);
    }
    let tries: Vec<ScanTrie<'_>> = views
        .iter()
        .zip(spec.scan_cols)
        .map(|(v, cols)| ScanTrie::build(*v, cols))
        .collect();
    // Level-0 participants seek at depth 0 by construction (a scan whose
    // first sort column were a later level would first participate there).
    let (lead0, _) = spec.level_scans[0]
        .iter()
        .copied()
        .min_by_key(|&(s, _)| tries[s].len())
        .expect("level 0 has a participating scan");
    let n = tries[lead0].len();
    let emitted = AtomicUsize::new(0);
    let gate = CapGate::new(ctx.row_cap);
    let cols = parallel_produce(&ctx.pool, n, ctx.grain, out_arity, |range, buf| {
        let Some(snapshot) = gate.start() else { return };
        let mut walk = Walk {
            tries: &tries,
            spec,
            sink,
            gate: &gate,
            buf,
            ranges: tries.iter().map(|t| 0..t.len()).collect(),
            saved: Vec::with_capacity(spec.levels * 2),
            row: vec![0; spec.width],
            out_row: Vec::with_capacity(out_arity),
            snapshot,
            local: 0,
            considered: 0,
            emitted: 0,
        };
        // Own the level-0 value runs that start inside `range`: skip past
        // a run another worker started, stop at the first run starting at
        // or beyond `range.end`, but follow an owned run to its real end.
        let mut pos = range.start;
        if pos > 0 && walk.tries[lead0].value_at(pos, 0) == walk.tries[lead0].value_at(pos - 1, 0) {
            let v = walk.tries[lead0].value_at(pos, 0);
            pos = walk.tries[lead0].equal_range(pos..n, 0, v).end;
        }
        while pos < range.end {
            let v = walk.tries[lead0].value_at(pos, 0);
            let run = walk.tries[lead0].equal_range(pos..n, 0, v);
            if !walk.try_value(0, lead0, run.clone(), v) {
                break;
            }
            pos = run.end;
        }
        match sink {
            SinkMode::Delta(s) => s.note_considered(walk.considered),
            SinkMode::Agg(s) => s.note_considered(walk.considered),
            SinkMode::Materialize => {}
        }
        emitted.fetch_add(walk.emitted, Ordering::Relaxed);
        gate.commit(walk.local);
    });
    (cols, emitted.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::PersistentIndex;
    use crate::sink::DeltaSink;
    use recstep_storage::{Relation, Schema};

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    type TriangleParts = ([Vec<usize>; 3], [Vec<(usize, usize)>; 3], [Vec<usize>; 3]);

    /// Triangle layout over three binary scans of one edge relation:
    /// `t(x,y,z) :- e(x,y), e(y,z), e(x,z)` with variable order x, y, z.
    fn triangle_parts() -> TriangleParts {
        // Variable order x(0), y(1), z(2); scans e(x,y), e(y,z), e(x,z).
        let scan_cols = [vec![0, 1], vec![0, 1], vec![0, 1]];
        let level_scans = [
            vec![(0, 0), (2, 0)],
            vec![(0, 1), (1, 0)],
            vec![(1, 1), (2, 1)],
        ];
        let level_slots = [vec![0, 4], vec![1, 2], vec![3, 5]];
        (scan_cols, level_scans, level_slots)
    }

    fn triangles_of(edges: &[(Value, Value)], sink_fused: bool) -> Vec<Vec<Value>> {
        let ctx = ctx();
        let rows: Vec<Vec<Value>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
        let rel = Relation::from_rows(Schema::with_arity("e", 2), &rows);
        let output = vec![Expr::Col(0), Expr::Col(1), Expr::Col(3)];
        let (scan_cols, level_scans, level_slots) = triangle_parts();
        let spec = WcojSpec {
            levels: 3,
            scan_cols: &scan_cols,
            level_scans: &level_scans,
            level_slots: &level_slots,
            width: 6,
            output: &output,
            residual: &[],
        };
        let views = [rel.view(), rel.view(), rel.view()];
        let cols = if sink_fused {
            let base = Relation::new(Schema::with_arity("t", 3));
            let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1, 2]);
            let sink = DeltaSink::new(&idx, base.view(), 16);
            let (cols, emitted) = wcoj_sink(&ctx, &views, &spec, &SinkMode::Delta(&sink));
            assert_eq!(
                emitted,
                cols.first().map_or(0, Vec::len),
                "distinct bindings into an empty-base sink are all fresh"
            );
            cols
        } else {
            wcoj_sink(&ctx, &views, &spec, &SinkMode::Materialize).0
        };
        let n = cols.first().map_or(0, Vec::len);
        let mut out: Vec<Vec<Value>> = (0..n)
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect();
        out.sort();
        out
    }

    fn brute_triangles(edges: &[(Value, Value)]) -> Vec<Vec<Value>> {
        let set: std::collections::HashSet<(Value, Value)> = edges.iter().copied().collect();
        let mut out = Vec::new();
        for &(x, y) in &set {
            for &(y2, z) in &set {
                if y2 == y && set.contains(&(x, z)) {
                    out.push(vec![x, y, z]);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn triangle_enumeration_matches_brute_force() {
        let edges = [
            (1, 2),
            (2, 3),
            (1, 3),
            (3, 4),
            (2, 4),
            (1, 4),
            (4, 1),
            (5, 5),
        ];
        let expect = brute_triangles(&edges);
        assert!(!expect.is_empty());
        assert_eq!(triangles_of(&edges, false), expect);
        assert_eq!(triangles_of(&edges, true), expect);
    }

    #[test]
    fn raw_fallback_agrees_with_packed_order() {
        // Values spanning the full i64 range escape any packed layout.
        let edges = [
            (Value::MIN, 0),
            (0, Value::MAX),
            (Value::MIN, Value::MAX),
            (1, 2),
            (2, 3),
            (1, 3),
        ];
        let expect = brute_triangles(&edges);
        assert_eq!(triangles_of(&edges, false), expect);
    }

    #[test]
    fn duplicate_input_rows_emit_one_binding() {
        let edges = [(1, 2), (1, 2), (2, 3), (2, 3), (1, 3)];
        assert_eq!(triangles_of(&edges, false), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_scan_yields_nothing() {
        assert!(triangles_of(&[], false).is_empty());
        assert!(triangles_of(&[(1, 2), (2, 3)], true).is_empty());
    }

    #[test]
    fn trie_orders_and_seeks_consistently() {
        let rel = Relation::from_rows(
            Schema::with_arity("e", 2),
            &[vec![3, 1], vec![1, 2], vec![1, 1], vec![2, 9], vec![1, 2]],
        );
        let t = ScanTrie::build(rel.view(), &[0, 1]);
        assert!(matches!(t.ord, TrieOrd::Packed { .. }));
        let sorted: Vec<(Value, Value)> = (0..t.len())
            .map(|p| (t.value_at(p, 0), t.value_at(p, 1)))
            .collect();
        let mut expect = vec![(1, 1), (1, 2), (1, 2), (2, 9), (3, 1)];
        expect.sort();
        assert_eq!(sorted, expect);
        let ones = t.equal_range(0..t.len(), 0, 1);
        assert_eq!(ones, 0..3);
        assert_eq!(t.equal_range(ones.clone(), 1, 2), 1..3);
        assert!(t.equal_range(ones, 1, 7).is_empty());
        assert!(t.equal_range(0..t.len(), 0, 0).is_empty());
    }

    #[test]
    fn row_cap_truncates_materialization() {
        let mut edges = Vec::new();
        // A clique of 12 nodes: 12·11·10 = 1320 directed triangles.
        for a in 0..12 {
            for b in 0..12 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let ctx2 = ExecCtx {
            row_cap: 10,
            ..ctx()
        };
        let rows: Vec<Vec<Value>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
        let rel = Relation::from_rows(Schema::with_arity("e", 2), &rows);
        let output = vec![Expr::Col(0), Expr::Col(1), Expr::Col(3)];
        let (scan_cols, level_scans, level_slots) = triangle_parts();
        let spec = WcojSpec {
            levels: 3,
            scan_cols: &scan_cols,
            level_scans: &level_scans,
            level_slots: &level_slots,
            width: 6,
            output: &output,
            residual: &[],
        };
        let views = [rel.view(), rel.view(), rel.view()];
        let (cols, _) = wcoj_sink(&ctx2, &views, &spec, &SinkMode::Materialize);
        let n = cols.first().map_or(0, Vec::len);
        assert!(n >= 10, "workers emit up to the cap");
        assert!(n < 1320, "the gate stopped enumeration early");
    }

    #[test]
    fn residual_filters_bindings() {
        let edges = [(1, 2), (2, 3), (1, 3), (2, 1), (3, 1), (3, 2)];
        let ctx = ctx();
        let rows: Vec<Vec<Value>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
        let rel = Relation::from_rows(Schema::with_arity("e", 2), &rows);
        let output = vec![Expr::Col(0), Expr::Col(1), Expr::Col(3)];
        let residual = vec![Predicate {
            lhs: Expr::Col(0),
            op: crate::expr::CmpOp::Lt,
            rhs: Expr::Col(1),
        }];
        let (scan_cols, level_scans, level_slots) = triangle_parts();
        let spec = WcojSpec {
            levels: 3,
            scan_cols: &scan_cols,
            level_scans: &level_scans,
            level_slots: &level_slots,
            width: 6,
            output: &output,
            residual: &residual,
        };
        let views = [rel.view(), rel.view(), rel.view()];
        let (cols, emitted) = wcoj_sink(&ctx, &views, &spec, &SinkMode::Materialize);
        let n = cols.first().map_or(0, Vec::len);
        assert_eq!(n, emitted);
        for (x, y) in cols[0].iter().zip(&cols[1]) {
            assert!(x < y);
        }
        assert!(n > 0);
    }
}
