//! Compact concatenated keys (CCK).
//!
//! The paper's fast-dedup table (Figure 5) represents a whole tuple as one
//! fixed-size *compact concatenated key*: "The compact CK itself contains
//! all information of the original tuple, eliminating the need for explicit
//! ⟨key, value⟩ pair representation. Additionally, the key itself is used as
//! the hash value." We generalize the two-int example to any column set whose
//! min/max spans (from table statistics) fit 64 bits together; wider tuples
//! fall back to hashing with exact row comparison on collisions.

use recstep_common::hash::{hash_row, mix64};
use recstep_common::Value;
use recstep_storage::RelView;

/// Per-column slot of a packed key layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySlot {
    /// Values are stored as offsets from this minimum.
    pub min: Value,
    /// Bits reserved for the offset.
    pub bits: u32,
    /// Left shift of this column's slot within the packed word.
    pub shift: u32,
}

/// A packed layout mapping a tuple of columns onto one `u64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyLayout {
    slots: Vec<KeySlot>,
    total_bits: u32,
}

impl KeyLayout {
    /// Derive a layout from per-column `(min, max)` bounds. Returns `None`
    /// when the combined width exceeds 64 bits.
    pub fn from_bounds(bounds: &[(Value, Value)]) -> Option<KeyLayout> {
        let mut slots = Vec::with_capacity(bounds.len());
        let mut shift = 0u32;
        for &(min, max) in bounds {
            debug_assert!(min <= max);
            let span = (max as i128 - min as i128) as u128;
            let bits = if span == 0 {
                1
            } else {
                128 - span.leading_zeros()
            };
            if shift + bits > 64 {
                return None;
            }
            slots.push(KeySlot { min, bits, shift });
            shift += bits;
        }
        Some(KeyLayout {
            slots,
            total_bits: shift,
        })
    }

    /// Derive a layout over the given columns of a view. Bounds come from
    /// the view's incrementally maintained cache when present (stored
    /// relations); only raw operator intermediates pay a column scan.
    /// Returns `None` for empty views or over-wide keys.
    pub fn from_view(view: RelView<'_>, cols: &[usize]) -> Option<KeyLayout> {
        if view.is_empty() {
            return None;
        }
        let bounds: Vec<(Value, Value)> = cols.iter().map(|&c| col_bounds(view, c)).collect();
        KeyLayout::from_bounds(&bounds)
    }

    /// Derive a single layout covering the same key columns of *two* views
    /// (required whenever keys from both sides must compare equal, e.g. set
    /// difference and joins). `None` if either view is empty on its own is
    /// avoided by taking whichever bounds exist.
    pub fn from_two_views(
        a: RelView<'_>,
        a_cols: &[usize],
        b: RelView<'_>,
        b_cols: &[usize],
    ) -> Option<KeyLayout> {
        assert_eq!(a_cols.len(), b_cols.len());
        if a.is_empty() && b.is_empty() {
            return None;
        }
        let bounds: Vec<(Value, Value)> = a_cols
            .iter()
            .zip(b_cols)
            .map(|(&ca, &cb)| {
                let mut min = Value::MAX;
                let mut max = Value::MIN;
                if !a.is_empty() {
                    let (lo, hi) = col_bounds(a, ca);
                    min = min.min(lo);
                    max = max.max(hi);
                }
                if !b.is_empty() {
                    let (lo, hi) = col_bounds(b, cb);
                    min = min.min(lo);
                    max = max.max(hi);
                }
                (min, max)
            })
            .collect();
        KeyLayout::from_bounds(&bounds)
    }

    /// True when every value within `bounds` is representable by this
    /// layout (column-wise containment). The check behind compact-key
    /// invalidation: values escaping a persistent index's layout force a
    /// one-time fall back to hashed keys.
    pub fn covers(&self, bounds: &[(Value, Value)]) -> bool {
        debug_assert_eq!(bounds.len(), self.slots.len());
        self.slots.iter().zip(bounds).all(|(slot, &(lo, hi))| {
            if lo < slot.min {
                return false;
            }
            let span = (hi as i128 - slot.min as i128) as u128;
            slot.bits >= 64 || span < (1u128 << slot.bits)
        })
    }

    /// Number of key columns.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// The per-column slots, in the order the bounds were given. Seek-style
    /// consumers (the worst-case optimal join's sorted tries) use the
    /// shift/bits of each slot to extract one column's field out of a
    /// packed key without unpacking the whole tuple.
    pub fn slots(&self) -> &[KeySlot] {
        &self.slots
    }

    /// Total bits used by the packed representation.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Pack the given values. Values must lie within the layout's bounds.
    #[inline]
    pub fn pack(&self, vals: &[Value]) -> u64 {
        debug_assert_eq!(vals.len(), self.slots.len());
        let mut key = 0u64;
        for (slot, &v) in self.slots.iter().zip(vals) {
            let off = (v as i128 - slot.min as i128) as u128 as u64;
            debug_assert!(slot.bits == 64 || off < (1u64 << slot.bits));
            key |= off << slot.shift;
        }
        key
    }

    /// Pack `vals` only if every value is representable: `None` when a
    /// value escapes its slot. This is the streaming form of compact-key
    /// invalidation — the fused pipeline checks each produced row as it
    /// streams past instead of scanning a materialized batch's bounds.
    #[inline]
    pub fn try_pack(&self, vals: &[Value]) -> Option<u64> {
        debug_assert_eq!(vals.len(), self.slots.len());
        let mut key = 0u64;
        for (slot, &v) in self.slots.iter().zip(vals) {
            if v < slot.min {
                return None;
            }
            let off = (v as i128 - slot.min as i128) as u128;
            if slot.bits < 64 && off >= (1u128 << slot.bits) {
                return None;
            }
            key |= (off as u64) << slot.shift;
        }
        Some(key)
    }

    /// Pack key columns of row `r` in `view`.
    #[inline]
    pub fn pack_row(&self, view: RelView<'_>, r: usize, cols: &[usize]) -> u64 {
        debug_assert_eq!(cols.len(), self.slots.len());
        let mut key = 0u64;
        for (slot, &c) in self.slots.iter().zip(cols) {
            let v = view.get(r, c);
            let off = (v as i128 - slot.min as i128) as u128 as u64;
            key |= off << slot.shift;
        }
        key
    }

    /// Unpack a key back into values (inverse of [`KeyLayout::pack`]).
    pub fn unpack(&self, key: u64, out: &mut Vec<Value>) {
        out.clear();
        for slot in &self.slots {
            let mask = if slot.bits >= 64 {
                u64::MAX
            } else {
                (1u64 << slot.bits) - 1
            };
            let off = (key >> slot.shift) & mask;
            out.push(((slot.min as i128) + off as i128) as Value);
        }
    }
}

/// How tuples of a given view are turned into 64-bit table keys.
#[derive(Clone, Debug)]
pub enum KeyMode {
    /// Exact packed key — equality of keys ⇔ equality of tuples, and the
    /// key (after [`mix64`]) is its own hash.
    Packed(KeyLayout),
    /// Hashed key — collisions possible; equality must be verified against
    /// the underlying rows.
    Hashed,
}

impl KeyMode {
    /// Choose the best mode covering the key columns of two views.
    pub fn for_views(
        a: RelView<'_>,
        a_cols: &[usize],
        b: RelView<'_>,
        b_cols: &[usize],
    ) -> KeyMode {
        match KeyLayout::from_two_views(a, a_cols, b, b_cols) {
            Some(l) => KeyMode::Packed(l),
            None => KeyMode::Hashed,
        }
    }

    /// Choose the best mode for one view.
    pub fn for_view(view: RelView<'_>, cols: &[usize]) -> KeyMode {
        match KeyLayout::from_view(view, cols) {
            Some(l) => KeyMode::Packed(l),
            None => KeyMode::Hashed,
        }
    }

    /// True when key equality implies tuple equality.
    pub fn exact(&self) -> bool {
        matches!(self, KeyMode::Packed(_))
    }

    /// Key of an owned row (all values are key columns, in order), or
    /// `None` when a packed layout cannot represent it. Hashed mode never
    /// fails. Produces the same keys as [`KeyMode::key_of`] over identity
    /// key columns, so streamed rows and stored rows compare equal.
    #[inline]
    pub fn try_key_of_row(&self, row: &[Value]) -> Option<u64> {
        match self {
            KeyMode::Packed(layout) => layout.try_pack(row),
            KeyMode::Hashed => Some(hash_row(row)),
        }
    }

    /// Key of row `r`'s key columns in `view`.
    #[inline]
    pub fn key_of(
        &self,
        view: RelView<'_>,
        r: usize,
        cols: &[usize],
        scratch: &mut Vec<Value>,
    ) -> u64 {
        match self {
            KeyMode::Packed(layout) => layout.pack_row(view, r, cols),
            KeyMode::Hashed => {
                scratch.clear();
                for &c in cols {
                    scratch.push(view.get(r, c));
                }
                hash_row(scratch)
            }
        }
    }
}

/// `(min, max)` of column `c` over the viewed rows: the cached covering
/// bounds when the backing relation maintains them, otherwise one scan.
pub fn col_bounds(view: RelView<'_>, c: usize) -> (Value, Value) {
    if let Some(b) = view.cached_bounds(c) {
        return b;
    }
    let data = view.col(c);
    let mut min = data[0];
    let mut max = data[0];
    for &v in data {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

/// Per-column `(min, max)` bounds of the given key columns, or `None` for
/// an empty view.
pub fn bounds_of(view: RelView<'_>, cols: &[usize]) -> Option<Vec<(Value, Value)>> {
    if view.is_empty() {
        return None;
    }
    Some(cols.iter().map(|&c| col_bounds(view, c)).collect())
}

/// Bucket index of a key in a power-of-two table.
#[inline]
pub fn bucket_of(key: u64, mask: usize) -> usize {
    (mix64(key) as usize) & mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};

    #[test]
    fn pack_unpack_roundtrip() {
        let layout = KeyLayout::from_bounds(&[(0, 255), (-10, 10), (1000, 1000)]).unwrap();
        assert_eq!(layout.width(), 3);
        let mut out = Vec::new();
        for vals in [[0i64, -10, 1000], [255, 10, 1000], [17, 0, 1000]] {
            let k = layout.pack(&vals);
            layout.unpack(k, &mut out);
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn distinct_tuples_pack_to_distinct_keys() {
        let layout = KeyLayout::from_bounds(&[(0, 99), (0, 99)]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for a in 0..100 {
            for b in 0..100 {
                assert!(seen.insert(layout.pack(&[a, b])));
            }
        }
    }

    #[test]
    fn overwide_layout_is_rejected() {
        assert!(KeyLayout::from_bounds(&[(Value::MIN, Value::MAX), (0, 1)]).is_none());
        // Exactly 64 bits fits.
        assert!(KeyLayout::from_bounds(&[(Value::MIN, Value::MAX)]).is_some());
        // 33 + 32 > 64.
        assert!(KeyLayout::from_bounds(&[(0, 1 << 32), (0, (1 << 32) - 1)]).is_none());
    }

    #[test]
    fn layout_from_view_scans_bounds() {
        let rel = Relation::from_rows(
            Schema::with_arity("t", 2),
            &[vec![5, -3], vec![100, 7], vec![50, 0]],
        );
        let layout = KeyLayout::from_view(rel.view(), &[0, 1]).unwrap();
        let mut out = Vec::new();
        let k = layout.pack(&[100, -3]);
        layout.unpack(k, &mut out);
        assert_eq!(out, vec![100, -3]);
    }

    #[test]
    fn two_view_layout_covers_union_of_bounds() {
        let a = Relation::from_rows(Schema::with_arity("a", 1), &[vec![0], vec![10]]);
        let b = Relation::from_rows(Schema::with_arity("b", 1), &[vec![-5], vec![3]]);
        let layout = KeyLayout::from_two_views(a.view(), &[0], b.view(), &[0]).unwrap();
        let mut out = Vec::new();
        for v in [-5i64, 0, 10] {
            layout.unpack(layout.pack(&[v]), &mut out);
            assert_eq!(out, vec![v]);
        }
    }

    #[test]
    fn keymode_packed_vs_hashed() {
        let narrow = Relation::from_rows(Schema::with_arity("n", 2), &[vec![1, 2]]);
        assert!(KeyMode::for_view(narrow.view(), &[0, 1]).exact());
        let wide = Relation::from_rows(
            Schema::with_arity("w", 2),
            &[vec![Value::MIN, Value::MAX], vec![Value::MAX, Value::MIN]],
        );
        assert!(!KeyMode::for_view(wide.view(), &[0, 1]).exact());
    }

    #[test]
    fn key_of_agrees_between_rows_with_equal_tuples() {
        let rel = Relation::from_rows(
            Schema::with_arity("t", 2),
            &[vec![7, 8], vec![7, 8], vec![8, 7]],
        );
        for mode in [KeyMode::for_view(rel.view(), &[0, 1]), KeyMode::Hashed] {
            let mut s = Vec::new();
            let k0 = mode.key_of(rel.view(), 0, &[0, 1], &mut s);
            let k1 = mode.key_of(rel.view(), 1, &[0, 1], &mut s);
            let k2 = mode.key_of(rel.view(), 2, &[0, 1], &mut s);
            assert_eq!(k0, k1);
            assert_ne!(k0, k2);
        }
    }

    #[test]
    fn covers_detects_escaping_bounds() {
        let layout = KeyLayout::from_bounds(&[(0, 255), (-8, 7)]).unwrap();
        assert!(layout.covers(&[(0, 255), (-8, 7)]));
        assert!(layout.covers(&[(10, 20), (0, 0)]));
        // Below a slot minimum escapes.
        assert!(!layout.covers(&[(-1, 255), (0, 0)]));
        // Above a slot's representable span escapes (255 spans 8 bits from
        // min 0, so 256 does not fit).
        assert!(!layout.covers(&[(0, 256), (0, 0)]));
        // 64-bit slots cover everything.
        let wide = KeyLayout::from_bounds(&[(Value::MIN, Value::MAX)]).unwrap();
        assert!(wide.covers(&[(Value::MIN, Value::MAX)]));
    }

    #[test]
    fn from_view_consumes_cached_relation_bounds() {
        let mut r = Relation::new(Schema::with_arity("t", 1));
        r.push_row(&[4]);
        r.push_row(&[19]);
        let layout = KeyLayout::from_view(r.view(), &[0]).unwrap();
        // Bounds (4, 19) span 15 → 4 bits, proving the cached path agrees
        // with a scan.
        assert_eq!(layout.total_bits(), 4);
        assert_eq!(bounds_of(r.view(), &[0]), Some(vec![(4, 19)]));
        assert_eq!(bounds_of(r.prefix_view(0), &[0]), None);
    }

    #[test]
    fn try_pack_agrees_with_pack_and_detects_escapes() {
        let layout = KeyLayout::from_bounds(&[(0, 255), (-8, 7)]).unwrap();
        assert_eq!(layout.try_pack(&[17, -3]), Some(layout.pack(&[17, -3])));
        assert_eq!(layout.try_pack(&[255, 7]), Some(layout.pack(&[255, 7])));
        // Below a slot minimum and above a slot span both escape.
        assert_eq!(layout.try_pack(&[-1, 0]), None);
        assert_eq!(layout.try_pack(&[256, 0]), None);
        assert_eq!(layout.try_pack(&[0, 8]), None);
        // 64-bit slots cover everything.
        let wide = KeyLayout::from_bounds(&[(Value::MIN, Value::MAX)]).unwrap();
        assert_eq!(wide.try_pack(&[Value::MAX]), Some(wide.pack(&[Value::MAX])));
    }

    #[test]
    fn try_key_of_row_matches_key_of_identity_columns() {
        let rel = Relation::from_rows(
            Schema::with_arity("t", 2),
            &[vec![5, -3], vec![100, 7], vec![50, 0]],
        );
        for mode in [KeyMode::for_view(rel.view(), &[0, 1]), KeyMode::Hashed] {
            let mut s = Vec::new();
            for r in 0..rel.len() {
                let row = [rel.col(0)[r], rel.col(1)[r]];
                assert_eq!(
                    mode.try_key_of_row(&row),
                    Some(mode.key_of(rel.view(), r, &[0, 1], &mut s))
                );
            }
        }
        // Escapes surface as None only in packed mode.
        let packed = KeyMode::for_view(rel.view(), &[0, 1]);
        assert_eq!(packed.try_key_of_row(&[Value::MAX, 0]), None);
        assert!(KeyMode::Hashed.try_key_of_row(&[Value::MAX, 0]).is_some());
    }

    #[test]
    fn empty_views_yield_no_layout() {
        let e = Relation::new(Schema::with_arity("e", 1));
        assert!(KeyLayout::from_view(e.view(), &[0]).is_none());
        assert!(KeyLayout::from_two_views(e.view(), &[0], e.view(), &[0]).is_none());
    }
}
