//! Hash group-by aggregation and monotonic recursive aggregates.
//!
//! Non-recursive aggregation (the `gtc(x, COUNT(y))` example of §3.3) maps
//! to a parallel hash group-by: per-worker partial states merged once at the
//! end. Recursive aggregation (CC's and SSSP's `MIN`) follows the monotonic
//! semantics the paper inherits from the recursive-aggregate literature
//! [Lefebvre 92]: the IDB keeps one tuple per group holding the current best
//! value, and the ∆ of an iteration is the set of *strictly improved*
//! groups — which is exactly what [`MonotonicAgg::absorb`] reports.
//!
//! Both shapes also exist as *sink-side* concurrent states for the fused
//! streaming pipeline (group-at-source): [`ConcurrentMonoMap`] is a
//! latch-free CAS-on-best map whose dirty list yields the iteration's ∆
//! directly, and [`GroupSink`] holds sharded group-by partials that
//! operator workers fold rows into at the probe site, merged once at
//! flush. With either, the pre-aggregation `Rt` is never materialized.
//!
//! ## Overflow
//!
//! Accumulators widen through `i128`, so the running sum itself cannot
//! wrap on any realistic input; the hazard is the final narrowing back to
//! the engine's `i64` value domain. `SUM`/`COUNT`/`AVG` **saturate**: an
//! accumulated value outside `i64` range clamps to `i64::MIN`/`i64::MAX`
//! instead of wrapping silently (and the `i128` accumulator saturates at
//! its own bounds as belt-and-braces).

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use recstep_common::hash::{hash_row, FxHashMap};
use recstep_common::Value;
use recstep_storage::RelView;

use crate::expr::{AggFunc, Expr};
use crate::key::bucket_of;
use crate::ExecCtx;

/// Saturating narrowing from the `i128` accumulator domain back to the
/// engine's `i64` value domain (see the module docs on overflow).
#[inline]
fn saturate_value(acc: i128) -> Value {
    if acc > Value::MAX as i128 {
        Value::MAX
    } else if acc < Value::MIN as i128 {
        Value::MIN
    } else {
        acc as Value
    }
}

#[derive(Clone, Copy)]
struct AggState {
    acc: i128,
    cnt: u64,
}

impl AggState {
    fn new(func: AggFunc, v: Value) -> Self {
        match func {
            AggFunc::Min | AggFunc::Max => AggState {
                acc: v as i128,
                cnt: 1,
            },
            AggFunc::Sum | AggFunc::Avg => AggState {
                acc: v as i128,
                cnt: 1,
            },
            AggFunc::Count => AggState { acc: 1, cnt: 1 },
        }
    }

    fn update(&mut self, func: AggFunc, v: Value) {
        match func {
            AggFunc::Min => self.acc = self.acc.min(v as i128),
            AggFunc::Max => self.acc = self.acc.max(v as i128),
            AggFunc::Sum | AggFunc::Avg => {
                self.acc = self.acc.saturating_add(v as i128);
                self.cnt = self.cnt.saturating_add(1);
            }
            AggFunc::Count => {
                self.acc = self.acc.saturating_add(1);
                self.cnt = self.cnt.saturating_add(1);
            }
        }
    }

    fn merge(&mut self, func: AggFunc, other: &AggState) {
        match func {
            AggFunc::Min => self.acc = self.acc.min(other.acc),
            AggFunc::Max => self.acc = self.acc.max(other.acc),
            AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
                self.acc = self.acc.saturating_add(other.acc);
                self.cnt = self.cnt.saturating_add(other.cnt);
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Avg => saturate_value(self.acc / self.cnt.max(1) as i128),
            _ => saturate_value(self.acc),
        }
    }
}

/// One `AGG(expr)` column in an aggregation.
#[derive(Clone, Debug)]
pub struct AggCol {
    /// The aggregation operator.
    pub func: AggFunc,
    /// Its argument expression over the flattened input row.
    pub expr: Expr,
}

/// Parallel hash group-by.
///
/// `group_exprs` produce the key columns; the output is
/// `[group columns ‖ aggregate columns]` with one row per distinct group.
pub fn group_aggregate(
    ctx: &ExecCtx,
    input: RelView<'_>,
    group_exprs: &[Expr],
    aggs: &[AggCol],
) -> Vec<Vec<Value>> {
    let out_arity = group_exprs.len() + aggs.len();
    if input.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    // Phase 1: per-worker partial maps.
    let partials = parking_lot::Mutex::new(Vec::<FxHashMap<Box<[Value]>, Vec<AggState>>>::new());
    let n = input.len();
    let grain = ctx.grain.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    ctx.pool.run(|_| {
        let mut map: FxHashMap<Box<[Value]>, Vec<AggState>> = FxHashMap::default();
        let mut row = Vec::new();
        let mut key = Vec::new();
        loop {
            let start = next.fetch_add(grain, std::sync::atomic::Ordering::Relaxed);
            if start >= n {
                break;
            }
            for r in start..(start + grain).min(n) {
                input.copy_row(r, &mut row);
                key.clear();
                key.extend(group_exprs.iter().map(|e| e.eval(&row)));
                match map.get_mut(key.as_slice()) {
                    Some(states) => {
                        for (st, a) in states.iter_mut().zip(aggs) {
                            st.update(a.func, a.expr.eval(&row));
                        }
                    }
                    None => {
                        let states: Vec<AggState> = aggs
                            .iter()
                            .map(|a| AggState::new(a.func, a.expr.eval(&row)))
                            .collect();
                        map.insert(key.clone().into_boxed_slice(), states);
                    }
                }
            }
        }
        if !map.is_empty() {
            partials.lock().push(map);
        }
    });
    // Phase 2: merge partials.
    let mut parts = partials.into_inner().into_iter();
    let mut global = parts.next().unwrap_or_default();
    for part in parts {
        for (key, states) in part {
            match global.get_mut(&key) {
                Some(g) => {
                    for ((gs, ps), a) in g.iter_mut().zip(&states).zip(aggs) {
                        gs.merge(a.func, ps);
                    }
                }
                None => {
                    global.insert(key, states);
                }
            }
        }
    }
    // Phase 3: materialize.
    let mut cols = vec![Vec::with_capacity(global.len()); out_arity];
    for (key, states) in &global {
        for (c, &v) in key.iter().enumerate() {
            cols[c].push(v);
        }
        for (i, (st, a)) in states.iter().zip(aggs).enumerate() {
            cols[group_exprs.len() + i].push(st.finish(a.func));
        }
    }
    cols
}

/// A monotonic aggregate relation for recursive aggregation: one current
/// best value per group, with strict-improvement deltas.
#[derive(Clone, Debug)]
pub struct MonotonicAgg {
    func: AggFunc,
    map: FxHashMap<Box<[Value]>, Value>,
}

impl MonotonicAgg {
    /// New monotonic relation. Only `MIN` and `MAX` converge under
    /// recursion (the paper assumes programs are given convergent — §3.3);
    /// other functions are rejected.
    pub fn new(func: AggFunc) -> recstep_common::Result<Self> {
        match func {
            AggFunc::Min | AggFunc::Max => Ok(MonotonicAgg {
                func,
                map: FxHashMap::default(),
            }),
            other => Err(recstep_common::Error::analysis(format!(
                "recursive aggregation requires MIN or MAX, got {}",
                other.sql()
            ))),
        }
    }

    /// Aggregate function in effect.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Absorb a candidate `(group, value)`; returns `true` iff the group is
    /// new or strictly improved (i.e. the tuple belongs in ∆).
    pub fn absorb(&mut self, group: &[Value], v: Value) -> bool {
        match self.map.get_mut(group) {
            Some(cur) => {
                let better = match self.func {
                    AggFunc::Min => v < *cur,
                    AggFunc::Max => v > *cur,
                    _ => unreachable!(),
                };
                if better {
                    *cur = v;
                }
                better
            }
            None => {
                self.map.insert(group.to_vec().into_boxed_slice(), v);
                true
            }
        }
    }

    /// Current best value of a group.
    pub fn get(&self, group: &[Value]) -> Option<Value> {
        self.map.get(group).copied()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no group has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Materialize as `[group columns ‖ value]` (group arity inferred from
    /// the first entry; empty map → `arity` columns of nothing).
    pub fn to_columns(&self, group_arity: usize) -> Vec<Vec<Value>> {
        let mut cols = vec![Vec::with_capacity(self.map.len()); group_arity + 1];
        for (key, &v) in &self.map {
            debug_assert_eq!(key.len(), group_arity);
            for (c, &k) in key.iter().enumerate() {
                cols[c].push(k);
            }
            cols[group_arity].push(v);
        }
        cols
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        // Entry overhead ≈ key box + value + hashmap slot.
        self.map.len() * (std::mem::size_of::<Value>() * 2 + 32)
            + self.map.capacity() * std::mem::size_of::<usize>()
    }
}

/// Chain-next sentinel: empty bucket / end of chain (`node + 1` addressing).
const NIL: u32 = 0;
/// Dirty-list sentinel: the node is clean (not queued for the next ∆).
const NOT_DIRTY: u32 = u32::MAX;
/// Pre-planned chunk slots, mirroring [`crate::chain::GrowChainTable`].
const MONO_CHUNKS: usize = 32;

/// One lazily allocated shard of [`ConcurrentMonoMap`] node storage.
/// Groups are stored inline (`group_arity` values per node) next to the
/// CAS-able best value and the dirty-list link.
struct MonoChunk {
    next: Vec<AtomicU32>,
    keys: Vec<AtomicU64>,
    best: Vec<AtomicI64>,
    dirty: Vec<AtomicU32>,
    groups: Vec<AtomicI64>,
}

impl MonoChunk {
    fn new(cap: usize, group_arity: usize) -> Self {
        let mut next = Vec::with_capacity(cap);
        next.resize_with(cap, || AtomicU32::new(NIL));
        let mut keys = Vec::with_capacity(cap);
        keys.resize_with(cap, || AtomicU64::new(0));
        let mut best = Vec::with_capacity(cap);
        best.resize_with(cap, || AtomicI64::new(0));
        let mut dirty = Vec::with_capacity(cap);
        dirty.resize_with(cap, || AtomicU32::new(NOT_DIRTY));
        let mut groups = Vec::with_capacity(cap * group_arity);
        groups.resize_with(cap * group_arity, || AtomicI64::new(0));
        MonoChunk {
            next,
            keys,
            best,
            dirty,
            groups,
        }
    }
}

/// A concurrent monotonic-aggregate map: the sink-side twin of
/// [`MonotonicAgg`] for the fused streaming pipeline (group-at-source).
///
/// Layout and insert protocol follow [`crate::chain::GrowChainTable`]
/// (fixed bucket array, `fetch_add` slot allocator over doubling chunks,
/// Treiber-style publish with duplicate re-scan on a lost CAS), with two
/// additions:
///
/// * each node carries one **CAS-on-best** `AtomicI64` — an existing
///   group absorbs a candidate with a compare-exchange loop that only
///   ever installs strict improvements, so concurrent candidates for one
///   group resolve to the true MIN/MAX without a latch;
/// * improved or newly created nodes self-register on a latch-free
///   **dirty list** (one Treiber stack threaded through per-node links,
///   claimed by a `NOT_DIRTY → queued` CAS so each group appears at most
///   once). [`ConcurrentMonoMap::take_improved`] drains that list at the
///   quiescent end of an iteration — it *is* ∆R, with each group's final
///   (best) value, no pre-aggregation `Rt` ever materialized.
///
/// The bucket array is fixed while workers insert (same trade-off as the
/// scratch table), but the map persists across iterations and
/// [`ConcurrentMonoMap::maybe_rehash`] regrows it at flush time — a
/// quiescent point — so chains track the group count of the workload.
pub struct ConcurrentMonoMap {
    func: AggFunc,
    group_arity: usize,
    heads: Vec<AtomicU32>,
    mask: usize,
    base: usize,
    chunks: Vec<OnceLock<MonoChunk>>,
    alloc: AtomicUsize,
    /// Head of the dirty Treiber stack (`node + 1`, 0 = empty).
    dirty_head: AtomicU32,
    /// Published (reachable) nodes — the number of groups.
    live: AtomicUsize,
}

impl ConcurrentMonoMap {
    /// New concurrent monotonic map. Like [`MonotonicAgg::new`], only
    /// `MIN` and `MAX` converge under recursion; other functions are
    /// rejected.
    pub fn new(
        func: AggFunc,
        group_arity: usize,
        groups_hint: usize,
    ) -> recstep_common::Result<Self> {
        match func {
            AggFunc::Min | AggFunc::Max => {}
            other => {
                return Err(recstep_common::Error::analysis(format!(
                    "recursive aggregation requires MIN or MAX, got {}",
                    other.sql()
                )))
            }
        }
        let base = crate::util::next_pow2_at_least(groups_hint, 64);
        let n_buckets = crate::util::next_pow2_at_least(groups_hint.saturating_mul(2), 4096);
        let mut heads = Vec::with_capacity(n_buckets);
        heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        let mut chunks = Vec::with_capacity(MONO_CHUNKS);
        chunks.resize_with(MONO_CHUNKS, OnceLock::new);
        Ok(ConcurrentMonoMap {
            func,
            group_arity: group_arity.max(1),
            heads,
            mask: n_buckets - 1,
            base,
            chunks,
            alloc: AtomicUsize::new(0),
            dirty_head: AtomicU32::new(0),
            live: AtomicUsize::new(0),
        })
    }

    /// Aggregate function in effect.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Values per group key.
    pub fn group_arity(&self) -> usize {
        self.group_arity
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// True when no group has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chunk and in-chunk offset of node slot `idx`, allocating the chunk
    /// on first touch (chunk `k` covers `base·(2^k − 1) .. base·(2^(k+1) − 1)`).
    #[inline]
    fn locate(&self, idx: usize) -> (&MonoChunk, usize) {
        let q = idx / self.base + 1;
        let k = (usize::BITS - 1 - q.leading_zeros()) as usize;
        let off = idx - ((1usize << k) - 1) * self.base;
        let chunk = self.chunks[k].get_or_init(|| MonoChunk::new(self.base << k, self.group_arity));
        (chunk, off)
    }

    #[inline]
    fn group_eq(&self, chunk: &MonoChunk, off: usize, group: &[Value]) -> bool {
        let at = off * self.group_arity;
        group
            .iter()
            .enumerate()
            .all(|(c, &v)| chunk.groups[at + c].load(Ordering::Relaxed) == v)
    }

    /// Walk the chain from `cur` (stopping before `until`) for an equal
    /// group; chains are prepend-only, so bounding by a previously
    /// observed head restricts the scan to newly published nodes.
    fn find_in_chain(&self, mut cur: u32, until: u32, key: u64, group: &[Value]) -> Option<usize> {
        while cur != until && cur != NIL {
            let idx = (cur - 1) as usize;
            let (chunk, off) = self.locate(idx);
            if chunk.keys[off].load(Ordering::Relaxed) == key && self.group_eq(chunk, off, group) {
                return Some(idx);
            }
            cur = chunk.next[off].load(Ordering::Relaxed);
        }
        None
    }

    /// Queue `idx` for the next [`Self::take_improved`] drain. Idempotent:
    /// the `NOT_DIRTY → queued` claim admits each node at most once.
    fn mark_dirty(&self, idx: usize) {
        let (chunk, off) = self.locate(idx);
        if chunk.dirty[off]
            .compare_exchange(NOT_DIRTY, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return; // already queued
        }
        let node = (idx + 1) as u32;
        let mut head = self.dirty_head.load(Ordering::Acquire);
        loop {
            chunk.dirty[off].store(head, Ordering::Relaxed);
            match self.dirty_head.compare_exchange_weak(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// CAS-on-best: install `v` iff it strictly improves node `idx`.
    /// Returns `true` when this call improved the group.
    fn cas_best(&self, idx: usize, v: Value) -> bool {
        let (chunk, off) = self.locate(idx);
        let cell = &chunk.best[off];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let better = match self.func {
                AggFunc::Min => v < cur,
                AggFunc::Max => v > cur,
                _ => unreachable!("constructor admits only MIN/MAX"),
            };
            if !better {
                return false;
            }
            match cell.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    self.mark_dirty(idx);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Absorb a candidate `(group, value)` from any worker concurrently;
    /// returns `true` iff this call created the group or strictly improved
    /// its best value. Improved groups are queued for the next
    /// [`Self::take_improved`] regardless of which caller wins a race.
    pub fn absorb(&self, group: &[Value], v: Value) -> bool {
        debug_assert_eq!(group.len(), self.group_arity);
        let key = hash_row(group);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        if let Some(existing) = self.find_in_chain(head, NIL, key, group) {
            return self.cas_best(existing, v);
        }
        // Reserve a slot and fill it privately (Relaxed: unpublished).
        let idx = self.alloc.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx < u32::MAX as usize - 1,
            "ConcurrentMonoMap supports < 2^32-1 groups"
        );
        let (chunk, off) = self.locate(idx);
        chunk.keys[off].store(key, Ordering::Relaxed);
        chunk.best[off].store(v, Ordering::Relaxed);
        let at = off * self.group_arity;
        for (c, &g) in group.iter().enumerate() {
            chunk.groups[at + c].store(g, Ordering::Relaxed);
        }
        let node = (idx + 1) as u32;
        loop {
            chunk.next[off].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.live.fetch_add(1, Ordering::Relaxed);
                    self.mark_dirty(idx);
                    return true;
                }
                Err(actual) => {
                    // Lost a race: scan only the newly published prefix for
                    // an equal group; our reserved slot leaks if one won.
                    if let Some(existing) = self.find_in_chain(actual, head, key, group) {
                        return self.cas_best(existing, v);
                    }
                    head = actual;
                }
            }
        }
    }

    /// Absorb one pre-aggregation row laid out `[group ‖ value]` (the
    /// sink-facing entry point).
    #[inline]
    pub fn absorb_row(&self, row: &[Value]) -> bool {
        debug_assert_eq!(row.len(), self.group_arity + 1);
        self.absorb(&row[..self.group_arity], row[self.group_arity])
    }

    /// Current best value of a group.
    pub fn get(&self, group: &[Value]) -> Option<Value> {
        let key = hash_row(group);
        let head = self.heads[bucket_of(key, self.mask)].load(Ordering::Acquire);
        self.find_in_chain(head, NIL, key, group).map(|idx| {
            let (chunk, off) = self.locate(idx);
            chunk.best[off].load(Ordering::Relaxed)
        })
    }

    /// Drain the dirty list: the groups created or strictly improved since
    /// the previous drain, each with its current (final) best value —
    /// exactly ∆R of the iteration, flattened row-major as
    /// `[group ‖ value]` rows. Requires quiescence (`&mut`): call between
    /// parallel absorb phases.
    pub fn take_improved(&mut self) -> Vec<Value> {
        let width = self.group_arity + 1;
        let mut out = Vec::new();
        let mut cur = self.dirty_head.swap(0, Ordering::Relaxed);
        while cur != 0 {
            let idx = (cur - 1) as usize;
            let (chunk, off) = self.locate(idx);
            let at = off * self.group_arity;
            out.reserve(width);
            for c in 0..self.group_arity {
                out.push(chunk.groups[at + c].load(Ordering::Relaxed));
            }
            out.push(chunk.best[off].load(Ordering::Relaxed));
            cur = chunk.dirty[off].swap(NOT_DIRTY, Ordering::Relaxed);
        }
        out
    }

    /// Regrow the bucket array to track the group count (no-op while the
    /// load factor is ≤ 1). Quiescent-only, like [`Self::take_improved`]:
    /// relinking swaps no values and moves no node.
    pub fn maybe_rehash(&mut self) {
        let live = self.live.load(Ordering::Relaxed);
        if live <= self.heads.len() {
            return;
        }
        let n_buckets = crate::util::next_pow2_at_least(live.saturating_mul(2), 4096);
        let old_heads = std::mem::replace(&mut self.heads, {
            let mut heads = Vec::with_capacity(n_buckets);
            heads.resize_with(n_buckets, || AtomicU32::new(NIL));
            heads
        });
        self.mask = n_buckets - 1;
        for head in &old_heads {
            let mut cur = head.load(Ordering::Relaxed);
            while cur != NIL {
                let idx = (cur - 1) as usize;
                let (chunk, off) = self.locate(idx);
                let next = chunk.next[off].load(Ordering::Relaxed);
                let key = chunk.keys[off].load(Ordering::Relaxed);
                let bucket = &self.heads[bucket_of(key, self.mask)];
                chunk.next[off].store(bucket.load(Ordering::Relaxed), Ordering::Relaxed);
                bucket.store(cur, Ordering::Relaxed);
                cur = next;
            }
        }
    }

    /// Materialize as `[group columns ‖ value]` (live nodes only — slots
    /// lost to insert races are unreachable and skipped).
    pub fn to_columns(&self, group_arity: usize) -> Vec<Vec<Value>> {
        debug_assert_eq!(group_arity, self.group_arity);
        let n = self.len();
        let mut cols = vec![Vec::with_capacity(n); group_arity + 1];
        for head in &self.heads {
            let mut cur = head.load(Ordering::Acquire);
            while cur != NIL {
                let idx = (cur - 1) as usize;
                let (chunk, off) = self.locate(idx);
                let at = off * self.group_arity;
                for (c, col) in cols.iter_mut().enumerate().take(group_arity) {
                    col.push(chunk.groups[at + c].load(Ordering::Relaxed));
                }
                cols[group_arity].push(chunk.best[off].load(Ordering::Relaxed));
                cur = chunk.next[off].load(Ordering::Relaxed);
            }
        }
        cols
    }

    /// Approximate heap footprint in bytes (allocated chunks only).
    pub fn heap_bytes(&self) -> usize {
        let per_node = 4 + 8 + 8 + 4 + self.group_arity * 8;
        let mut bytes = self.heads.capacity() * 4;
        for (k, chunk) in self.chunks.iter().enumerate() {
            if chunk.get().is_some() {
                bytes += (self.base << k) * per_node;
            }
        }
        bytes
    }
}

/// Number of partial-state shards a [`GroupSink`] spreads workers over.
const GROUP_SHARDS: usize = 64;

/// One [`GroupSink`] shard: partial aggregation states keyed by group.
type GroupShard = Mutex<FxHashMap<Box<[Value]>, Vec<AggState>>>;

/// Sink-side state for *non-recursive* group-by heads: sharded partial
/// aggregation maps that operator workers fold produced rows into at the
/// probe site (rows laid out `[group ‖ aggregate arguments]`, the
/// pre-aggregation layout), merged once at sink flush.
///
/// A group's shard is a pure function of its key hash, so every row of a
/// group lands in the same shard — the flush needs no cross-shard merge,
/// just concatenation, and contention distributes across 64 shard locks
/// instead of one.
pub struct GroupSink {
    funcs: Vec<AggFunc>,
    group_arity: usize,
    shards: Vec<GroupShard>,
}

impl GroupSink {
    /// Sink for `funcs` aggregates over `group_arity` leading group
    /// columns.
    pub fn new(funcs: Vec<AggFunc>, group_arity: usize) -> Self {
        let mut shards = Vec::with_capacity(GROUP_SHARDS);
        shards.resize_with(GROUP_SHARDS, || Mutex::new(FxHashMap::default()));
        GroupSink {
            funcs,
            group_arity,
            shards,
        }
    }

    /// Fold one pre-aggregation row (`[group ‖ args]`) into its shard's
    /// partial state. Callable from any worker concurrently.
    pub fn absorb_row(&self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.group_arity + self.funcs.len());
        let (group, args) = row.split_at(self.group_arity);
        let h = hash_row(group);
        let mut shard = self.shards[(h as usize) & (GROUP_SHARDS - 1)].lock();
        match shard.get_mut(group) {
            Some(states) => {
                for ((st, &f), &v) in states.iter_mut().zip(&self.funcs).zip(args) {
                    st.update(f, v);
                }
            }
            None => {
                let states: Vec<AggState> = self
                    .funcs
                    .iter()
                    .zip(args)
                    .map(|(&f, &v)| AggState::new(f, v))
                    .collect();
                shard.insert(group.to_vec().into_boxed_slice(), states);
            }
        }
    }

    /// Number of distinct groups folded so far.
    pub fn groups(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Flush: finish every partial state and materialize the result as
    /// `[group columns ‖ aggregate columns]`, one row per group.
    pub fn into_columns(self) -> Vec<Vec<Value>> {
        let out_arity = self.group_arity + self.funcs.len();
        let mut cols = vec![Vec::new(); out_arity];
        for shard in self.shards {
            for (key, states) in shard.into_inner() {
                for (c, &v) in key.iter().enumerate() {
                    cols[c].push(v);
                }
                for (i, (st, &f)) in states.iter().zip(&self.funcs).enumerate() {
                    cols[self.group_arity + i].push(st.finish(f));
                }
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashMap;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn input() -> Relation {
        // (group, value)
        Relation::from_rows(
            Schema::with_arity("t", 2),
            &[
                vec![1, 10],
                vec![1, 4],
                vec![2, 7],
                vec![2, 7],
                vec![3, -5],
                vec![1, 6],
            ],
        )
    }

    fn result_map(cols: &[Vec<Value>]) -> HashMap<Value, Value> {
        (0..cols[0].len())
            .map(|r| (cols[0][r], cols[1][r]))
            .collect()
    }

    #[test]
    fn min_max_sum_count_avg() {
        let rel = input();
        let ctx = ctx();
        let group = [Expr::Col(0)];
        let run = |f: AggFunc| {
            result_map(&group_aggregate(
                &ctx,
                rel.view(),
                &group,
                &[AggCol {
                    func: f,
                    expr: Expr::Col(1),
                }],
            ))
        };
        assert_eq!(run(AggFunc::Min), HashMap::from([(1, 4), (2, 7), (3, -5)]));
        assert_eq!(run(AggFunc::Max), HashMap::from([(1, 10), (2, 7), (3, -5)]));
        assert_eq!(
            run(AggFunc::Sum),
            HashMap::from([(1, 20), (2, 14), (3, -5)])
        );
        assert_eq!(run(AggFunc::Count), HashMap::from([(1, 3), (2, 2), (3, 1)]));
        assert_eq!(run(AggFunc::Avg), HashMap::from([(1, 6), (2, 7), (3, -5)]));
    }

    #[test]
    fn aggregate_over_expression_argument() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Min,
                expr: Expr::add(Expr::Col(1), Expr::Const(100)),
            }],
        );
        assert_eq!(
            result_map(&out),
            HashMap::from([(1, 104), (2, 107), (3, 95)])
        );
    }

    #[test]
    fn global_aggregate_no_groups() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[],
            &[AggCol {
                func: AggFunc::Count,
                expr: Expr::Col(0),
            }],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![6]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[
                AggCol {
                    func: AggFunc::Min,
                    expr: Expr::Col(1),
                },
                AggCol {
                    func: AggFunc::Count,
                    expr: Expr::Col(1),
                },
            ],
        );
        let m: HashMap<Value, (Value, Value)> = (0..out[0].len())
            .map(|r| (out[0][r], (out[1][r], out[2][r])))
            .collect();
        assert_eq!(m, HashMap::from([(1, (4, 3)), (2, (7, 2)), (3, (-5, 1))]));
    }

    #[test]
    fn empty_input_empty_output() {
        let rel = Relation::new(Schema::with_arity("e", 2));
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
    }

    #[test]
    fn parallel_grouping_matches_sequential_oracle() {
        let mut rel = Relation::new(Schema::with_arity("big", 2));
        for i in 0..30_000i64 {
            rel.push_row(&[i % 257, i]);
        }
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        let mut oracle: HashMap<Value, Value> = HashMap::new();
        for i in 0..30_000i64 {
            *oracle.entry(i % 257).or_insert(0) += i;
        }
        assert_eq!(result_map(&out), oracle);
    }

    #[test]
    fn monotonic_min_absorbs_improvements_only() {
        let mut m = MonotonicAgg::new(AggFunc::Min).unwrap();
        assert!(m.absorb(&[1], 10)); // new
        assert!(!m.absorb(&[1], 10)); // equal → not improved
        assert!(!m.absorb(&[1], 12)); // worse
        assert!(m.absorb(&[1], 3)); // better
        assert_eq!(m.get(&[1]), Some(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn monotonic_max() {
        let mut m = MonotonicAgg::new(AggFunc::Max).unwrap();
        assert!(m.absorb(&[7], 1));
        assert!(m.absorb(&[7], 5));
        assert!(!m.absorb(&[7], 2));
        assert_eq!(m.get(&[7]), Some(5));
    }

    #[test]
    fn monotonic_rejects_non_extremal_functions() {
        assert!(MonotonicAgg::new(AggFunc::Sum).is_err());
        assert!(MonotonicAgg::new(AggFunc::Count).is_err());
        assert!(MonotonicAgg::new(AggFunc::Avg).is_err());
    }

    #[test]
    fn monotonic_to_columns() {
        let mut m = MonotonicAgg::new(AggFunc::Min).unwrap();
        m.absorb(&[1, 2], 9);
        m.absorb(&[3, 4], 8);
        let cols = m.to_columns(2);
        assert_eq!(cols.len(), 3);
        let mut rows: Vec<Vec<Value>> = (0..2)
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![vec![1, 2, 9], vec![3, 4, 8]]);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        // Two i64::MAX contributions overflow the value domain: the result
        // must clamp to i64::MAX, not wrap negative.
        let rel = Relation::from_rows(
            Schema::with_arity("t", 2),
            &[
                vec![1, Value::MAX],
                vec![1, Value::MAX],
                vec![2, Value::MIN],
            ],
        );
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        assert_eq!(
            result_map(&out),
            HashMap::from([(1, Value::MAX), (2, Value::MIN)])
        );
    }

    #[test]
    fn sum_saturates_at_the_negative_bound_too() {
        let rel = Relation::from_rows(
            Schema::with_arity("t", 2),
            &[vec![1, Value::MIN], vec![1, Value::MIN], vec![1, -7]],
        );
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        assert_eq!(result_map(&out), HashMap::from([(1, Value::MIN)]));
    }

    #[test]
    fn group_sink_saturates_like_group_aggregate() {
        let sink = GroupSink::new(vec![AggFunc::Sum], 1);
        sink.absorb_row(&[1, Value::MAX]);
        sink.absorb_row(&[1, Value::MAX]);
        let cols = sink.into_columns();
        assert_eq!(result_map(&cols), HashMap::from([(1, Value::MAX)]));
    }

    #[test]
    fn concurrent_mono_absorbs_and_reports_improvements() {
        let mut m = ConcurrentMonoMap::new(AggFunc::Min, 1, 8).unwrap();
        assert!(m.absorb(&[1], 10)); // new
        assert!(!m.absorb(&[1], 10)); // equal → not improved
        assert!(!m.absorb(&[1], 12)); // worse
        assert!(m.absorb(&[1], 3)); // better
        assert!(m.absorb(&[2], 5));
        assert_eq!(m.get(&[1]), Some(3));
        assert_eq!(m.get(&[9]), None);
        assert_eq!(m.len(), 2);
        // One ∆ row per group, final values only.
        let mut improved: Vec<Vec<Value>> =
            m.take_improved().chunks(2).map(<[_]>::to_vec).collect();
        improved.sort_unstable();
        assert_eq!(improved, vec![vec![1, 3], vec![2, 5]]);
        // Drained: nothing reported until the next improvement.
        assert!(m.take_improved().is_empty());
        assert!(!m.absorb(&[1], 4));
        assert!(m.take_improved().is_empty());
        assert!(m.absorb(&[1], 2));
        assert_eq!(m.take_improved(), vec![1, 2]);
    }

    #[test]
    fn concurrent_mono_rejects_non_extremal_functions() {
        assert!(ConcurrentMonoMap::new(AggFunc::Sum, 1, 8).is_err());
        assert!(ConcurrentMonoMap::new(AggFunc::Count, 1, 8).is_err());
        assert!(ConcurrentMonoMap::new(AggFunc::Avg, 1, 8).is_err());
    }

    #[test]
    fn concurrent_mono_to_columns_matches_sequential() {
        let mut seq = MonotonicAgg::new(AggFunc::Max).unwrap();
        let mut conc = ConcurrentMonoMap::new(AggFunc::Max, 2, 4).unwrap();
        for i in 0..500i64 {
            let group = [i % 17, i % 5];
            seq.absorb(&group, i * 3 % 101);
            conc.absorb(&group, i * 3 % 101);
        }
        assert_eq!(seq.len(), conc.len());
        let rows = |cols: &[Vec<Value>]| -> Vec<Vec<Value>> {
            let mut rows: Vec<Vec<Value>> = (0..cols[0].len())
                .map(|r| cols.iter().map(|c| c[r]).collect())
                .collect();
            rows.sort_unstable();
            rows
        };
        assert_eq!(rows(&seq.to_columns(2)), rows(&conc.to_columns(2)));
        assert!(conc.heap_bytes() > 0);
        conc.maybe_rehash();
        assert_eq!(rows(&seq.to_columns(2)), rows(&conc.to_columns(2)));
    }

    #[test]
    fn concurrent_mono_parallel_absorbs_resolve_to_the_true_min() {
        use recstep_common::sched::ThreadPool;
        let pool = ThreadPool::new(8);
        // Tiny hints force chunk growth; 64 groups raced by 8 workers.
        let mut m = ConcurrentMonoMap::new(AggFunc::Min, 1, 4).unwrap();
        pool.parallel_for(64 * 128, 16, |range, _| {
            for i in range {
                let g = (i % 64) as Value;
                let v = ((i * 37) % 1000) as Value;
                m.absorb(&[g], v);
            }
        });
        assert_eq!(m.len(), 64);
        let mut oracle: HashMap<Value, Value> = HashMap::new();
        for i in 0..64 * 128i64 {
            let e = oracle.entry(i % 64).or_insert(Value::MAX);
            *e = (*e).min((i * 37) % 1000);
        }
        for (g, best) in oracle {
            assert_eq!(m.get(&[g]), Some(best), "group {g}");
        }
        // Every group improved at least once → exactly 64 ∆ rows.
        let improved = m.take_improved();
        assert_eq!(improved.len(), 64 * 2);
    }

    #[test]
    fn group_sink_matches_group_aggregate() {
        let rel = input();
        let sink = GroupSink::new(vec![AggFunc::Min, AggFunc::Count], 1);
        let mut row = Vec::new();
        for r in 0..rel.len() {
            rel.view().copy_row(r, &mut row);
            // Pre-agg layout [group ‖ arg, arg]: duplicate the value column
            // as the argument of both aggregates.
            sink.absorb_row(&[row[0], row[1], row[1]]);
        }
        assert_eq!(sink.groups(), 3);
        let cols = sink.into_columns();
        let m: HashMap<Value, (Value, Value)> = (0..cols[0].len())
            .map(|r| (cols[0][r], (cols[1][r], cols[2][r])))
            .collect();
        assert_eq!(m, HashMap::from([(1, (4, 3)), (2, (7, 2)), (3, (-5, 1))]));
    }
}
