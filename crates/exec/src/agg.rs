//! Hash group-by aggregation and monotonic recursive aggregates.
//!
//! Non-recursive aggregation (the `gtc(x, COUNT(y))` example of §3.3) maps
//! to a parallel hash group-by: per-worker partial states merged once at the
//! end. Recursive aggregation (CC's and SSSP's `MIN`) follows the monotonic
//! semantics the paper inherits from the recursive-aggregate literature
//! [Lefebvre 92]: the IDB keeps one tuple per group holding the current best
//! value, and the ∆ of an iteration is the set of *strictly improved*
//! groups — which is exactly what [`MonotonicAgg::absorb`] reports.

use recstep_common::hash::FxHashMap;
use recstep_common::Value;
use recstep_storage::RelView;

use crate::expr::{AggFunc, Expr};
use crate::ExecCtx;

#[derive(Clone, Copy)]
struct AggState {
    acc: i128,
    cnt: u64,
}

impl AggState {
    fn new(func: AggFunc, v: Value) -> Self {
        match func {
            AggFunc::Min | AggFunc::Max => AggState {
                acc: v as i128,
                cnt: 1,
            },
            AggFunc::Sum | AggFunc::Avg => AggState {
                acc: v as i128,
                cnt: 1,
            },
            AggFunc::Count => AggState { acc: 1, cnt: 1 },
        }
    }

    fn update(&mut self, func: AggFunc, v: Value) {
        match func {
            AggFunc::Min => self.acc = self.acc.min(v as i128),
            AggFunc::Max => self.acc = self.acc.max(v as i128),
            AggFunc::Sum | AggFunc::Avg => {
                self.acc += v as i128;
                self.cnt += 1;
            }
            AggFunc::Count => {
                self.acc += 1;
                self.cnt += 1;
            }
        }
    }

    fn merge(&mut self, func: AggFunc, other: &AggState) {
        match func {
            AggFunc::Min => self.acc = self.acc.min(other.acc),
            AggFunc::Max => self.acc = self.acc.max(other.acc),
            AggFunc::Sum | AggFunc::Avg | AggFunc::Count => {
                self.acc += other.acc;
                self.cnt += other.cnt;
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Avg => (self.acc / self.cnt.max(1) as i128) as Value,
            _ => self.acc as Value,
        }
    }
}

/// One `AGG(expr)` column in an aggregation.
#[derive(Clone, Debug)]
pub struct AggCol {
    /// The aggregation operator.
    pub func: AggFunc,
    /// Its argument expression over the flattened input row.
    pub expr: Expr,
}

/// Parallel hash group-by.
///
/// `group_exprs` produce the key columns; the output is
/// `[group columns ‖ aggregate columns]` with one row per distinct group.
pub fn group_aggregate(
    ctx: &ExecCtx,
    input: RelView<'_>,
    group_exprs: &[Expr],
    aggs: &[AggCol],
) -> Vec<Vec<Value>> {
    let out_arity = group_exprs.len() + aggs.len();
    if input.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    // Phase 1: per-worker partial maps.
    let partials = parking_lot::Mutex::new(Vec::<FxHashMap<Box<[Value]>, Vec<AggState>>>::new());
    let n = input.len();
    let grain = ctx.grain.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    ctx.pool.run(|_| {
        let mut map: FxHashMap<Box<[Value]>, Vec<AggState>> = FxHashMap::default();
        let mut row = Vec::new();
        let mut key = Vec::new();
        loop {
            let start = next.fetch_add(grain, std::sync::atomic::Ordering::Relaxed);
            if start >= n {
                break;
            }
            for r in start..(start + grain).min(n) {
                input.copy_row(r, &mut row);
                key.clear();
                key.extend(group_exprs.iter().map(|e| e.eval(&row)));
                match map.get_mut(key.as_slice()) {
                    Some(states) => {
                        for (st, a) in states.iter_mut().zip(aggs) {
                            st.update(a.func, a.expr.eval(&row));
                        }
                    }
                    None => {
                        let states: Vec<AggState> = aggs
                            .iter()
                            .map(|a| AggState::new(a.func, a.expr.eval(&row)))
                            .collect();
                        map.insert(key.clone().into_boxed_slice(), states);
                    }
                }
            }
        }
        if !map.is_empty() {
            partials.lock().push(map);
        }
    });
    // Phase 2: merge partials.
    let mut parts = partials.into_inner().into_iter();
    let mut global = parts.next().unwrap_or_default();
    for part in parts {
        for (key, states) in part {
            match global.get_mut(&key) {
                Some(g) => {
                    for ((gs, ps), a) in g.iter_mut().zip(&states).zip(aggs) {
                        gs.merge(a.func, ps);
                    }
                }
                None => {
                    global.insert(key, states);
                }
            }
        }
    }
    // Phase 3: materialize.
    let mut cols = vec![Vec::with_capacity(global.len()); out_arity];
    for (key, states) in &global {
        for (c, &v) in key.iter().enumerate() {
            cols[c].push(v);
        }
        for (i, (st, a)) in states.iter().zip(aggs).enumerate() {
            cols[group_exprs.len() + i].push(st.finish(a.func));
        }
    }
    cols
}

/// A monotonic aggregate relation for recursive aggregation: one current
/// best value per group, with strict-improvement deltas.
#[derive(Clone, Debug)]
pub struct MonotonicAgg {
    func: AggFunc,
    map: FxHashMap<Box<[Value]>, Value>,
}

impl MonotonicAgg {
    /// New monotonic relation. Only `MIN` and `MAX` converge under
    /// recursion (the paper assumes programs are given convergent — §3.3);
    /// other functions are rejected.
    pub fn new(func: AggFunc) -> recstep_common::Result<Self> {
        match func {
            AggFunc::Min | AggFunc::Max => Ok(MonotonicAgg {
                func,
                map: FxHashMap::default(),
            }),
            other => Err(recstep_common::Error::analysis(format!(
                "recursive aggregation requires MIN or MAX, got {}",
                other.sql()
            ))),
        }
    }

    /// Aggregate function in effect.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Absorb a candidate `(group, value)`; returns `true` iff the group is
    /// new or strictly improved (i.e. the tuple belongs in ∆).
    pub fn absorb(&mut self, group: &[Value], v: Value) -> bool {
        match self.map.get_mut(group) {
            Some(cur) => {
                let better = match self.func {
                    AggFunc::Min => v < *cur,
                    AggFunc::Max => v > *cur,
                    _ => unreachable!(),
                };
                if better {
                    *cur = v;
                }
                better
            }
            None => {
                self.map.insert(group.to_vec().into_boxed_slice(), v);
                true
            }
        }
    }

    /// Current best value of a group.
    pub fn get(&self, group: &[Value]) -> Option<Value> {
        self.map.get(group).copied()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no group has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Materialize as `[group columns ‖ value]` (group arity inferred from
    /// the first entry; empty map → `arity` columns of nothing).
    pub fn to_columns(&self, group_arity: usize) -> Vec<Vec<Value>> {
        let mut cols = vec![Vec::with_capacity(self.map.len()); group_arity + 1];
        for (key, &v) in &self.map {
            debug_assert_eq!(key.len(), group_arity);
            for (c, &k) in key.iter().enumerate() {
                cols[c].push(k);
            }
            cols[group_arity].push(v);
        }
        cols
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        // Entry overhead ≈ key box + value + hashmap slot.
        self.map.len() * (std::mem::size_of::<Value>() * 2 + 32)
            + self.map.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashMap;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn input() -> Relation {
        // (group, value)
        Relation::from_rows(
            Schema::with_arity("t", 2),
            &[
                vec![1, 10],
                vec![1, 4],
                vec![2, 7],
                vec![2, 7],
                vec![3, -5],
                vec![1, 6],
            ],
        )
    }

    fn result_map(cols: &[Vec<Value>]) -> HashMap<Value, Value> {
        (0..cols[0].len())
            .map(|r| (cols[0][r], cols[1][r]))
            .collect()
    }

    #[test]
    fn min_max_sum_count_avg() {
        let rel = input();
        let ctx = ctx();
        let group = [Expr::Col(0)];
        let run = |f: AggFunc| {
            result_map(&group_aggregate(
                &ctx,
                rel.view(),
                &group,
                &[AggCol {
                    func: f,
                    expr: Expr::Col(1),
                }],
            ))
        };
        assert_eq!(run(AggFunc::Min), HashMap::from([(1, 4), (2, 7), (3, -5)]));
        assert_eq!(run(AggFunc::Max), HashMap::from([(1, 10), (2, 7), (3, -5)]));
        assert_eq!(
            run(AggFunc::Sum),
            HashMap::from([(1, 20), (2, 14), (3, -5)])
        );
        assert_eq!(run(AggFunc::Count), HashMap::from([(1, 3), (2, 2), (3, 1)]));
        assert_eq!(run(AggFunc::Avg), HashMap::from([(1, 6), (2, 7), (3, -5)]));
    }

    #[test]
    fn aggregate_over_expression_argument() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Min,
                expr: Expr::add(Expr::Col(1), Expr::Const(100)),
            }],
        );
        assert_eq!(
            result_map(&out),
            HashMap::from([(1, 104), (2, 107), (3, 95)])
        );
    }

    #[test]
    fn global_aggregate_no_groups() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[],
            &[AggCol {
                func: AggFunc::Count,
                expr: Expr::Col(0),
            }],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![6]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let rel = input();
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[
                AggCol {
                    func: AggFunc::Min,
                    expr: Expr::Col(1),
                },
                AggCol {
                    func: AggFunc::Count,
                    expr: Expr::Col(1),
                },
            ],
        );
        let m: HashMap<Value, (Value, Value)> = (0..out[0].len())
            .map(|r| (out[0][r], (out[1][r], out[2][r])))
            .collect();
        assert_eq!(m, HashMap::from([(1, (4, 3)), (2, (7, 2)), (3, (-5, 1))]));
    }

    #[test]
    fn empty_input_empty_output() {
        let rel = Relation::new(Schema::with_arity("e", 2));
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
    }

    #[test]
    fn parallel_grouping_matches_sequential_oracle() {
        let mut rel = Relation::new(Schema::with_arity("big", 2));
        for i in 0..30_000i64 {
            rel.push_row(&[i % 257, i]);
        }
        let out = group_aggregate(
            &ctx(),
            rel.view(),
            &[Expr::Col(0)],
            &[AggCol {
                func: AggFunc::Sum,
                expr: Expr::Col(1),
            }],
        );
        let mut oracle: HashMap<Value, Value> = HashMap::new();
        for i in 0..30_000i64 {
            *oracle.entry(i % 257).or_insert(0) += i;
        }
        assert_eq!(result_map(&out), oracle);
    }

    #[test]
    fn monotonic_min_absorbs_improvements_only() {
        let mut m = MonotonicAgg::new(AggFunc::Min).unwrap();
        assert!(m.absorb(&[1], 10)); // new
        assert!(!m.absorb(&[1], 10)); // equal → not improved
        assert!(!m.absorb(&[1], 12)); // worse
        assert!(m.absorb(&[1], 3)); // better
        assert_eq!(m.get(&[1]), Some(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn monotonic_max() {
        let mut m = MonotonicAgg::new(AggFunc::Max).unwrap();
        assert!(m.absorb(&[7], 1));
        assert!(m.absorb(&[7], 5));
        assert!(!m.absorb(&[7], 2));
        assert_eq!(m.get(&[7]), Some(5));
    }

    #[test]
    fn monotonic_rejects_non_extremal_functions() {
        assert!(MonotonicAgg::new(AggFunc::Sum).is_err());
        assert!(MonotonicAgg::new(AggFunc::Count).is_err());
        assert!(MonotonicAgg::new(AggFunc::Avg).is_err());
    }

    #[test]
    fn monotonic_to_columns() {
        let mut m = MonotonicAgg::new(AggFunc::Min).unwrap();
        m.absorb(&[1, 2], 9);
        m.absorb(&[3, 4], 8);
        let cols = m.to_columns(2);
        assert_eq!(cols.len(), 3);
        let mut rows: Vec<Vec<Value>> = (0..2)
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![vec![1, 2, 9], vec![3, 4, 8]]);
        assert!(m.heap_bytes() > 0);
    }
}
