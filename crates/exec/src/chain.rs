//! The pre-allocated, latch-free global separate-chaining hash table
//! (the paper's GSCHT, Figure 5).
//!
//! Layout follows the paper: a bucket array is pre-allocated "as large as
//! possible … for the purpose of minimizing conflicts in the same bucket,
//! and preventing memory contention", and tuples are inserted in parallel
//! with no latches. We exploit one extra invariant of the Datalog use case:
//! the number of candidate tuples is known up front (it is the row count of
//! the table being deduplicated or built on), so *node storage is one slot
//! per input row* — node `i` is input row `i` — and the hot path performs no
//! allocation at all.
//!
//! Concurrency protocol (Treiber-style publish):
//! 1. the inserting worker writes `keys[i]` and `next[i]` (Relaxed stores to
//!    a slot only it owns pre-publication),
//! 2. publishes with a `compare_exchange(head, i+1, AcqRel, Acquire)`,
//! 3. readers `Acquire`-load the head and walk `next` links; every node
//!    reached was published by a release operation, so its fields are
//!    visible.
//!
//! For unique inserts ([`ChainTable::insert_unique`]) a failed CAS re-walks
//! the chain from the new head before retrying, so two racing equal tuples
//! resolve to exactly one winner.
//!
//! [`ChainTable`] exploits the known-cardinality case (node `i` is input
//! row `i`, storage sized up front). [`GrowChainTable`] drops that
//! assumption for the fused streaming pipeline, where the number of join
//! output tuples is unknown until the join has run: workers *reserve* node
//! slots through a `fetch_add` allocator over chunked node storage, so the
//! paper's "pre-allocate big, insert latch-free" protocol survives unknown
//! sizes — growth never moves a published node and never takes a latch on
//! the insert path.

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use recstep_common::Value;

use crate::key::bucket_of;

/// Sentinel: empty bucket / end of chain (`node index + 1` addressing).
const NIL: u32 = 0;

/// Pre-allocated latch-free separate-chaining table.
///
/// `u32` node indices cap inputs at ~4.29 G rows, far beyond in-memory scale
/// here; [`ChainTable::with_capacity`] asserts it.
pub struct ChainTable {
    heads: Vec<AtomicU32>,
    next: Vec<AtomicU32>,
    keys: Vec<AtomicU64>,
    mask: usize,
}

impl ChainTable {
    /// Table with `nodes` node slots and at least `buckets_hint` buckets
    /// (rounded to a power of two).
    pub fn with_capacity(nodes: usize, buckets_hint: usize) -> Self {
        assert!(
            nodes < u32::MAX as usize,
            "ChainTable supports < 2^32-1 nodes"
        );
        let n_buckets = crate::util::next_pow2_at_least(buckets_hint, 16);
        let mut heads = Vec::with_capacity(n_buckets);
        heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        let mut next = Vec::with_capacity(nodes);
        next.resize_with(nodes, || AtomicU32::new(NIL));
        let mut keys = Vec::with_capacity(nodes);
        keys.resize_with(nodes, || AtomicU64::new(0));
        ChainTable {
            heads,
            next,
            keys,
            mask: n_buckets - 1,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }

    /// Number of node slots.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.heads.capacity() * 4 + self.next.capacity() * 4 + self.keys.capacity() * 8
    }

    /// Unconditionally insert node `idx` under `key` (multimap semantics —
    /// join builds).
    pub fn insert_multi(&self, idx: u32, key: u64) {
        self.keys[idx as usize].store(key, Ordering::Relaxed);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            self.next[idx as usize].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, idx + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Insert node `idx` under `key` only if no equal entry exists.
    ///
    /// Returns `true` when `idx` won (its tuple was new). `eq(existing, new)`
    /// decides tuple equality for nodes whose keys collide; with exact packed
    /// keys pass `|_, _| true`.
    pub fn insert_unique<F>(&self, idx: u32, key: u64, eq: F) -> bool
    where
        F: Fn(u32, u32) -> bool,
    {
        self.keys[idx as usize].store(key, Ordering::Relaxed);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            // Duplicate scan over the whole current chain.
            let mut cur = head;
            while cur != NIL {
                let node = cur - 1;
                if self.keys[node as usize].load(Ordering::Relaxed) == key && eq(node, idx) {
                    return false;
                }
                cur = self.next[node as usize].load(Ordering::Relaxed);
            }
            self.next[idx as usize].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, idx + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                // Lost a race: another worker grew this chain. Re-walk from
                // the new head (covers the newly published prefix) and retry.
                Err(actual) => head = actual,
            }
        }
    }

    /// Iterate node indices whose stored key equals `key`.
    pub fn iter_key(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.heads[bucket_of(key, self.mask)].load(Ordering::Acquire);
        std::iter::from_fn(move || {
            while cur != NIL {
                let node = cur - 1;
                cur = self.next[node as usize].load(Ordering::Relaxed);
                if self.keys[node as usize].load(Ordering::Relaxed) == key {
                    return Some(node);
                }
            }
            None
        })
    }

    /// True if some node with `key` satisfies `eq(node)`.
    pub fn contains<F>(&self, key: u64, eq: F) -> bool
    where
        F: Fn(u32) -> bool,
    {
        self.iter_key(key).any(eq)
    }

    /// Extend node storage to at least `nodes` slots, keeping every
    /// existing chain intact. New slots are unlinked until inserted.
    ///
    /// This is what makes a table *appendable*: an index over rows `0..n`
    /// grows to absorb rows `n..m` without rebuilding. Takes `&mut self`,
    /// so growth is a quiescent point between parallel insert phases.
    pub fn grow_nodes(&mut self, nodes: usize) {
        assert!(
            nodes < u32::MAX as usize,
            "ChainTable supports < 2^32-1 nodes"
        );
        if nodes > self.next.len() {
            self.next.resize_with(nodes, || AtomicU32::new(NIL));
            self.keys.resize_with(nodes, || AtomicU64::new(0));
        }
    }

    /// Rebuild the bucket array with at least `buckets_hint` buckets
    /// (rounded to a power of two), relinking every chained node under its
    /// new bucket. Stored keys are reused — no row is re-read and no key is
    /// recomputed, so a rehash costs O(chained nodes) pointer writes.
    ///
    /// No-op when the table already has that many buckets.
    pub fn rehash(&mut self, buckets_hint: usize) {
        let n_buckets = crate::util::next_pow2_at_least(buckets_hint, 16);
        if n_buckets <= self.heads.len() {
            return;
        }
        let mut old_heads = std::mem::take(&mut self.heads);
        self.heads = Vec::with_capacity(n_buckets);
        self.heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        self.mask = n_buckets - 1;
        for head in &mut old_heads {
            let mut cur = *head.get_mut();
            while cur != NIL {
                let node = (cur - 1) as usize;
                let next = *self.next[node].get_mut();
                let key = *self.keys[node].get_mut();
                let bucket = self.heads[bucket_of(key, self.mask)].get_mut();
                *self.next[node].get_mut() = *bucket;
                *bucket = cur;
                cur = next;
            }
        }
    }
}

/// Pre-planned chunk slots: chunk `k` holds `base << k` nodes, so the
/// cumulative capacity `base × (2^32 − 1)` exceeds the `u32` node-id
/// ceiling for any base — a table can always grow to the id limit.
const GROW_CHUNKS: usize = 32;

/// One lazily allocated shard of node storage. Rows are stored inline
/// (`width` values per node) so duplicate checks on hash collisions never
/// need to reach back into operator inputs that no longer exist — the
/// fused pipeline drops candidate tuples instead of materializing them.
struct NodeChunk {
    next: Vec<AtomicU32>,
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicI64>,
}

impl NodeChunk {
    fn new(cap: usize, width: usize) -> Self {
        let mut next = Vec::with_capacity(cap);
        next.resize_with(cap, || AtomicU32::new(NIL));
        let mut keys = Vec::with_capacity(cap);
        keys.resize_with(cap, || AtomicU64::new(0));
        let mut vals = Vec::with_capacity(cap * width);
        vals.resize_with(cap * width, || AtomicI64::new(0));
        NodeChunk { next, keys, vals }
    }
}

/// A grow-capable latch-free separate-chaining table over owned rows.
///
/// Unlike [`ChainTable`], node ids are not input row numbers: workers
/// reserve slots with a single `fetch_add` and node storage is a series of
/// doubling chunks, so concurrent inserts proceed while the table grows —
/// no published node is ever moved, and the only blocking event is the
/// one-time allocation of a fresh chunk (`OnceLock`, hit `log₂` times over
/// a table's whole life).
///
/// The insert protocol is the same Treiber-style publish as
/// [`ChainTable::insert_unique`]: write the slot's fields (Relaxed, the
/// slot is private until publication), then `compare_exchange` the bucket
/// head; a failed CAS re-scans the newly published prefix of the chain
/// before retrying, so two racing equal tuples resolve to exactly one
/// winner. Slots lost to such races stay reserved but unlinked.
///
/// One deliberate trade-off: the *bucket array* is fixed at construction
/// (concurrently swapping it would reintroduce the latch the paper's
/// protocol avoids), so node storage grows but chains lengthen past the
/// sizing hint — a workload whose insert count dwarfs the hint degrades
/// to longer chain walks, never to incorrectness. Callers should hint
/// generously; [`GrowChainTable::new`] floors the bucket count at 4096
/// (16 KiB) so even a wildly wrong hint keeps short chains for the first
/// couple thousand distinct rows.
pub struct GrowChainTable {
    heads: Vec<AtomicU32>,
    mask: usize,
    width: usize,
    /// Capacity of chunk 0 (power of two); chunk `k` holds `base << k`.
    base: usize,
    chunks: Vec<OnceLock<NodeChunk>>,
    alloc: AtomicUsize,
}

impl GrowChainTable {
    /// Table for rows of `width` values, pre-sizing chunk 0 for
    /// `nodes_hint` nodes and the bucket array for `buckets_hint` buckets
    /// (both rounded up to powers of two). The hints only tune chunk and
    /// chain lengths — inserts beyond them grow the table.
    pub fn new(width: usize, nodes_hint: usize, buckets_hint: usize) -> Self {
        assert!(width > 0, "GrowChainTable rows need at least one column");
        let base = crate::util::next_pow2_at_least(nodes_hint, 64);
        let n_buckets = crate::util::next_pow2_at_least(buckets_hint, 4096);
        let mut heads = Vec::with_capacity(n_buckets);
        heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        let mut chunks = Vec::with_capacity(GROW_CHUNKS);
        chunks.resize_with(GROW_CHUNKS, OnceLock::new);
        GrowChainTable {
            heads,
            mask: n_buckets - 1,
            width,
            base,
            chunks,
            alloc: AtomicUsize::new(0),
        }
    }

    /// Values per stored row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }

    /// Node slots reserved so far (an upper bound on distinct rows: slots
    /// lost to duplicate races stay reserved but never become reachable).
    pub fn slots_reserved(&self) -> usize {
        self.alloc.load(Ordering::Relaxed)
    }

    /// Approximate heap footprint in bytes (allocated chunks only).
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = self.heads.capacity() * 4;
        for (k, chunk) in self.chunks.iter().enumerate() {
            if chunk.get().is_some() {
                bytes += (self.base << k) * (4 + 8 + self.width * 8);
            }
        }
        bytes
    }

    /// Chunk and in-chunk offset of node slot `idx`, allocating the chunk
    /// on first touch. Chunk `k` covers slots `base·(2^k − 1) .. base·(2^(k+1) − 1)`.
    #[inline]
    fn locate(&self, idx: usize) -> (&NodeChunk, usize) {
        let q = idx / self.base + 1;
        let k = (usize::BITS - 1 - q.leading_zeros()) as usize;
        let off = idx - ((1usize << k) - 1) * self.base;
        let chunk = self.chunks[k].get_or_init(|| NodeChunk::new(self.base << k, self.width));
        (chunk, off)
    }

    #[inline]
    fn row_eq(&self, chunk: &NodeChunk, off: usize, row: &[Value]) -> bool {
        let at = off * self.width;
        row.iter()
            .enumerate()
            .all(|(c, &v)| chunk.vals[at + c].load(Ordering::Relaxed) == v)
    }

    /// Walk the chain from `cur`, stopping at `until` (exclusive; `NIL`
    /// walks the whole chain), returning the slot id of an equal row.
    /// Chains are prepend-only, so `until` set to a previously observed
    /// head restricts the scan to nodes published since that observation.
    fn chain_find(&self, mut cur: u32, until: u32, key: u64, row: &[Value]) -> Option<u32> {
        while cur != until && cur != NIL {
            let (chunk, off) = self.locate((cur - 1) as usize);
            if chunk.keys[off].load(Ordering::Relaxed) == key && self.row_eq(chunk, off, row) {
                return Some(cur - 1);
            }
            cur = chunk.next[off].load(Ordering::Relaxed);
        }
        None
    }

    fn chain_contains(&self, cur: u32, until: u32, key: u64, row: &[Value]) -> bool {
        self.chain_find(cur, until, key, row).is_some()
    }

    /// True if an equal row is stored under `key`.
    pub fn contains_row(&self, key: u64, row: &[Value]) -> bool {
        debug_assert_eq!(row.len(), self.width);
        let head = self.heads[bucket_of(key, self.mask)].load(Ordering::Acquire);
        self.chain_contains(head, NIL, key, row)
    }

    /// Slot id of the stored row equal to `row` under `key`, if any. Slot
    /// ids are the values [`GrowChainTable::insert_unique_row_slot`]
    /// returned; under sequential insertion they are dense from 0, which
    /// is what lets side tables index per-row payloads by slot.
    pub fn find_row(&self, key: u64, row: &[Value]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.width);
        let head = self.heads[bucket_of(key, self.mask)].load(Ordering::Acquire);
        self.chain_find(head, NIL, key, row)
    }

    /// Insert `row` under `key` unless an equal row is already stored.
    /// Returns `true` when this call's row won (it was new). Safe to call
    /// from any number of threads concurrently; the caller does not manage
    /// node ids or capacity.
    pub fn insert_unique_row(&self, key: u64, row: &[Value]) -> bool {
        self.insert_unique_row_slot(key, row).is_some()
    }

    /// [`GrowChainTable::insert_unique_row`], but a winning insert returns
    /// the row's slot id (`None` when an equal row already exists). Under
    /// sequential use, slot ids are dense insertion indexes — a race lost
    /// to a concurrent equal insert leaks its reserved slot, so only
    /// single-threaded writers may rely on density.
    pub fn insert_unique_row_slot(&self, key: u64, row: &[Value]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.width);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        if self.chain_contains(head, NIL, key, row) {
            return None;
        }
        // Reserve a slot and fill it privately (Relaxed: unpublished).
        let idx = self.alloc.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx < u32::MAX as usize - 1,
            "GrowChainTable supports < 2^32-1 nodes"
        );
        let (chunk, off) = self.locate(idx);
        chunk.keys[off].store(key, Ordering::Relaxed);
        let at = off * self.width;
        for (c, &v) in row.iter().enumerate() {
            chunk.vals[at + c].store(v, Ordering::Relaxed);
        }
        let node = (idx + 1) as u32;
        loop {
            chunk.next[off].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(idx as u32),
                Err(actual) => {
                    // Lost a race: scan only the newly published prefix
                    // for an equal tuple; the slot leaks if one is found.
                    if self.chain_contains(actual, head, key, row) {
                        return None;
                    }
                    head = actual;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_common::sched::ThreadPool;

    #[test]
    fn multi_insert_and_lookup() {
        let t = ChainTable::with_capacity(10, 4);
        t.insert_multi(0, 42);
        t.insert_multi(1, 42);
        t.insert_multi(2, 7);
        let mut hits: Vec<u32> = t.iter_key(42).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert_eq!(t.iter_key(7).collect::<Vec<_>>(), vec![2]);
        assert_eq!(t.iter_key(999).count(), 0);
    }

    #[test]
    fn unique_insert_rejects_duplicates() {
        let t = ChainTable::with_capacity(10, 4);
        assert!(t.insert_unique(0, 5, |_, _| true));
        assert!(!t.insert_unique(1, 5, |_, _| true));
        assert!(t.insert_unique(2, 6, |_, _| true));
    }

    #[test]
    fn unique_insert_uses_eq_for_collisions() {
        // Same key, but eq says the tuples differ → both inserted.
        let t = ChainTable::with_capacity(10, 4);
        assert!(t.insert_unique(0, 5, |_, _| false));
        assert!(t.insert_unique(1, 5, |_, _| false));
        let mut hits: Vec<u32> = t.iter_key(5).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn contains_checks_predicate() {
        let t = ChainTable::with_capacity(4, 4);
        t.insert_multi(3, 11);
        assert!(t.contains(11, |n| n == 3));
        assert!(!t.contains(11, |n| n == 2));
    }

    #[test]
    fn parallel_unique_inserts_have_exactly_one_winner_per_key() {
        // 64 distinct keys, 16 racing inserts per key.
        let n = 1024u32;
        let t = ChainTable::with_capacity(n as usize, n as usize * 2);
        let pool = ThreadPool::new(8);
        let winners: Vec<std::sync::atomic::AtomicU32> = (0..64)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.parallel_for(n as usize, 8, |range, _| {
            for i in range {
                let key = (i % 64) as u64;
                if t.insert_unique(i as u32, key, |_, _| true) {
                    winners[key as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for w in &winners {
            assert_eq!(w.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn parallel_multi_insert_keeps_every_node() {
        let n = 4096u32;
        let t = ChainTable::with_capacity(n as usize, 64); // long chains on purpose
        let pool = ThreadPool::new(8);
        pool.parallel_for(n as usize, 16, |range, _| {
            for i in range {
                t.insert_multi(i as u32, (i % 32) as u64);
            }
        });
        let total: usize = (0..32u64).map(|k| t.iter_key(k).count()).sum();
        assert_eq!(total, n as usize);
    }

    #[test]
    fn grow_then_insert_preserves_existing_chains() {
        let mut t = ChainTable::with_capacity(4, 4);
        for i in 0..4u32 {
            assert!(t.insert_unique(i, i as u64, |_, _| true));
        }
        t.grow_nodes(8);
        assert_eq!(t.capacity(), 8);
        // Old entries still resolve; duplicates still rejected.
        for i in 0..4u32 {
            assert!(t.contains(i as u64, |n| n == i));
            assert!(!t.insert_unique(4 + i, i as u64, |_, _| true));
        }
        // New slots absorb new keys.
        for i in 4..8u32 {
            assert!(t.insert_unique(i, i as u64, |_, _| true));
        }
        assert_eq!((0..8u64).filter(|&k| t.contains(k, |_| true)).count(), 8);
    }

    #[test]
    fn rehash_relinks_every_node() {
        let mut t = ChainTable::with_capacity(256, 16);
        for i in 0..256u32 {
            t.insert_multi(i, (i % 40) as u64);
        }
        let before: usize = (0..40u64).map(|k| t.iter_key(k).count()).sum();
        t.rehash(512);
        assert_eq!(t.buckets(), 512);
        let after: usize = (0..40u64).map(|k| t.iter_key(k).count()).sum();
        assert_eq!(before, after);
        assert_eq!(after, 256);
        // Shrinking requests are ignored.
        t.rehash(4);
        assert_eq!(t.buckets(), 512);
    }

    #[test]
    fn incremental_growth_matches_scratch_build() {
        // Build one table in 8 grow+insert batches, another in one shot;
        // membership must agree.
        let keys: Vec<u64> = (0..400u64).map(|i| i * 7 % 97).collect();
        let mut inc = ChainTable::with_capacity(0, 4);
        for (batch, chunk) in keys.chunks(50).enumerate() {
            let base = batch * 50;
            inc.grow_nodes(base + chunk.len());
            inc.rehash((base + chunk.len()) * 2);
            for (i, &k) in chunk.iter().enumerate() {
                inc.insert_unique((base + i) as u32, k, |_, _| true);
            }
        }
        let scratch = ChainTable::with_capacity(keys.len(), keys.len() * 2);
        for (i, &k) in keys.iter().enumerate() {
            scratch.insert_unique(i as u32, k, |_, _| true);
        }
        for probe in 0..120u64 {
            assert_eq!(
                inc.contains(probe, |_| true),
                scratch.contains(probe, |_| true),
                "membership diverges at key {probe}"
            );
        }
    }

    #[test]
    fn bucket_count_rounds_up() {
        let t = ChainTable::with_capacity(5, 33);
        assert_eq!(t.buckets(), 64);
        assert_eq!(t.capacity(), 5);
        assert!(t.heap_bytes() >= 64 * 4 + 5 * 12);
    }

    #[test]
    fn grow_table_inserts_across_chunk_boundaries() {
        // base = 64 (floor), so 1000 rows span chunks 0..=3.
        let t = GrowChainTable::new(2, 1, 16);
        for i in 0..1000i64 {
            assert!(t.insert_unique_row(i as u64, &[i, i * 2]));
        }
        assert_eq!(t.slots_reserved(), 1000);
        for i in 0..1000i64 {
            assert!(t.contains_row(i as u64, &[i, i * 2]));
            assert!(!t.contains_row(i as u64, &[i, i * 2 + 1]));
            assert!(!t.insert_unique_row(i as u64, &[i, i * 2]));
        }
        assert!(t.heap_bytes() > 1000 * (4 + 8 + 16));
    }

    #[test]
    fn grow_table_distinguishes_colliding_keys_by_row() {
        // Same key, different rows: both survive; equal rows do not.
        let t = GrowChainTable::new(2, 8, 8);
        assert!(t.insert_unique_row(7, &[1, 2]));
        assert!(t.insert_unique_row(7, &[3, 4]));
        assert!(!t.insert_unique_row(7, &[1, 2]));
        assert!(t.contains_row(7, &[1, 2]));
        assert!(t.contains_row(7, &[3, 4]));
        assert!(!t.contains_row(7, &[5, 6]));
    }

    #[test]
    fn grow_table_parallel_unique_inserts_have_one_winner_per_row() {
        // 64 distinct rows, each raced by 32 inserts across 8 workers,
        // with tiny hints so growth happens under contention.
        let pool = ThreadPool::new(8);
        let t = GrowChainTable::new(2, 4, 16);
        let winners: Vec<std::sync::atomic::AtomicU32> = (0..64)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.parallel_for(64 * 32, 8, |range, _| {
            for i in range {
                let r = (i % 64) as Value;
                if t.insert_unique_row(r as u64 % 13, &[r, r + 1]) {
                    winners[r as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for w in &winners {
            assert_eq!(w.load(Ordering::Relaxed), 1);
        }
        // Reserved slots may exceed winners (lost races leak slots) but
        // never the number of insert attempts.
        assert!(t.slots_reserved() >= 64);
        assert!(t.slots_reserved() <= 64 * 32);
    }
}
