//! The pre-allocated, latch-free global separate-chaining hash table
//! (the paper's GSCHT, Figure 5).
//!
//! Layout follows the paper: a bucket array is pre-allocated "as large as
//! possible … for the purpose of minimizing conflicts in the same bucket,
//! and preventing memory contention", and tuples are inserted in parallel
//! with no latches. We exploit one extra invariant of the Datalog use case:
//! the number of candidate tuples is known up front (it is the row count of
//! the table being deduplicated or built on), so *node storage is one slot
//! per input row* — node `i` is input row `i` — and the hot path performs no
//! allocation at all.
//!
//! Concurrency protocol (Treiber-style publish):
//! 1. the inserting worker writes `keys[i]` and `next[i]` (Relaxed stores to
//!    a slot only it owns pre-publication),
//! 2. publishes with a `compare_exchange(head, i+1, AcqRel, Acquire)`,
//! 3. readers `Acquire`-load the head and walk `next` links; every node
//!    reached was published by a release operation, so its fields are
//!    visible.
//!
//! For unique inserts ([`ChainTable::insert_unique`]) a failed CAS re-walks
//! the chain from the new head before retrying, so two racing equal tuples
//! resolve to exactly one winner.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::key::bucket_of;

/// Sentinel: empty bucket / end of chain (`node index + 1` addressing).
const NIL: u32 = 0;

/// Pre-allocated latch-free separate-chaining table.
///
/// `u32` node indices cap inputs at ~4.29 G rows, far beyond in-memory scale
/// here; [`ChainTable::with_capacity`] asserts it.
pub struct ChainTable {
    heads: Vec<AtomicU32>,
    next: Vec<AtomicU32>,
    keys: Vec<AtomicU64>,
    mask: usize,
}

impl ChainTable {
    /// Table with `nodes` node slots and at least `buckets_hint` buckets
    /// (rounded to a power of two).
    pub fn with_capacity(nodes: usize, buckets_hint: usize) -> Self {
        assert!(
            nodes < u32::MAX as usize,
            "ChainTable supports < 2^32-1 nodes"
        );
        let n_buckets = crate::util::next_pow2_at_least(buckets_hint, 16);
        let mut heads = Vec::with_capacity(n_buckets);
        heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        let mut next = Vec::with_capacity(nodes);
        next.resize_with(nodes, || AtomicU32::new(NIL));
        let mut keys = Vec::with_capacity(nodes);
        keys.resize_with(nodes, || AtomicU64::new(0));
        ChainTable {
            heads,
            next,
            keys,
            mask: n_buckets - 1,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.heads.len()
    }

    /// Number of node slots.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.heads.capacity() * 4 + self.next.capacity() * 4 + self.keys.capacity() * 8
    }

    /// Unconditionally insert node `idx` under `key` (multimap semantics —
    /// join builds).
    pub fn insert_multi(&self, idx: u32, key: u64) {
        self.keys[idx as usize].store(key, Ordering::Relaxed);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            self.next[idx as usize].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, idx + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Insert node `idx` under `key` only if no equal entry exists.
    ///
    /// Returns `true` when `idx` won (its tuple was new). `eq(existing, new)`
    /// decides tuple equality for nodes whose keys collide; with exact packed
    /// keys pass `|_, _| true`.
    pub fn insert_unique<F>(&self, idx: u32, key: u64, eq: F) -> bool
    where
        F: Fn(u32, u32) -> bool,
    {
        self.keys[idx as usize].store(key, Ordering::Relaxed);
        let bucket = &self.heads[bucket_of(key, self.mask)];
        let mut head = bucket.load(Ordering::Acquire);
        loop {
            // Duplicate scan over the whole current chain.
            let mut cur = head;
            while cur != NIL {
                let node = cur - 1;
                if self.keys[node as usize].load(Ordering::Relaxed) == key && eq(node, idx) {
                    return false;
                }
                cur = self.next[node as usize].load(Ordering::Relaxed);
            }
            self.next[idx as usize].store(head, Ordering::Relaxed);
            match bucket.compare_exchange_weak(head, idx + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                // Lost a race: another worker grew this chain. Re-walk from
                // the new head (covers the newly published prefix) and retry.
                Err(actual) => head = actual,
            }
        }
    }

    /// Iterate node indices whose stored key equals `key`.
    pub fn iter_key(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.heads[bucket_of(key, self.mask)].load(Ordering::Acquire);
        std::iter::from_fn(move || {
            while cur != NIL {
                let node = cur - 1;
                cur = self.next[node as usize].load(Ordering::Relaxed);
                if self.keys[node as usize].load(Ordering::Relaxed) == key {
                    return Some(node);
                }
            }
            None
        })
    }

    /// True if some node with `key` satisfies `eq(node)`.
    pub fn contains<F>(&self, key: u64, eq: F) -> bool
    where
        F: Fn(u32) -> bool,
    {
        self.iter_key(key).any(eq)
    }

    /// Extend node storage to at least `nodes` slots, keeping every
    /// existing chain intact. New slots are unlinked until inserted.
    ///
    /// This is what makes a table *appendable*: an index over rows `0..n`
    /// grows to absorb rows `n..m` without rebuilding. Takes `&mut self`,
    /// so growth is a quiescent point between parallel insert phases.
    pub fn grow_nodes(&mut self, nodes: usize) {
        assert!(
            nodes < u32::MAX as usize,
            "ChainTable supports < 2^32-1 nodes"
        );
        if nodes > self.next.len() {
            self.next.resize_with(nodes, || AtomicU32::new(NIL));
            self.keys.resize_with(nodes, || AtomicU64::new(0));
        }
    }

    /// Rebuild the bucket array with at least `buckets_hint` buckets
    /// (rounded to a power of two), relinking every chained node under its
    /// new bucket. Stored keys are reused — no row is re-read and no key is
    /// recomputed, so a rehash costs O(chained nodes) pointer writes.
    ///
    /// No-op when the table already has that many buckets.
    pub fn rehash(&mut self, buckets_hint: usize) {
        let n_buckets = crate::util::next_pow2_at_least(buckets_hint, 16);
        if n_buckets <= self.heads.len() {
            return;
        }
        let mut old_heads = std::mem::take(&mut self.heads);
        self.heads = Vec::with_capacity(n_buckets);
        self.heads.resize_with(n_buckets, || AtomicU32::new(NIL));
        self.mask = n_buckets - 1;
        for head in &mut old_heads {
            let mut cur = *head.get_mut();
            while cur != NIL {
                let node = (cur - 1) as usize;
                let next = *self.next[node].get_mut();
                let key = *self.keys[node].get_mut();
                let bucket = self.heads[bucket_of(key, self.mask)].get_mut();
                *self.next[node].get_mut() = *bucket;
                *bucket = cur;
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recstep_common::sched::ThreadPool;

    #[test]
    fn multi_insert_and_lookup() {
        let t = ChainTable::with_capacity(10, 4);
        t.insert_multi(0, 42);
        t.insert_multi(1, 42);
        t.insert_multi(2, 7);
        let mut hits: Vec<u32> = t.iter_key(42).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert_eq!(t.iter_key(7).collect::<Vec<_>>(), vec![2]);
        assert_eq!(t.iter_key(999).count(), 0);
    }

    #[test]
    fn unique_insert_rejects_duplicates() {
        let t = ChainTable::with_capacity(10, 4);
        assert!(t.insert_unique(0, 5, |_, _| true));
        assert!(!t.insert_unique(1, 5, |_, _| true));
        assert!(t.insert_unique(2, 6, |_, _| true));
    }

    #[test]
    fn unique_insert_uses_eq_for_collisions() {
        // Same key, but eq says the tuples differ → both inserted.
        let t = ChainTable::with_capacity(10, 4);
        assert!(t.insert_unique(0, 5, |_, _| false));
        assert!(t.insert_unique(1, 5, |_, _| false));
        let mut hits: Vec<u32> = t.iter_key(5).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn contains_checks_predicate() {
        let t = ChainTable::with_capacity(4, 4);
        t.insert_multi(3, 11);
        assert!(t.contains(11, |n| n == 3));
        assert!(!t.contains(11, |n| n == 2));
    }

    #[test]
    fn parallel_unique_inserts_have_exactly_one_winner_per_key() {
        // 64 distinct keys, 16 racing inserts per key.
        let n = 1024u32;
        let t = ChainTable::with_capacity(n as usize, n as usize * 2);
        let pool = ThreadPool::new(8);
        let winners: Vec<std::sync::atomic::AtomicU32> = (0..64)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        pool.parallel_for(n as usize, 8, |range, _| {
            for i in range {
                let key = (i % 64) as u64;
                if t.insert_unique(i as u32, key, |_, _| true) {
                    winners[key as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for w in &winners {
            assert_eq!(w.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn parallel_multi_insert_keeps_every_node() {
        let n = 4096u32;
        let t = ChainTable::with_capacity(n as usize, 64); // long chains on purpose
        let pool = ThreadPool::new(8);
        pool.parallel_for(n as usize, 16, |range, _| {
            for i in range {
                t.insert_multi(i as u32, (i % 32) as u64);
            }
        });
        let total: usize = (0..32u64).map(|k| t.iter_key(k).count()).sum();
        assert_eq!(total, n as usize);
    }

    #[test]
    fn grow_then_insert_preserves_existing_chains() {
        let mut t = ChainTable::with_capacity(4, 4);
        for i in 0..4u32 {
            assert!(t.insert_unique(i, i as u64, |_, _| true));
        }
        t.grow_nodes(8);
        assert_eq!(t.capacity(), 8);
        // Old entries still resolve; duplicates still rejected.
        for i in 0..4u32 {
            assert!(t.contains(i as u64, |n| n == i));
            assert!(!t.insert_unique(4 + i, i as u64, |_, _| true));
        }
        // New slots absorb new keys.
        for i in 4..8u32 {
            assert!(t.insert_unique(i, i as u64, |_, _| true));
        }
        assert_eq!((0..8u64).filter(|&k| t.contains(k, |_| true)).count(), 8);
    }

    #[test]
    fn rehash_relinks_every_node() {
        let mut t = ChainTable::with_capacity(256, 16);
        for i in 0..256u32 {
            t.insert_multi(i, (i % 40) as u64);
        }
        let before: usize = (0..40u64).map(|k| t.iter_key(k).count()).sum();
        t.rehash(512);
        assert_eq!(t.buckets(), 512);
        let after: usize = (0..40u64).map(|k| t.iter_key(k).count()).sum();
        assert_eq!(before, after);
        assert_eq!(after, 256);
        // Shrinking requests are ignored.
        t.rehash(4);
        assert_eq!(t.buckets(), 512);
    }

    #[test]
    fn incremental_growth_matches_scratch_build() {
        // Build one table in 8 grow+insert batches, another in one shot;
        // membership must agree.
        let keys: Vec<u64> = (0..400u64).map(|i| i * 7 % 97).collect();
        let mut inc = ChainTable::with_capacity(0, 4);
        for (batch, chunk) in keys.chunks(50).enumerate() {
            let base = batch * 50;
            inc.grow_nodes(base + chunk.len());
            inc.rehash((base + chunk.len()) * 2);
            for (i, &k) in chunk.iter().enumerate() {
                inc.insert_unique((base + i) as u32, k, |_, _| true);
            }
        }
        let scratch = ChainTable::with_capacity(keys.len(), keys.len() * 2);
        for (i, &k) in keys.iter().enumerate() {
            scratch.insert_unique(i as u32, k, |_, _| true);
        }
        for probe in 0..120u64 {
            assert_eq!(
                inc.contains(probe, |_| true),
                scratch.contains(probe, |_| true),
                "membership diverges at key {probe}"
            );
        }
    }

    #[test]
    fn bucket_count_rounds_up() {
        let t = ChainTable::with_capacity(5, 33);
        assert_eq!(t.buckets(), 64);
        assert_eq!(t.capacity(), 5);
        assert!(t.heap_bytes() >= 64 * 4 + 5 * 12);
    }
}
