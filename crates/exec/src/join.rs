//! Parallel hash joins, anti joins (stratified negation), cross joins and
//! standalone projection/selection.
//!
//! All variants share the flattened-row convention of [`crate::expr`]: the
//! output expressions and residual predicates see `[left row ‖ right row]`
//! regardless of which physical side the hash table was built on — the
//! build-side choice (the knob OOF re-optimizes every iteration) is purely
//! physical.
//!
//! Every producing operator additionally comes in a `*_sink` form taking a
//! [`SinkMode`]: in `Delta` mode the worker offers each output row to a
//! [`crate::sink::DeltaSink`] right at the probe site and buffers only
//! fresh tuples — the fused streaming pipeline that stops materializing
//! the UNION-ALL intermediate `Rt`. The plain forms are thin
//! `Materialize` wrappers, so existing callers and the ablation path are
//! untouched.

use recstep_common::Value;
use recstep_storage::RelView;

use crate::chain::ChainTable;
use crate::expr::{eval_all, Expr, Predicate};
use crate::key::KeyMode;
use crate::sink::SinkMode;
use crate::util::{parallel_fill, parallel_produce, CapGate, ColBuf};
use crate::ExecCtx;

/// Emit one flattened row through the sink policy. Returns `true` when a
/// row was materialized into `buf` (what counts against a producer's row
/// cap); in `Delta` mode duplicates are dropped here, at the probe site.
#[inline]
fn emit_row(
    sink: &SinkMode<'_>,
    output: &[Expr],
    row: &[Value],
    buf: &mut ColBuf,
    out_row: &mut Vec<Value>,
    considered: &mut usize,
) -> bool {
    match sink {
        SinkMode::Materialize => {
            for (c, e) in output.iter().enumerate() {
                buf.push_at(c, e.eval(row));
            }
            true
        }
        SinkMode::Delta(s) => {
            out_row.clear();
            out_row.extend(output.iter().map(|e| e.eval(row)));
            *considered += 1;
            if s.offer(out_row) {
                buf.push_row(out_row);
                true
            } else {
                false
            }
        }
        SinkMode::Agg(s) => {
            out_row.clear();
            out_row.extend(output.iter().map(|e| e.eval(row)));
            *considered += 1;
            // Folded into the aggregation state at source; never buffered.
            s.offer(out_row);
            false
        }
    }
}

/// Publish a worker's per-morsel offered-row count (no-op when
/// materializing).
#[inline]
fn flush_considered(sink: &SinkMode<'_>, considered: usize) {
    match sink {
        SinkMode::Delta(s) => s.note_considered(considered),
        SinkMode::Agg(s) => s.note_considered(considered),
        SinkMode::Materialize => {}
    }
}

/// Specification of a binary equi-join.
pub struct JoinSpec<'a> {
    /// Join key columns on the left input.
    pub left_keys: &'a [usize],
    /// Join key columns on the right input (pairwise equal to `left_keys`).
    pub right_keys: &'a [usize],
    /// Build the hash table on the left input (otherwise on the right).
    pub build_left: bool,
    /// Output expressions over the flattened `[left ‖ right]` row.
    pub output: &'a [Expr],
    /// Residual predicates over the flattened row (non-equi conditions).
    pub residual: &'a [Predicate],
}

/// Hash equi-join of two views.
///
/// Returns the projected output column-major. Duplicates are *not* removed —
/// Algorithm 1 separates `uieval` from `dedup` (UNION ALL semantics).
pub fn hash_join(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    spec: &JoinSpec<'_>,
) -> Vec<Vec<Value>> {
    hash_join_sink(ctx, left, right, spec, &SinkMode::Materialize)
}

/// [`hash_join`] with an output sink (the fused-pipeline entry point).
pub fn hash_join_sink(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    spec: &JoinSpec<'_>,
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    assert_eq!(spec.left_keys.len(), spec.right_keys.len());
    if left.is_empty() || right.is_empty() {
        return vec![Vec::new(); spec.output.len()];
    }
    let mode = KeyMode::for_views(left, spec.left_keys, right, spec.right_keys);
    let (build, build_cols) = if spec.build_left {
        (left, spec.left_keys)
    } else {
        (right, spec.right_keys)
    };
    let table = build_table(ctx, build, build_cols, &mode);
    hash_join_prebuilt_sink(ctx, left, right, spec, &table, &mode, sink)
}

/// Hash equi-join probing an already-built table over the build side
/// (chosen by `spec.build_left`) — the reuse path for persistent join
/// indexes kept across fixpoint iterations.
///
/// `table` must map node `i` to build-side row `i` for every build-side
/// row, with keys produced by `mode` over the build-side key columns, and
/// `mode` must be able to represent the probe side's key values (packed
/// layouts are verified with `KeyLayout::covers` before reuse).
pub fn hash_join_prebuilt(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    spec: &JoinSpec<'_>,
    table: &ChainTable,
    mode: &KeyMode,
) -> Vec<Vec<Value>> {
    hash_join_prebuilt_sink(ctx, left, right, spec, table, mode, &SinkMode::Materialize)
}

/// [`hash_join_prebuilt`] with an output sink: in `Delta` mode each probe
/// match immediately probes the full-`R` index and races into the scratch
/// table, so duplicate join outputs are never buffered.
pub fn hash_join_prebuilt_sink(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    spec: &JoinSpec<'_>,
    table: &ChainTable,
    mode: &KeyMode,
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    assert_eq!(spec.left_keys.len(), spec.right_keys.len());
    let out_arity = spec.output.len();
    if left.is_empty() || right.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    let (build, probe, build_cols, probe_cols) = if spec.build_left {
        (left, right, spec.left_keys, spec.right_keys)
    } else {
        (right, left, spec.right_keys, spec.left_keys)
    };
    debug_assert!(table.capacity() >= build.len());
    let exact = mode.exact();
    let la = left.arity();
    let width = la + right.arity();
    // Producers stop once `cap` rows are out; the caller reports outputs
    // reaching the cap as out-of-memory (see `CapGate`). In `Delta` mode
    // only fresh rows count — duplicates occupy no memory.
    let gate = CapGate::new(ctx.row_cap);

    parallel_produce(
        &ctx.pool,
        probe.len(),
        ctx.grain,
        out_arity,
        |range, buf| {
            let Some(mut snapshot) = gate.start() else {
                return;
            };
            let mut local = 0usize;
            let mut considered = 0usize;
            let mut scratch = Vec::new();
            let mut out_row = Vec::new();
            let mut row = vec![0 as Value; width];
            for pr in range {
                if gate.reached(&mut snapshot, &mut local) {
                    break;
                }
                let key = mode.key_of(probe, pr, probe_cols, &mut scratch);
                for node in table.iter_key(key) {
                    let br = node as usize;
                    if !exact && !keys_match(build, br, build_cols, probe, pr, probe_cols) {
                        continue;
                    }
                    // Flatten into logical [left ‖ right] order.
                    let (lr, rr) = if spec.build_left { (br, pr) } else { (pr, br) };
                    #[allow(clippy::needless_range_loop)]
                    for c in 0..la {
                        row[c] = left.get(lr, c);
                    }
                    for c in 0..right.arity() {
                        row[la + c] = right.get(rr, c);
                    }
                    if eval_all(spec.residual, &row)
                        && emit_row(sink, spec.output, &row, buf, &mut out_row, &mut considered)
                    {
                        local += 1;
                    }
                }
            }
            flush_considered(sink, considered);
            gate.commit(local);
        },
    )
}

/// Anti join: rows of `left` with **no** key match in `right`, projected
/// through `output` (expressions over the left row only). This implements
/// negated body atoms under stratified negation.
pub fn anti_join(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    left_keys: &[usize],
    right_keys: &[usize],
    output: &[Expr],
) -> Vec<Vec<Value>> {
    anti_join_sink(
        ctx,
        left,
        right,
        left_keys,
        right_keys,
        output,
        &SinkMode::Materialize,
    )
}

/// [`anti_join`] with an output sink (the fused-pipeline entry point).
#[allow(clippy::too_many_arguments)]
pub fn anti_join_sink(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    left_keys: &[usize],
    right_keys: &[usize],
    output: &[Expr],
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    let out_arity = output.len();
    if left.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    if right.is_empty() {
        // Nothing to reject: pure projection.
        return project_filter_sink(ctx, left, output, &[], sink);
    }
    let mode = KeyMode::for_views(left, left_keys, right, right_keys);
    let table = build_table(ctx, right, right_keys, &mode);
    anti_join_prebuilt_sink(
        ctx, left, right, left_keys, right_keys, output, &table, &mode, sink,
    )
}

/// Anti join probing an already-built table over `right` (node `i` = right
/// row `i`, keys by `mode` over `right_keys`) — the reuse path for
/// persistent negation indexes. Same prerequisites as
/// [`hash_join_prebuilt`].
#[allow(clippy::too_many_arguments)]
pub fn anti_join_prebuilt(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    left_keys: &[usize],
    right_keys: &[usize],
    output: &[Expr],
    table: &ChainTable,
    mode: &KeyMode,
) -> Vec<Vec<Value>> {
    anti_join_prebuilt_sink(
        ctx,
        left,
        right,
        left_keys,
        right_keys,
        output,
        table,
        mode,
        &SinkMode::Materialize,
    )
}

/// [`anti_join_prebuilt`] with an output sink.
#[allow(clippy::too_many_arguments)]
pub fn anti_join_prebuilt_sink(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    left_keys: &[usize],
    right_keys: &[usize],
    output: &[Expr],
    table: &ChainTable,
    mode: &KeyMode,
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    let out_arity = output.len();
    if left.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    if right.is_empty() {
        return project_filter_sink(ctx, left, output, &[], sink);
    }
    debug_assert!(table.capacity() >= right.len());
    let exact = mode.exact();
    parallel_produce(&ctx.pool, left.len(), ctx.grain, out_arity, |range, buf| {
        let mut scratch = Vec::new();
        let mut out_row = Vec::new();
        let mut considered = 0usize;
        let mut row = Vec::new();
        for lr in range {
            let key = mode.key_of(left, lr, left_keys, &mut scratch);
            let hit = table.iter_key(key).any(|node| {
                exact || keys_match(right, node as usize, right_keys, left, lr, left_keys)
            });
            if !hit {
                left.copy_row(lr, &mut row);
                emit_row(sink, output, &row, buf, &mut out_row, &mut considered);
            }
        }
        flush_considered(sink, considered);
    })
}

/// Cartesian product with residual predicates (for key-less body pairs such
/// as `node(x), node(y)` in the complement-of-TC program).
pub fn cross_join(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    output: &[Expr],
    residual: &[Predicate],
) -> Vec<Vec<Value>> {
    cross_join_sink(ctx, left, right, output, residual, &SinkMode::Materialize)
}

/// [`cross_join`] with an output sink.
pub fn cross_join_sink(
    ctx: &ExecCtx,
    left: RelView<'_>,
    right: RelView<'_>,
    output: &[Expr],
    residual: &[Predicate],
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    let out_arity = output.len();
    if left.is_empty() || right.is_empty() {
        return vec![Vec::new(); out_arity];
    }
    let la = left.arity();
    let width = la + right.arity();
    let gate = CapGate::new(ctx.row_cap);
    parallel_produce(
        &ctx.pool,
        left.len(),
        1.max(ctx.grain / right.len().max(1)),
        out_arity,
        |range, buf| {
            let Some(mut snapshot) = gate.start() else {
                return;
            };
            let mut local = 0usize;
            let mut considered = 0usize;
            let mut out_row = Vec::new();
            let mut row = vec![0 as Value; width];
            for lr in range {
                if gate.reached(&mut snapshot, &mut local) {
                    break;
                }
                #[allow(clippy::needless_range_loop)]
                for c in 0..la {
                    row[c] = left.get(lr, c);
                }
                for rr in 0..right.len() {
                    for c in 0..right.arity() {
                        row[la + c] = right.get(rr, c);
                    }
                    if eval_all(residual, &row)
                        && emit_row(sink, output, &row, buf, &mut out_row, &mut considered)
                    {
                        local += 1;
                    }
                }
            }
            flush_considered(sink, considered);
            gate.commit(local);
        },
    )
}

/// Projection + selection over a single view (single-atom rule bodies).
pub fn project_filter(
    ctx: &ExecCtx,
    view: RelView<'_>,
    output: &[Expr],
    residual: &[Predicate],
) -> Vec<Vec<Value>> {
    project_filter_sink(ctx, view, output, residual, &SinkMode::Materialize)
}

/// [`project_filter`] with an output sink.
pub fn project_filter_sink(
    ctx: &ExecCtx,
    view: RelView<'_>,
    output: &[Expr],
    residual: &[Predicate],
    sink: &SinkMode<'_>,
) -> Vec<Vec<Value>> {
    let out_arity = output.len();
    parallel_produce(&ctx.pool, view.len(), ctx.grain, out_arity, |range, buf| {
        let mut row = Vec::new();
        let mut out_row = Vec::new();
        let mut considered = 0usize;
        for r in range {
            view.copy_row(r, &mut row);
            if eval_all(residual, &row) {
                emit_row(sink, output, &row, buf, &mut out_row, &mut considered);
            }
        }
        flush_considered(sink, considered);
    })
}

fn build_table(
    ctx: &ExecCtx,
    build: RelView<'_>,
    build_cols: &[usize],
    mode: &KeyMode,
) -> ChainTable {
    let n = build.len();
    let keys = parallel_fill(&ctx.pool, n, ctx.grain, 0u64, |r| {
        let mut scratch = Vec::new();
        mode.key_of(build, r, build_cols, &mut scratch)
    });
    let table = ChainTable::with_capacity(n, n * 2);
    ctx.pool.parallel_for(n, ctx.grain, |range, _| {
        for r in range {
            table.insert_multi(r as u32, keys[r]);
        }
    });
    table
}

#[inline]
fn keys_match(
    a: RelView<'_>,
    ar: usize,
    a_cols: &[usize],
    b: RelView<'_>,
    br: usize,
    b_cols: &[usize],
) -> bool {
    a_cols
        .iter()
        .zip(b_cols)
        .all(|(&ca, &cb)| a.get(ar, ca) == b.get(br, cb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use recstep_storage::{Relation, Schema};
    use std::collections::HashSet;

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    fn rows_of(cols: &[Vec<Value>]) -> HashSet<Vec<Value>> {
        (0..cols.first().map_or(0, Vec::len))
            .map(|r| cols.iter().map(|c| c[r]).collect())
            .collect()
    }

    fn arc() -> Relation {
        Relation::from_rows(
            Schema::new("arc", &["x", "y"]),
            &[vec![1, 2], vec![2, 3], vec![3, 4], vec![2, 4]],
        )
    }

    #[test]
    fn tc_step_join() {
        // tc(x,y) :- tc(x,z), arc(z,y): join tc.y = arc.x, project (tc.x, arc.y).
        let tc = arc();
        let a = arc();
        let spec = JoinSpec {
            left_keys: &[1],
            right_keys: &[0],
            build_left: false,
            output: &[Expr::Col(0), Expr::Col(3)],
            residual: &[],
        };
        let out = hash_join(&ctx(), tc.view(), a.view(), &spec);
        let expect: HashSet<Vec<Value>> = [vec![1, 3], vec![1, 4], vec![2, 4], vec![2, 4]]
            .into_iter()
            .collect();
        // 2-hop paths from the 4 edges (1-2-3, 1-2-4, 2-3-4).
        assert_eq!(rows_of(&out), expect);
        // Duplicates are preserved (UNION ALL semantics): 1→2→3, 1→2→4, 2→3→4.
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn build_side_choice_does_not_change_results() {
        let l = arc();
        let r = arc();
        let mk = |build_left| JoinSpec {
            left_keys: &[1],
            right_keys: &[0],
            build_left,
            output: &[Expr::Col(0), Expr::Col(3)],
            residual: &[],
        };
        let a = hash_join(&ctx(), l.view(), r.view(), &mk(true));
        let b = hash_join(&ctx(), l.view(), r.view(), &mk(false));
        assert_eq!(rows_of(&a), rows_of(&b));
        assert_eq!(a[0].len(), b[0].len());
    }

    #[test]
    fn residual_predicates_filter_matches() {
        // Same-generation seed: sg(x,y) :- arc(p,x), arc(p,y), x != y.
        let a = arc();
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left: true,
            output: &[Expr::Col(1), Expr::Col(3)],
            residual: &[Predicate {
                lhs: Expr::Col(1),
                op: CmpOp::Ne,
                rhs: Expr::Col(3),
            }],
        };
        let out = hash_join(&ctx(), a.view(), a.view(), &spec);
        let expect: HashSet<Vec<Value>> = [vec![3, 4], vec![4, 3]].into_iter().collect();
        assert_eq!(rows_of(&out), expect);
    }

    #[test]
    fn multi_column_keys() {
        let l = Relation::from_rows(
            Schema::with_arity("l", 3),
            &[vec![1, 2, 10], vec![1, 3, 20], vec![2, 2, 30]],
        );
        let r = Relation::from_rows(
            Schema::with_arity("r", 3),
            &[vec![1, 2, 100], vec![2, 2, 200], vec![9, 9, 300]],
        );
        let spec = JoinSpec {
            left_keys: &[0, 1],
            right_keys: &[0, 1],
            build_left: false,
            output: &[Expr::Col(2), Expr::Col(5)],
            residual: &[],
        };
        let out = hash_join(&ctx(), l.view(), r.view(), &spec);
        let expect: HashSet<Vec<Value>> = [vec![10, 100], vec![30, 200]].into_iter().collect();
        assert_eq!(rows_of(&out), expect);
    }

    #[test]
    fn wide_keys_fall_back_to_hash_verify() {
        let l = Relation::from_rows(
            Schema::with_arity("l", 2),
            &[vec![Value::MIN, 1], vec![Value::MAX, 2]],
        );
        let r = Relation::from_rows(
            Schema::with_arity("r", 2),
            &[vec![Value::MIN, 10], vec![Value::MAX, 20], vec![0, 30]],
        );
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left: false,
            output: &[Expr::Col(1), Expr::Col(3)],
            residual: &[],
        };
        let out = hash_join(&ctx(), l.view(), r.view(), &spec);
        let expect: HashSet<Vec<Value>> = [vec![1, 10], vec![2, 20]].into_iter().collect();
        assert_eq!(rows_of(&out), expect);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let e = Relation::new(Schema::with_arity("e", 2));
        let a = arc();
        let spec = JoinSpec {
            left_keys: &[1],
            right_keys: &[0],
            build_left: true,
            output: &[Expr::Col(0)],
            residual: &[],
        };
        let out = hash_join(&ctx(), e.view(), a.view(), &spec);
        assert!(out[0].is_empty());
        let out = hash_join(&ctx(), a.view(), e.view(), &spec);
        assert!(out[0].is_empty());
    }

    #[test]
    fn anti_join_keeps_unmatched_rows() {
        let l = Relation::from_rows(
            Schema::with_arity("l", 2),
            &[vec![1, 10], vec![2, 20], vec![3, 30]],
        );
        let r = Relation::from_rows(Schema::with_arity("r", 1), &[vec![2]]);
        let out = anti_join(
            &ctx(),
            l.view(),
            r.view(),
            &[0],
            &[0],
            &[Expr::Col(0), Expr::Col(1)],
        );
        let expect: HashSet<Vec<Value>> = [vec![1, 10], vec![3, 30]].into_iter().collect();
        assert_eq!(rows_of(&out), expect);
    }

    #[test]
    fn anti_join_against_empty_right_is_projection() {
        let l = arc();
        let e = Relation::new(Schema::with_arity("e", 2));
        let out = anti_join(
            &ctx(),
            l.view(),
            e.view(),
            &[0, 1],
            &[0, 1],
            &[Expr::Col(0)],
        );
        assert_eq!(out[0].len(), 4);
    }

    #[test]
    fn cross_join_with_residual() {
        let n = Relation::from_rows(Schema::with_arity("n", 1), &[vec![1], vec![2], vec![3]]);
        let out = cross_join(
            &ctx(),
            n.view(),
            n.view(),
            &[Expr::Col(0), Expr::Col(1)],
            &[Predicate {
                lhs: Expr::Col(0),
                op: CmpOp::Lt,
                rhs: Expr::Col(1),
            }],
        );
        let expect: HashSet<Vec<Value>> =
            [vec![1, 2], vec![1, 3], vec![2, 3]].into_iter().collect();
        assert_eq!(rows_of(&out), expect);
    }

    #[test]
    fn project_filter_applies_exprs() {
        let a = arc();
        let out = project_filter(
            &ctx(),
            a.view(),
            &[Expr::add(Expr::Col(0), Expr::Col(1))],
            &[Predicate {
                lhs: Expr::Col(0),
                op: CmpOp::Gt,
                rhs: Expr::Const(1),
            }],
        );
        let mut sums = out[0].clone();
        sums.sort_unstable();
        assert_eq!(sums, vec![5, 6, 7]); // rows (2,3),(3,4),(2,4)
    }

    #[test]
    fn delta_sink_join_emits_exactly_the_fresh_distinct_rows() {
        use crate::index::PersistentIndex;
        use crate::sink::{DeltaSink, SinkMode};
        // tc ⋈ arc with a sink over base R: output must equal
        // dedup(join) − R, computed here via the materializing join.
        let ctx = ctx();
        let tc = arc();
        let a = arc();
        let base = Relation::from_rows(
            Schema::with_arity("r", 2),
            &[vec![1, 3], vec![7, 7]], // (1,3) is a join output, (7,7) is not
        );
        let spec = JoinSpec {
            left_keys: &[1],
            right_keys: &[0],
            build_left: false,
            output: &[Expr::Col(0), Expr::Col(3)],
            residual: &[],
        };
        let materialized = hash_join(&ctx, tc.view(), a.view(), &spec);
        let mut oracle = rows_of(&materialized);
        oracle.retain(|r| r != &vec![1, 3]);

        let index = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&index, base.view(), 16);
        let fused = hash_join_sink(&ctx, tc.view(), a.view(), &spec, &SinkMode::Delta(&sink));
        assert_eq!(rows_of(&fused), oracle);
        // No duplicates buffered: row count equals the distinct count.
        assert_eq!(fused[0].len(), oracle.len());
        // Every produced tuple was considered, duplicates included.
        assert_eq!(sink.considered(), materialized[0].len());
    }

    #[test]
    fn delta_sink_threads_through_anti_join_and_projection() {
        use crate::index::PersistentIndex;
        use crate::sink::{DeltaSink, SinkMode};
        let ctx = ctx();
        let l = Relation::from_rows(
            Schema::with_arity("l", 2),
            &[vec![1, 10], vec![2, 20], vec![3, 30], vec![3, 30]],
        );
        let r = Relation::from_rows(Schema::with_arity("r", 1), &[vec![2]]);
        // Two base rows so the packed layout's bounds cover (3, 30).
        let base = Relation::from_rows(Schema::with_arity("b", 2), &[vec![1, 10], vec![5, 50]]);
        let index = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&index, base.view(), 8);
        let out = anti_join_sink(
            &ctx,
            l.view(),
            r.view(),
            &[0],
            &[0],
            &[Expr::Col(0), Expr::Col(1)],
            &SinkMode::Delta(&sink),
        );
        // (2,20) rejected by the anti join, (1,10) already in base,
        // (3,30) deduplicated to one row.
        assert_eq!(rows_of(&out), [vec![3, 30]].into_iter().collect());
        assert_eq!(out[0].len(), 1);
    }

    #[test]
    fn large_join_matches_nested_loop_oracle() {
        let mut l = Relation::new(Schema::with_arity("l", 2));
        let mut r = Relation::new(Schema::with_arity("r", 2));
        for i in 0..2000i64 {
            l.push_row(&[i % 97, i]);
            r.push_row(&[i % 89, i]);
        }
        let spec = JoinSpec {
            left_keys: &[0],
            right_keys: &[0],
            build_left: true,
            output: &[Expr::Col(1), Expr::Col(3)],
            residual: &[],
        };
        let out = hash_join(&ctx(), l.view(), r.view(), &spec);
        let mut oracle = 0usize;
        for i in 0..2000i64 {
            for j in 0..2000i64 {
                if i % 97 == j % 89 {
                    oracle += 1;
                }
            }
        }
        assert_eq!(out[0].len(), oracle);
    }
}
