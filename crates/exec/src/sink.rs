//! The fused streaming delta pipeline: dedup + set difference pushed into
//! the producing operator's probe loop.
//!
//! Algorithm 1 materializes the full UNION-ALL intermediate `Rt` before a
//! second pass deduplicates it and subtracts `R` — on transitive closure
//! the duplication factor of `Rt` is enormous, so most of what gets
//! copied, merged and re-scanned is thrown away. A [`DeltaSink`] removes
//! the intermediate entirely: every morsel worker of the *final* operator
//! of a subquery offers each produced row to the sink, which
//!
//! 1. packs/hashes the whole tuple once ([`crate::key::KeyMode`]),
//! 2. probes the per-stratum full-`R` [`PersistentIndex`] (set membership
//!    in `R`), and
//! 3. races an `insert_unique_row` into a shared iteration-scratch
//!    [`GrowChainTable`] (dedup *within* the candidates, across all rules
//!    of the IDB — UNION ALL dedups at source).
//!
//! Only CAS winners — exactly `∆R` — are buffered; duplicates are never
//! pushed into a column buffer, never merged, never re-scanned. The
//! scratch table is grow-capable because join output cardinality is
//! unknown up front (see [`GrowChainTable`]).
//!
//! ## Compact-key escapes
//!
//! A packed key layout derived from `R`'s bounds may not represent a
//! candidate value. Such a row provably equals *no* packed-fitting tuple
//! (a tuple fits iff each of its values fits, so equal tuples fit or
//! escape together) — it is neither in `R` nor equal to any sink winner.
//! Escaped rows are parked in an overflow list and only need dedup among
//! themselves; the caller folds the survivors into `∆R` and the
//! subsequent index `append` performs the one-time hashed rebuild.
//!
//! [`SinkMode`] is the switch operators consume: `Materialize` preserves
//! the UNION-ALL contract (every row is buffered), `Delta` streams rows
//! through a sink. The materializing mode stays available behind
//! `--no-fused-pipeline` for ablations and for paths that genuinely need
//! a materialized `Rt` (OOF-FA statistics, per-query temp-table spills).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use recstep_common::Value;
use recstep_storage::RelView;

use crate::chain::GrowChainTable;
use crate::index::PersistentIndex;
use crate::key::KeyMode;

/// How a producing operator disposes of its output rows.
pub enum SinkMode<'a> {
    /// Buffer every row (UNION ALL semantics; Algorithm 1's `uieval`).
    Materialize,
    /// Stream rows through a fused dedup + set-difference sink; only
    /// fresh rows are buffered.
    Delta(&'a DeltaSink<'a>),
}

/// Shared per-iteration state of one fused streaming pass: the full-`R`
/// index to probe, the scratch table deduplicating candidates, and the
/// overflow list for compact-key escapes.
pub struct DeltaSink<'a> {
    index: &'a PersistentIndex,
    base: RelView<'a>,
    mode: KeyMode,
    exact: bool,
    arity: usize,
    scratch: GrowChainTable,
    /// Rows escaping a packed key layout, flattened row-major (rare; at
    /// most one iteration per stratum sees any, right before the index's
    /// one-time hashed rebuild).
    overflow: Mutex<Vec<Value>>,
    considered: AtomicUsize,
}

impl<'a> DeltaSink<'a> {
    /// Sink probing `index` (whole-tuple keys over `base`, which must be
    /// the relation the index covers). `fresh_hint` pre-sizes the scratch
    /// table — an estimate of `|∆R|`, not a cap.
    pub fn new(index: &'a PersistentIndex, base: RelView<'a>, fresh_hint: usize) -> Self {
        assert_eq!(
            index.rows(),
            base.len(),
            "index out of sync with its base relation"
        );
        let arity = base.arity();
        assert!(
            index.key_cols().iter().copied().eq(0..arity),
            "fused sink requires whole-tuple index keys"
        );
        // An index over an empty relation has no key mode yet (deferred
        // choice); hash for this iteration — nothing is probed anyway,
        // and the merge's `append` picks the real mode from `R`'s bounds.
        let mode = if base.is_empty() {
            KeyMode::Hashed
        } else {
            index.mode().clone()
        };
        let exact = mode.exact();
        let hint = fresh_hint.max(64);
        DeltaSink {
            index,
            base,
            mode,
            exact,
            arity,
            scratch: GrowChainTable::new(arity, hint, hint.saturating_mul(2)),
            overflow: Mutex::new(Vec::new()),
            considered: AtomicUsize::new(0),
        }
    }

    /// Offer one produced row (head layout). Returns `true` when the row
    /// is fresh — not in `R`, not yet offered this iteration — and should
    /// be buffered as part of `∆R`. Duplicates and escapes return `false`
    /// and must not be buffered. Callable from any worker concurrently.
    #[inline]
    pub fn offer(&self, row: &[Value]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let Some(key) = self.mode.try_key_of_row(row) else {
            self.overflow.lock().extend_from_slice(row);
            return false;
        };
        if !self.base.is_empty() {
            let in_base = self.index.table().iter_key(key).any(|node| {
                self.exact || (0..self.arity).all(|c| self.base.get(node as usize, c) == row[c])
            });
            if in_base {
                return false;
            }
        }
        self.scratch.insert_unique_row(key, row)
    }

    /// Fold a worker's per-morsel count of offered rows into the shared
    /// total (one atomic add per morsel keeps the hot path clean).
    pub fn note_considered(&self, n: usize) {
        if n > 0 {
            self.considered.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows offered across all workers — `|Rt|` of the materializing
    /// path, without `Rt` ever existing.
    pub fn considered(&self) -> usize {
        self.considered.load(Ordering::Relaxed)
    }

    /// Approximate scratch-table heap footprint.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.heap_bytes()
    }

    /// Drain the compact-key escapes (row-major). May contain duplicates
    /// of each other, never of `R` or of sink winners.
    pub fn take_overflow(&self) -> Vec<Vec<Value>> {
        let flat = std::mem::take(&mut *self.overflow.lock());
        flat.chunks(self.arity).map(<[Value]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecCtx;
    use recstep_storage::{Relation, Schema};

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    #[test]
    fn offer_filters_base_members_and_duplicates() {
        let ctx = ctx();
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![0, 0], vec![9, 90]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 8);
        assert!(!sink.offer(&[9, 90]), "already in R");
        assert!(sink.offer(&[3, 30]), "fresh");
        assert!(!sink.offer(&[3, 30]), "duplicate candidate");
        assert!(sink.offer(&[4, 40]));
        sink.note_considered(4);
        assert_eq!(sink.considered(), 4);
        assert!(sink.take_overflow().is_empty());
        assert!(sink.scratch_bytes() > 0);
    }

    #[test]
    fn packed_escapes_land_in_overflow() {
        let ctx = ctx();
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![1, 2], vec![100, 200]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        assert!(idx.mode().exact(), "small values pack");
        let sink = DeltaSink::new(&idx, base.view(), 8);
        assert!(!sink.offer(&[Value::MIN, Value::MAX]), "escape is parked");
        assert!(!sink.offer(&[Value::MIN, Value::MAX]), "parked again");
        assert!(sink.offer(&[3, 4]), "fitting rows still stream");
        let overflow = sink.take_overflow();
        assert_eq!(
            overflow,
            vec![vec![Value::MIN, Value::MAX], vec![Value::MIN, Value::MAX]]
        );
        assert!(sink.take_overflow().is_empty(), "drained");
    }

    #[test]
    fn empty_base_defers_to_hashed_and_accepts_everything_once() {
        let ctx = ctx();
        let base = Relation::new(Schema::with_arity("r", 2));
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 4);
        // No escapes possible in hashed mode, even for extreme values.
        assert!(sink.offer(&[Value::MIN, Value::MAX]));
        assert!(!sink.offer(&[Value::MIN, Value::MAX]));
        assert!(sink.offer(&[0, 0]));
        assert!(sink.take_overflow().is_empty());
    }

    #[test]
    fn concurrent_offers_produce_each_fresh_row_once() {
        let ctx = ctx();
        // Wide bounds so every offered row fits the packed layout.
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![0, 1], vec![40, 41]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 4);
        let winners = AtomicUsize::new(0);
        // 32 distinct rows (one equals a base row), offered 64× each.
        ctx.pool.parallel_for(32 * 64, 16, |range, _| {
            for i in range {
                let r = (i % 32) as Value;
                if sink.offer(&[r, r + 1]) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 31);
    }
}
