//! The fused streaming delta pipeline: dedup + set difference pushed into
//! the producing operator's probe loop.
//!
//! Algorithm 1 materializes the full UNION-ALL intermediate `Rt` before a
//! second pass deduplicates it and subtracts `R` — on transitive closure
//! the duplication factor of `Rt` is enormous, so most of what gets
//! copied, merged and re-scanned is thrown away. A [`DeltaSink`] removes
//! the intermediate entirely: every morsel worker of the *final* operator
//! of a subquery offers each produced row to the sink, which
//!
//! 1. packs/hashes the whole tuple once ([`crate::key::KeyMode`]),
//! 2. probes the per-stratum full-`R` [`PersistentIndex`] (set membership
//!    in `R`), and
//! 3. races an `insert_unique_row` into a shared iteration-scratch
//!    [`GrowChainTable`] (dedup *within* the candidates, across all rules
//!    of the IDB — UNION ALL dedups at source).
//!
//! Only CAS winners — exactly `∆R` — are buffered; duplicates are never
//! pushed into a column buffer, never merged, never re-scanned. The
//! scratch table is grow-capable because join output cardinality is
//! unknown up front (see [`GrowChainTable`]).
//!
//! ## Compact-key escapes
//!
//! A packed key layout derived from `R`'s bounds may not represent a
//! candidate value. Such a row provably equals *no* packed-fitting tuple
//! (a tuple fits iff each of its values fits, so equal tuples fit or
//! escape together) — it is neither in `R` nor equal to any sink winner.
//! Escaped rows are parked in an overflow list and only need dedup among
//! themselves; the caller folds the survivors into `∆R` and the
//! subsequent index `append` performs the one-time hashed rebuild.
//!
//! [`SinkMode`] is the switch operators consume: `Materialize` preserves
//! the UNION-ALL contract (every row is buffered), `Delta` streams rows
//! through a sink. The materializing mode stays available behind
//! `--no-fused-pipeline` for ablations and for per-query temp-table
//! spills; OOF-FA statistics no longer force it — an attached
//! [`SinkSampler`] ([`DeltaSink::with_sampler`]) mirrors every offered
//! row into a reservoir the statistics pass consumes in place of an `Rt`
//! re-scan.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use recstep_common::hash::mix64;
use recstep_common::Value;
use recstep_storage::RelView;

use crate::agg::{ConcurrentMonoMap, GroupSink};
use crate::chain::GrowChainTable;
use crate::index::PersistentIndex;
use crate::key::KeyMode;

/// How a producing operator disposes of its output rows.
pub enum SinkMode<'a> {
    /// Buffer every row (UNION ALL semantics; Algorithm 1's `uieval`).
    Materialize,
    /// Stream rows through a fused dedup + set-difference sink; only
    /// fresh rows are buffered.
    Delta(&'a DeltaSink<'a>),
    /// Stream rows into a concurrent aggregation state at the probe site
    /// (group-at-source): nothing is ever buffered — the sink's flush
    /// yields the aggregated result or ∆ directly.
    Agg(&'a AggSink<'a>),
}

/// Shared per-iteration state of one fused streaming pass: the full-`R`
/// index to probe, the scratch table deduplicating candidates, and the
/// overflow list for compact-key escapes.
pub struct DeltaSink<'a> {
    index: &'a PersistentIndex,
    base: RelView<'a>,
    mode: KeyMode,
    exact: bool,
    arity: usize,
    scratch: GrowChainTable,
    /// Rows escaping a packed key layout, flattened row-major (rare; at
    /// most one iteration per stratum sees any, right before the index's
    /// one-time hashed rebuild).
    overflow: Mutex<Vec<Value>>,
    considered: AtomicUsize,
    sampler: Option<&'a SinkSampler>,
}

impl<'a> DeltaSink<'a> {
    /// Sink probing `index` (whole-tuple keys over `base`, which must be
    /// the relation the index covers). `fresh_hint` pre-sizes the scratch
    /// table — an estimate of `|∆R|`, not a cap.
    pub fn new(index: &'a PersistentIndex, base: RelView<'a>, fresh_hint: usize) -> Self {
        assert_eq!(
            index.rows(),
            base.len(),
            "index out of sync with its base relation"
        );
        let arity = base.arity();
        assert!(
            index.key_cols().iter().copied().eq(0..arity),
            "fused sink requires whole-tuple index keys"
        );
        // An index over an empty relation has no key mode yet (deferred
        // choice); hash for this iteration — nothing is probed anyway,
        // and the merge's `append` picks the real mode from `R`'s bounds.
        let mode = if base.is_empty() {
            KeyMode::Hashed
        } else {
            index.mode().clone()
        };
        let exact = mode.exact();
        let hint = fresh_hint.max(64);
        DeltaSink {
            index,
            base,
            mode,
            exact,
            arity,
            scratch: GrowChainTable::new(arity, hint, hint.saturating_mul(2)),
            overflow: Mutex::new(Vec::new()),
            considered: AtomicUsize::new(0),
            sampler: None,
        }
    }

    /// Attach a statistics sampler: every offered row (the would-be `Rt`)
    /// is mirrored into it, which is what lets the OOF-FA path run fused —
    /// `analyze(Rt)` reads the reservoir instead of a materialized `Rt`.
    pub fn with_sampler(mut self, sampler: &'a SinkSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Offer one produced row (head layout). Returns `true` when the row
    /// is fresh — not in `R`, not yet offered this iteration — and should
    /// be buffered as part of `∆R`. Duplicates and escapes return `false`
    /// and must not be buffered. Callable from any worker concurrently.
    #[inline]
    pub fn offer(&self, row: &[Value]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        // Sample before any filtering: the reservoir stands in for `Rt`,
        // which would have contained every produced row.
        if let Some(s) = self.sampler {
            s.offer(row);
        }
        let Some(key) = self.mode.try_key_of_row(row) else {
            self.overflow.lock().extend_from_slice(row);
            return false;
        };
        if !self.base.is_empty() {
            let in_base = self.index.table().iter_key(key).any(|node| {
                self.exact || (0..self.arity).all(|c| self.base.get(node as usize, c) == row[c])
            });
            if in_base {
                return false;
            }
        }
        self.scratch.insert_unique_row(key, row)
    }

    /// Fold a worker's per-morsel count of offered rows into the shared
    /// total (one atomic add per morsel keeps the hot path clean).
    pub fn note_considered(&self, n: usize) {
        if n > 0 {
            self.considered.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows offered across all workers — `|Rt|` of the materializing
    /// path, without `Rt` ever existing.
    pub fn considered(&self) -> usize {
        self.considered.load(Ordering::Relaxed)
    }

    /// Approximate scratch-table heap footprint.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.heap_bytes()
    }

    /// Drain the compact-key escapes (row-major). May contain duplicates
    /// of each other, never of `R` or of sink winners.
    pub fn take_overflow(&self) -> Vec<Vec<Value>> {
        let flat = std::mem::take(&mut *self.overflow.lock());
        flat.chunks(self.arity).map(<[Value]>::to_vec).collect()
    }
}

/// A concurrent reservoir sample over rows streamed through a sink.
///
/// OOF-FA wants `analyze(Rt)` over the pre-aggregation intermediate —
/// which the streaming pipeline never materializes. The sampler keeps a
/// fixed-capacity uniform-ish reservoir (replacement index drawn from a
/// deterministic splitmix of the arrival counter, so runs are
/// reproducible given an arrival order) plus the exact row count, which
/// together are what the statistics pass consumes instead of a full
/// `Rt` scan.
pub struct SinkSampler {
    arity: usize,
    cap: usize,
    seen: AtomicUsize,
    /// Reservoir rows, flattened row-major (≤ `cap · arity` values).
    rows: Mutex<Vec<Value>>,
}

impl SinkSampler {
    /// Sampler for rows of `arity` values keeping at most `cap` of them.
    pub fn new(arity: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        SinkSampler {
            arity,
            cap,
            seen: AtomicUsize::new(0),
            rows: Mutex::new(Vec::with_capacity(cap.min(1024) * arity)),
        }
    }

    /// Offer one row; callable from any worker concurrently.
    pub fn offer(&self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        let i = self.seen.fetch_add(1, Ordering::Relaxed);
        if i < self.cap {
            let mut r = self.rows.lock();
            let end = (i + 1) * self.arity;
            if r.len() < end {
                r.resize(end, 0);
            }
            r[i * self.arity..end].copy_from_slice(row);
        } else {
            // Classic reservoir replacement with a deterministic draw.
            let j = (mix64(i as u64) % (i as u64 + 1)) as usize;
            if j < self.cap {
                let mut r = self.rows.lock();
                // Slot j's under-cap owner may not have resized yet (its
                // `fetch_add` and its lock acquisition are not atomic
                // together): grow to full capacity before writing past
                // the filled prefix. The owner's late write then merely
                // replaces this sample with another valid row.
                if r.len() < self.cap * self.arity {
                    r.resize(self.cap * self.arity, 0);
                }
                r[j * self.arity..(j + 1) * self.arity].copy_from_slice(row);
            }
        }
    }

    /// Exact number of rows offered.
    pub fn seen(&self) -> usize {
        self.seen.load(Ordering::Relaxed)
    }

    /// Rows currently held by the reservoir.
    pub fn sampled(&self) -> usize {
        self.seen().min(self.cap)
    }

    /// Materialize the reservoir column-major (for `analyze_view`).
    pub fn columns(&self) -> Vec<Vec<Value>> {
        let r = self.rows.lock();
        let n = r.len() / self.arity.max(1);
        let mut cols = vec![Vec::with_capacity(n); self.arity];
        for row in r.chunks(self.arity) {
            for (c, &v) in row.iter().enumerate() {
                cols[c].push(v);
            }
        }
        cols
    }
}

/// The aggregation state a streaming [`AggSink`] folds rows into.
pub enum AggTarget<'a> {
    /// Recursive monotonic aggregation: CAS-on-best concurrent map whose
    /// dirty list is the iteration's ∆.
    Mono(&'a ConcurrentMonoMap),
    /// Non-recursive group-by: sharded partial states merged at flush.
    Group(&'a GroupSink),
}

/// Shared state of one group-at-source streaming pass: every produced row
/// of an aggregated head is absorbed into a concurrent aggregation state
/// right at the probe site — the pre-aggregation `Rt` is never
/// materialized, merged or re-scanned — optionally sampling the
/// statistics OOF-FA would otherwise re-scan `Rt` for.
pub struct AggSink<'a> {
    target: AggTarget<'a>,
    sampler: Option<SinkSampler>,
    considered: AtomicUsize,
}

impl<'a> AggSink<'a> {
    /// Sink folding rows into `target`, sampling for statistics when
    /// `sampler` is given (the OOF-FA path).
    pub fn new(target: AggTarget<'a>, sampler: Option<SinkSampler>) -> Self {
        AggSink {
            target,
            sampler,
            considered: AtomicUsize::new(0),
        }
    }

    /// Offer one produced row in pre-aggregation layout
    /// (`[group ‖ aggregate arguments]`). Never buffers: the row is folded
    /// into the aggregation state and dropped. Callable from any worker
    /// concurrently.
    #[inline]
    pub fn offer(&self, row: &[Value]) {
        match self.target {
            AggTarget::Mono(m) => {
                m.absorb_row(row);
            }
            AggTarget::Group(g) => g.absorb_row(row),
        }
        if let Some(s) = &self.sampler {
            s.offer(row);
        }
    }

    /// Fold a worker's per-morsel count of offered rows into the shared
    /// total (one atomic add per morsel keeps the hot path clean).
    pub fn note_considered(&self, n: usize) {
        if n > 0 {
            self.considered.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Rows offered across all workers — `|Rt|` of the materializing
    /// path, folded at source instead of being buffered.
    pub fn considered(&self) -> usize {
        self.considered.load(Ordering::Relaxed)
    }

    /// The statistics sampler, when sampling was requested.
    pub fn sampler(&self) -> Option<&SinkSampler> {
        self.sampler.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecCtx;
    use recstep_storage::{Relation, Schema};

    fn ctx() -> ExecCtx {
        ExecCtx::with_threads(4)
    }

    #[test]
    fn offer_filters_base_members_and_duplicates() {
        let ctx = ctx();
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![0, 0], vec![9, 90]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 8);
        assert!(!sink.offer(&[9, 90]), "already in R");
        assert!(sink.offer(&[3, 30]), "fresh");
        assert!(!sink.offer(&[3, 30]), "duplicate candidate");
        assert!(sink.offer(&[4, 40]));
        sink.note_considered(4);
        assert_eq!(sink.considered(), 4);
        assert!(sink.take_overflow().is_empty());
        assert!(sink.scratch_bytes() > 0);
    }

    #[test]
    fn attached_sampler_mirrors_every_offered_row() {
        let ctx = ctx();
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![0, 0], vec![9, 90]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sampler = SinkSampler::new(2, 16);
        let sink = DeltaSink::new(&idx, base.view(), 8).with_sampler(&sampler);
        assert!(!sink.offer(&[9, 90]), "base member still filtered");
        assert!(sink.offer(&[3, 30]));
        assert!(!sink.offer(&[3, 30]), "duplicate still filtered");
        // The reservoir saw all three offers — base members and duplicates
        // included, exactly what a materialized Rt would have held.
        assert_eq!(sampler.seen(), 3);
        assert_eq!(sampler.sampled(), 3);
    }

    #[test]
    fn packed_escapes_land_in_overflow() {
        let ctx = ctx();
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![1, 2], vec![100, 200]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        assert!(idx.mode().exact(), "small values pack");
        let sink = DeltaSink::new(&idx, base.view(), 8);
        assert!(!sink.offer(&[Value::MIN, Value::MAX]), "escape is parked");
        assert!(!sink.offer(&[Value::MIN, Value::MAX]), "parked again");
        assert!(sink.offer(&[3, 4]), "fitting rows still stream");
        let overflow = sink.take_overflow();
        assert_eq!(
            overflow,
            vec![vec![Value::MIN, Value::MAX], vec![Value::MIN, Value::MAX]]
        );
        assert!(sink.take_overflow().is_empty(), "drained");
    }

    #[test]
    fn empty_base_defers_to_hashed_and_accepts_everything_once() {
        let ctx = ctx();
        let base = Relation::new(Schema::with_arity("r", 2));
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 4);
        // No escapes possible in hashed mode, even for extreme values.
        assert!(sink.offer(&[Value::MIN, Value::MAX]));
        assert!(!sink.offer(&[Value::MIN, Value::MAX]));
        assert!(sink.offer(&[0, 0]));
        assert!(sink.take_overflow().is_empty());
    }

    #[test]
    fn sampler_keeps_exact_counts_and_a_bounded_reservoir() {
        let s = SinkSampler::new(2, 8);
        for i in 0..100i64 {
            s.offer(&[i, i * 2]);
        }
        assert_eq!(s.seen(), 100);
        assert_eq!(s.sampled(), 8);
        let cols = s.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 8);
        // Every sampled row is a real input row.
        for (a, b) in cols[0].iter().zip(&cols[1]) {
            assert_eq!(*b, a * 2);
        }
    }

    #[test]
    fn sampler_survives_concurrent_offers_across_the_cap_boundary() {
        // Regression: an overflow-branch replacement must not index past
        // a reservoir an in-flight under-cap filler has not grown yet.
        let ctx = ctx();
        let s = SinkSampler::new(2, 64);
        ctx.pool.parallel_for(64 * 50, 8, |range, _| {
            for i in range {
                let v = i as Value;
                s.offer(&[v, v + 1]);
            }
        });
        assert_eq!(s.seen(), 64 * 50);
        assert_eq!(s.sampled(), 64);
        let cols = s.columns();
        assert_eq!(cols[0].len(), 64);
        for (a, b) in cols[0].iter().zip(&cols[1]) {
            assert_eq!(*b, a + 1, "sampled rows must be real input rows");
        }
    }

    #[test]
    fn sampler_underfull_holds_every_row() {
        let s = SinkSampler::new(1, 16);
        for i in 0..5i64 {
            s.offer(&[i]);
        }
        assert_eq!(s.sampled(), 5);
        let mut col = s.columns().remove(0);
        col.sort_unstable();
        assert_eq!(col, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn agg_sink_folds_rows_without_buffering() {
        use crate::agg::ConcurrentMonoMap;
        use crate::expr::AggFunc;
        let mut map = ConcurrentMonoMap::new(AggFunc::Min, 1, 8).unwrap();
        {
            let sink = AggSink::new(AggTarget::Mono(&map), Some(SinkSampler::new(2, 4)));
            sink.offer(&[1, 10]);
            sink.offer(&[1, 7]);
            sink.offer(&[2, 3]);
            sink.note_considered(3);
            assert_eq!(sink.considered(), 3);
            assert_eq!(sink.sampler().unwrap().seen(), 3);
        }
        assert_eq!(map.get(&[1]), Some(7));
        assert_eq!(map.take_improved().len(), 2 * 2);
    }

    #[test]
    fn agg_sink_group_target_reaches_the_sharded_partials() {
        use crate::agg::GroupSink;
        use crate::expr::AggFunc;
        let group = GroupSink::new(vec![AggFunc::Count], 1);
        let sink = AggSink::new(AggTarget::Group(&group), None);
        sink.offer(&[5, 0]);
        sink.offer(&[5, 0]);
        sink.offer(&[6, 0]);
        assert!(sink.sampler().is_none());
        assert_eq!(group.groups(), 2);
    }

    #[test]
    fn concurrent_offers_produce_each_fresh_row_once() {
        let ctx = ctx();
        // Wide bounds so every offered row fits the packed layout.
        let base = Relation::from_rows(Schema::with_arity("r", 2), &[vec![0, 1], vec![40, 41]]);
        let idx = PersistentIndex::build(&ctx, base.view(), vec![0, 1]);
        let sink = DeltaSink::new(&idx, base.view(), 4);
        let winners = AtomicUsize::new(0);
        // 32 distinct rows (one equals a base row), offered 64× each.
        ctx.pool.parallel_for(32 * 64, 16, |range, _| {
            for i in range {
                let r = (i % 32) as Value;
                if sink.offer(&[r, r + 1]) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 31);
    }
}
