//! Mini-QuickStep execution substrate: parallel relational operators.
//!
//! This crate implements the operators RecStep's interpreter issues against
//! the backend, including the two the paper singles out as the bottlenecks
//! of recursive query processing (§5: "set difference, deduplication"):
//!
//! * [`expr`] — scalar expressions and comparison predicates (the residual
//!   `x != y`, `d1 + d2`, … of rule bodies);
//! * [`key`] — compact concatenated key (CCK) layouts: packing a whole tuple
//!   into one 64-bit word so "the key itself is used as the hash value"
//!   (paper Figure 5);
//! * [`chain`] — the pre-allocated, latch-free separate-chaining hash table
//!   shared by deduplication and join builds (the paper's GSCHT);
//! * [`dedup`] — FAST-DEDUP: parallel insert-if-absent over the chain table,
//!   plus the incremental-index alternative studied as an ablation;
//! * [`index`] — persistent CCK-GSCHT indexes pinned to a relation's stable
//!   row ids: built once, grown incrementally across fixpoint iterations,
//!   with the fused dedup + set-difference pass (`absorb`), plus the
//!   immutable [`index::SharedIndex`] snapshot form used for cross-run
//!   sharing;
//! * [`cache`] — the shared cross-run index cache: `Arc`-shared,
//!   version-keyed, build-once (`OnceLock` publish), with spill-aware
//!   coldest-first eviction scored by `bytes / rebuild_cost`;
//! * [`join`] — parallel hash equi-join with residual predicates and
//!   projection, cross join, and anti join (for stratified negation); every
//!   producing operator also has a `*_sink` form feeding a [`sink::SinkMode`];
//! * [`sink`] — the fused streaming delta pipeline: a [`sink::DeltaSink`]
//!   probed at the operators' emit sites fuses dedup + set difference into
//!   the join itself, so the UNION-ALL intermediate `Rt` never materializes
//!   (duplicates are dropped at the probe site, backed by the grow-capable
//!   [`chain::GrowChainTable`]);
//! * [`setdiff`] — one-phase (OPSD) and two-phase (TPSD) set difference and
//!   the dynamic choice (DSD) driven by the Appendix A cost model;
//! * [`agg`] — hash group-by aggregation (MIN/MAX/SUM/COUNT/AVG) and the
//!   monotonic aggregate map behind recursive aggregation (CC, SSSP);
//! * [`util`] — morsel-driven production helpers shared by the operators;
//! * [`view`] — the support-count side table ([`view::SupportTable`],
//!   `GrowChainTable`-backed) behind counting-based incremental view
//!   maintenance of non-recursive strata;
//! * [`wcoj`] — the generic worst-case optimal multiway join: a
//!   variable-ordered intersect over per-scan sorted compact-key tries
//!   ([`wcoj::ScanTrie`]), sink-fused like every other producer, used by
//!   the planner for cyclic rule bodies.

#![deny(missing_docs)]

pub mod agg;
pub mod cache;
pub mod chain;
pub mod dedup;
pub mod expr;
pub mod index;
pub mod join;
pub mod key;
pub mod setdiff;
pub mod sink;
pub mod util;
pub mod view;
pub mod wcoj;

use std::sync::Arc;

use recstep_common::sched::ThreadPool;

/// Execution context shared by all operators.
#[derive(Clone)]
pub struct ExecCtx {
    /// Worker pool executing morsels.
    pub pool: Arc<ThreadPool>,
    /// Morsel size in rows.
    pub grain: usize,
    /// Row cap for operator outputs: producers stop emitting once reached
    /// (so a join cannot materialize past the memory budget), and callers
    /// treat outputs exceeding it as out-of-memory.
    pub row_cap: usize,
}

impl ExecCtx {
    /// Context over an existing pool with the default morsel size.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        ExecCtx {
            pool,
            grain: 4096,
            row_cap: usize::MAX,
        }
    }

    /// Context with a private pool of `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(Arc::new(ThreadPool::new(threads)))
    }
}
