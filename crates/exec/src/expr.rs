//! Scalar expressions and predicates (re-exported from
//! `recstep_common::lang` so the Datalog frontend can build them without
//! depending on this backend crate).

pub use recstep_common::lang::{eval_all, AggFunc, CmpOp, Expr, Predicate};
