//! Support counting for incremental view maintenance.
//!
//! Counting-based maintenance of a non-recursive Datalog stratum needs,
//! for every derived tuple, the number of distinct rule instantiations
//! currently deriving it: an insertion that adds the first derivation
//! materializes the tuple, a deletion that removes the last one retracts
//! it, and everything in between only moves the count. [`SupportTable`]
//! is that side table: derived tuples are stored (deduplicated) in a
//! [`GrowChainTable`] — the same latch-free chained storage the fused
//! delta sink uses — and each stored row's support count lives in a plain
//! vector indexed by the row's chain slot id.
//!
//! The table is written sequentially (view maintenance runs under the
//! owning service's write lock), which is what makes slot ids dense and
//! the side vector exact. Counts are `i64` so a maintenance pass may
//! apply signed deltas in any order and only the settled value is
//! interpreted.

use recstep_common::hash::mix64;
use recstep_common::Value;

use crate::chain::GrowChainTable;

/// Whole-row hash key for the backing chain table.
#[inline]
fn row_key(row: &[Value]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &v in row {
        h = mix64(h ^ v as u64);
    }
    h | 1 // never 0: some probe paths reserve the zero key
}

/// Per-derived-tuple support counts for one counting-maintained IDB.
pub struct SupportTable {
    rows: GrowChainTable,
    counts: Vec<i64>,
    distinct: usize,
}

impl SupportTable {
    /// Table for derived tuples of `arity` columns, pre-sized for
    /// `hint` distinct tuples.
    pub fn new(arity: usize, hint: usize) -> Self {
        let hint = hint.max(64);
        SupportTable {
            rows: GrowChainTable::new(arity, hint, hint.saturating_mul(2)),
            counts: Vec::with_capacity(hint),
            distinct: 0,
        }
    }

    /// Current support count of `row` (0 when never derived).
    pub fn count(&self, row: &[Value]) -> i64 {
        match self.rows.find_row(row_key(row), row) {
            Some(slot) => self.counts[slot as usize],
            None => 0,
        }
    }

    /// Apply a signed delta to `row`'s support count, returning the new
    /// count. Rows are created on first touch (even by a negative delta —
    /// the caller asserts non-negativity at settle time, not here).
    pub fn add(&mut self, row: &[Value], delta: i64) -> i64 {
        let key = row_key(row);
        let slot = match self.rows.find_row(key, row) {
            Some(slot) => slot as usize,
            None => {
                let slot = self
                    .rows
                    .insert_unique_row_slot(key, row)
                    .expect("sequential writer: absent row inserts cleanly")
                    as usize;
                if slot >= self.counts.len() {
                    self.counts.resize(slot + 1, 0);
                }
                slot
            }
        };
        let before = self.counts[slot];
        let after = before + delta;
        self.counts[slot] = after;
        if before <= 0 && after > 0 {
            self.distinct += 1;
        } else if before > 0 && after <= 0 {
            self.distinct -= 1;
        }
        after
    }

    /// Number of tuples with a positive support count.
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// True when no tuple has a positive support count.
    pub fn is_empty(&self) -> bool {
        self.distinct == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes() + self.counts.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_settle_independent_of_delta_order() {
        let mut t = SupportTable::new(2, 4);
        assert_eq!(t.count(&[1, 2]), 0);
        assert_eq!(t.add(&[1, 2], 1), 1);
        assert_eq!(t.add(&[1, 2], 2), 3);
        // A transiently negative interleaving settles to the same value.
        assert_eq!(t.add(&[3, 4], -1), -1);
        assert_eq!(t.add(&[3, 4], 2), 1);
        assert_eq!(t.count(&[1, 2]), 3);
        assert_eq!(t.count(&[3, 4]), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.add(&[1, 2], -3), 0);
        assert_eq!(t.len(), 1);
        assert!(t.heap_bytes() > 0);
    }

    #[test]
    fn grows_past_its_hint() {
        let mut t = SupportTable::new(1, 4);
        for v in 0..10_000 {
            assert_eq!(t.add(&[v], 1), 1);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.count(&[1234]), 1);
        assert_eq!(t.count(&[10_000]), 0);
    }
}
