//! Mini-QuickStep storage substrate.
//!
//! RecStep is built "on top of QuickStep, a single-node in-memory parallel
//! RDBMS" (paper §4). This crate supplies the storage half of that substrate:
//!
//! * [`relation`] — append-only columnar relations over [`recstep_common::Value`]
//!   with zero-copy *prefix views*. Semi-naïve evaluation needs three views of
//!   every recursive relation (`Full`, `Delta`, `Old = Full − Delta`); because
//!   merging `R ← R ⊎ ∆R` appends, `Old` is simply the pre-merge prefix.
//! * [`catalog`] — name → relation resolution plus per-table statistics with
//!   validity versions (the substrate behind the paper's `analyze()` calls
//!   and the OOF optimization).
//! * [`stats`] — the statistics themselves and the three collection levels
//!   (size-only, selective join-input sizes, full min/max/sum/avg).
//! * [`disk`] — a simulated persistent store: per-query commit flushes dirty
//!   bytes after every state-changing query (default RDBMS transaction
//!   semantics) while EOST pends all I/O until fixpoint (paper §5.2).

//! * [`overlay`] — run-scoped catalog access: exclusive mutation for
//!   classic runs, or a copy-on-write overlay over a frozen base catalog
//!   so N concurrent evaluations can share one database.

//! * [`wal`] — crash-safe durability for the query service: an
//!   append-only checksummed write-ahead log of `/facts` commits plus
//!   atomic full-database snapshots with a manifest commit point.

pub mod catalog;
pub mod disk;
pub mod handle;
pub mod overlay;
pub mod relation;
pub mod stats;
pub mod wal;

pub use catalog::{Catalog, RelId};
pub use disk::{CommitMode, DiskManager};
pub use handle::{RelHandle, RowDecode, RowIter, RowRef};
pub use overlay::RunCatalog;
pub use relation::{ColAgg, RelView, Relation, Schema};
pub use stats::{ColStats, StatsLevel, TableStats};
pub use wal::Durability;
