//! Zero-copy result views over stored relations.
//!
//! [`RelHandle`] is the read surface a database hands out for query
//! results: a borrow of the stored columnar relation with row iteration
//! and typed decoding on top, so consumers only materialize what they ask
//! for. The old engine API cloned entire relations into
//! `Vec<Vec<Value>>`; the handle keeps that as an explicit escape hatch
//! ([`RelHandle::to_vec`]) instead of the default.

use recstep_common::{Error, Result, Value};

use crate::relation::{RelView, Relation, Schema};

/// Borrowed, read-only handle over a stored relation.
///
/// Cheap to copy (two words); all accessors are zero-copy except the
/// explicitly materializing `to_vec` / `to_sorted_vec` / `try_decode`.
#[derive(Clone, Copy, Debug)]
pub struct RelHandle<'a> {
    rel: &'a Relation,
}

impl<'a> RelHandle<'a> {
    /// Wrap a stored relation.
    pub fn new(rel: &'a Relation) -> Self {
        RelHandle { rel }
    }

    /// Relation name.
    pub fn name(&self) -> &'a str {
        &self.rel.schema().name
    }

    /// Schema of the underlying relation.
    pub fn schema(&self) -> &'a Schema {
        self.rel.schema()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.rel.arity()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// True when the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Zero-copy view over all rows (operator-level access).
    pub fn view(&self) -> RelView<'a> {
        self.rel.view()
    }

    /// Column `c` as a borrowed slice.
    pub fn col(&self, c: usize) -> &'a [Value] {
        self.rel.col(c)
    }

    /// Borrowed row accessor (no copy).
    pub fn row(&self, r: usize) -> RowRef<'a> {
        RowRef {
            view: self.rel.view(),
            r,
        }
    }

    /// Iterate over borrowed rows without materializing anything.
    pub fn iter_rows(&self) -> RowIter<'a> {
        RowIter {
            view: self.rel.view(),
            next: 0,
        }
    }

    /// Decode every row as `T` (a `Value`, tuple of `Value`s, or fixed
    /// array). Errors when the relation's arity does not match `T`.
    pub fn try_decode<T: RowDecode>(&self) -> Result<Vec<T>> {
        if self.arity() != T::ARITY {
            return Err(Error::exec(format!(
                "relation '{}' has arity {}, cannot decode rows as arity {}",
                self.name(),
                self.arity(),
                T::ARITY
            )));
        }
        Ok(self.iter_rows().map(|row| T::decode(&row)).collect())
    }

    /// Decode a binary relation as `(src, dst)` pairs.
    pub fn as_pairs(&self) -> Result<Vec<(Value, Value)>> {
        self.try_decode::<(Value, Value)>()
    }

    /// Materialize all rows (row-major) — the explicit escape hatch for
    /// consumers that genuinely need an owned copy.
    pub fn to_vec(&self) -> Vec<Vec<Value>> {
        self.rel.to_rows()
    }

    /// Materialize all rows in sorted order (order-insensitive compares).
    pub fn to_sorted_vec(&self) -> Vec<Vec<Value>> {
        self.rel.to_sorted_rows()
    }
}

impl<'a> IntoIterator for RelHandle<'a> {
    type Item = RowRef<'a>;
    type IntoIter = RowIter<'a>;
    fn into_iter(self) -> RowIter<'a> {
        self.iter_rows()
    }
}

/// One borrowed row of a columnar relation.
#[derive(Clone, Copy, Debug)]
pub struct RowRef<'a> {
    view: RelView<'a>,
    r: usize,
}

impl RowRef<'_> {
    /// Value in column `c`.
    pub fn get(&self, c: usize) -> Value {
        self.view.get(self.r, c)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.view.arity()
    }

    /// True for zero-arity rows.
    pub fn is_empty(&self) -> bool {
        self.view.arity() == 0
    }

    /// Copy this row into an owned vector.
    pub fn to_vec(&self) -> Vec<Value> {
        (0..self.len()).map(|c| self.get(c)).collect()
    }
}

/// Iterator over the rows of a [`RelHandle`].
pub struct RowIter<'a> {
    view: RelView<'a>,
    next: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.next >= self.view.len() {
            return None;
        }
        let row = RowRef {
            view: self.view,
            r: self.next,
        };
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// Typed decoding of one row (the `try_decode::<T>()` surface).
pub trait RowDecode: Sized {
    /// Arity the decoder expects.
    const ARITY: usize;
    /// Decode one row; the caller guarantees the arity matches.
    fn decode(row: &RowRef<'_>) -> Self;
}

impl RowDecode for Value {
    const ARITY: usize = 1;
    fn decode(row: &RowRef<'_>) -> Value {
        row.get(0)
    }
}

macro_rules! impl_row_decode_tuple {
    ($n:expr; $($idx:tt),+) => {
        impl RowDecode for ($(impl_row_decode_tuple!(@v $idx),)+) {
            const ARITY: usize = $n;
            fn decode(row: &RowRef<'_>) -> Self {
                ($(row.get($idx),)+)
            }
        }
    };
    (@v $idx:tt) => { Value };
}

impl_row_decode_tuple!(1; 0);
impl_row_decode_tuple!(2; 0, 1);
impl_row_decode_tuple!(3; 0, 1, 2);
impl_row_decode_tuple!(4; 0, 1, 2, 3);
impl_row_decode_tuple!(5; 0, 1, 2, 3, 4);

impl<const N: usize> RowDecode for [Value; N] {
    const ARITY: usize = N;
    fn decode(row: &RowRef<'_>) -> Self {
        std::array::from_fn(|c| row.get(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut r = Relation::new(Schema::new("t", &["a", "b"]));
        r.push_row(&[1, 10]);
        r.push_row(&[2, 20]);
        r.push_row(&[3, 30]);
        r
    }

    #[test]
    fn iter_rows_is_zero_copy_and_complete() {
        let r = rel();
        let h = RelHandle::new(&r);
        assert_eq!(h.len(), 3);
        assert_eq!(h.iter_rows().len(), 3);
        let sums: Vec<Value> = h.iter_rows().map(|row| row.get(0) + row.get(1)).collect();
        assert_eq!(sums, vec![11, 22, 33]);
        let rows: Vec<Vec<Value>> = h.into_iter().map(|row| row.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
    }

    #[test]
    fn typed_decoding() {
        let r = rel();
        let h = RelHandle::new(&r);
        assert_eq!(h.as_pairs().unwrap(), vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(
            h.try_decode::<[Value; 2]>().unwrap(),
            vec![[1, 10], [2, 20], [3, 30]]
        );
        let err = h.try_decode::<(Value, Value, Value)>().unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        let mut single = Relation::new(Schema::with_arity("s", 1));
        single.push_row(&[7]);
        assert_eq!(
            RelHandle::new(&single).try_decode::<Value>().unwrap(),
            vec![7]
        );
    }

    #[test]
    fn explicit_materialization() {
        let mut r = rel();
        r.push_row(&[0, 0]);
        let h = RelHandle::new(&r);
        assert_eq!(h.to_vec().len(), 4);
        assert_eq!(h.to_sorted_vec()[0], vec![0, 0]);
        assert_eq!(h.name(), "t");
        assert_eq!(h.col(1), &[10, 20, 30, 0]);
        assert_eq!(h.view().len(), 4);
    }
}
