//! Simulated persistent storage: per-query commit vs. EOST.
//!
//! QuickStep, like most RDBMSs, treats each state-changing query as its own
//! transaction: dirty pages are written back after every query. For Datalog
//! that means every iteration's inserts into IDB tables and intermediate
//! tables hit the disk, which the paper identifies as pure overhead —
//! Evaluation as One Single Transaction (EOST, §5.2) pends all I/O until the
//! fixpoint and commits once.
//!
//! [`DiskManager`] reproduces both behaviours with real file I/O so the
//! Figure 2 ablation measures an honest cost: in [`CommitMode::PerQuery`]
//! every `note_dirty` call serializes the newly appended rows and appends
//! them to the table's backing file; in [`CommitMode::Eost`] it only records
//! dirtiness and [`DiskManager::commit_all`] writes final states once.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use recstep_common::hash::FxHashMap;
use recstep_common::{fail_point, Result};

use crate::relation::{RelView, Relation};

/// Transaction semantics of the simulated store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitMode {
    /// Default RDBMS behaviour: flush dirty rows after every
    /// state-changing query.
    PerQuery,
    /// Paper's EOST: pend all I/O until fixpoint, then commit once.
    Eost,
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Simulated persistent store backing a catalog.
pub struct DiskManager {
    dir: PathBuf,
    mode: CommitMode,
    /// Rows already persisted per table (PerQuery appends only the delta).
    persisted_rows: FxHashMap<String, usize>,
    /// Tables with unpersisted rows (EOST mode).
    dirty: Vec<String>,
    bytes_written: u64,
    flushes: u64,
}

impl DiskManager {
    /// Create a store rooted in a fresh temp directory.
    pub fn new(mode: CommitMode) -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "recstep-disk-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        Ok(DiskManager {
            dir,
            mode,
            persisted_rows: FxHashMap::default(),
            dirty: Vec::new(),
            bytes_written: 0,
            flushes: 0,
        })
    }

    /// Commit mode in effect.
    pub fn mode(&self) -> CommitMode {
        self.mode
    }

    /// Switch the commit mode. The mode is an *engine* policy (EOST is a
    /// paper §5.2 optimization toggle), while the store itself belongs to
    /// the database holding the data — so an evaluation sets the mode it
    /// was configured with before running.
    pub fn set_mode(&mut self, mode: CommitMode) {
        self.mode = mode;
    }

    /// Called after a state-changing query touched `rel`.
    ///
    /// PerQuery: persist the newly appended rows immediately.
    /// EOST: just remember the table is dirty.
    pub fn note_dirty(&mut self, rel: &Relation) -> Result<()> {
        match self.mode {
            CommitMode::PerQuery => self.flush_table(rel),
            CommitMode::Eost => {
                let name = &rel.schema().name;
                if !self.dirty.iter().any(|d| d == name) {
                    self.dirty.push(name.clone());
                }
                Ok(())
            }
        }
    }

    /// Persist a *temporary* table (a `∆`/`Rt` intermediate) and drop it
    /// again — the per-query dirty-page flush QuickStep performs for tables
    /// "storing intermediate results" (§5.2). A no-op under EOST, where all
    /// I/O pends until the final commit and temporaries never reach disk.
    pub fn flush_temp(&mut self, name: &str, view: RelView<'_>) -> Result<()> {
        if self.mode == CommitMode::Eost || view.is_empty() {
            return Ok(());
        }
        let path = self.dir.join(format!("{name}.tmp"));
        let mut w = BufWriter::new(File::create(&path)?);
        let mut bytes = 0u64;
        for r in 0..view.len() {
            for c in 0..view.arity() {
                w.write_all(&view.get(r, c).to_le_bytes())?;
                bytes += 8;
            }
        }
        w.flush()?;
        drop(w);
        fs::remove_file(&path)?;
        self.bytes_written += bytes;
        self.flushes += 1;
        Ok(())
    }

    /// End-of-evaluation commit: persist every dirty table (a no-op for
    /// PerQuery mode, which already wrote through). Each table is
    /// replaced atomically (temp file + fsync + rename) — so a crash
    /// mid-commit never leaves a torn table file.
    pub fn commit_all<'a>(&mut self, resolve: impl Fn(&str) -> Option<&'a Relation>) -> Result<()> {
        let dirty = std::mem::take(&mut self.dirty);
        for name in dirty {
            if let Some(rel) = resolve(&name) {
                self.commit_table(rel)?;
            }
        }
        Ok(())
    }

    /// Atomically replace a table's backing file with the relation's full
    /// state: write `NAME.tbl.new`, fsync, rename over `NAME.tbl`. A
    /// failure (or crash) anywhere before the rename leaves the
    /// previously committed file byte-for-byte intact.
    fn commit_table(&mut self, rel: &Relation) -> Result<()> {
        let name = rel.schema().name.clone();
        let from = *self.persisted_rows.get(&name).unwrap_or(&0);
        let to = rel.len();
        if to <= from {
            return Ok(());
        }
        let tmp = self.dir.join(format!("{name}.tbl.new"));
        let mut w = BufWriter::new(File::create(&tmp)?);
        let mut bytes = 0u64;
        for r in 0..to {
            for c in 0..rel.arity() {
                w.write_all(&rel.col(c)[r].to_le_bytes())?;
                bytes += 8;
            }
        }
        w.flush()?;
        let file = w.into_inner().map_err(|e| e.into_error())?;
        file.sync_data()?;
        drop(file);
        fail_point!("disk::before_rename");
        fs::rename(&tmp, self.table_path(&name))?;
        self.persisted_rows.insert(name, to);
        self.bytes_written += bytes;
        self.flushes += 1;
        Ok(())
    }

    fn flush_table(&mut self, rel: &Relation) -> Result<()> {
        let name = rel.schema().name.clone();
        let from = *self.persisted_rows.get(&name).unwrap_or(&0);
        let to = rel.len();
        if to <= from {
            return Ok(());
        }
        let path = self.table_path(&name);
        let file = if from == 0 {
            File::create(&path)?
        } else {
            OpenOptions::new().append(true).open(&path)?
        };
        let mut w = BufWriter::new(file);
        let mut bytes = 0u64;
        for r in from..to {
            for c in 0..rel.arity() {
                w.write_all(&rel.col(c)[r].to_le_bytes())?;
                bytes += 8;
            }
        }
        w.flush()?;
        self.persisted_rows.insert(name, to);
        self.bytes_written += bytes;
        self.flushes += 1;
        Ok(())
    }

    /// Path of a table's backing file.
    pub fn table_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.tbl"))
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of flush operations performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Rows persisted for a table.
    pub fn persisted_rows(&self, name: &str) -> usize {
        *self.persisted_rows.get(name).unwrap_or(&0)
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;

    fn rel(n: usize) -> Relation {
        let mut r = Relation::new(Schema::new("t", &["a", "b"]));
        for i in 0..n {
            r.push_row(&[i as i64, (i * 2) as i64]);
        }
        r
    }

    #[test]
    fn per_query_writes_through_incrementally() {
        let mut dm = DiskManager::new(CommitMode::PerQuery).unwrap();
        let mut r = rel(3);
        dm.note_dirty(&r).unwrap();
        assert_eq!(dm.persisted_rows("t"), 3);
        assert_eq!(dm.bytes_written(), 3 * 2 * 8);
        assert_eq!(dm.flushes(), 1);
        // Append two rows: only the delta is flushed.
        r.push_row(&[100, 200]);
        r.push_row(&[101, 202]);
        dm.note_dirty(&r).unwrap();
        assert_eq!(dm.persisted_rows("t"), 5);
        assert_eq!(dm.bytes_written(), 5 * 2 * 8);
        assert_eq!(dm.flushes(), 2);
        let on_disk = std::fs::metadata(dm.table_path("t")).unwrap().len();
        assert_eq!(on_disk, 5 * 2 * 8);
    }

    #[test]
    fn eost_pends_until_commit_all() {
        let mut dm = DiskManager::new(CommitMode::Eost).unwrap();
        let r = rel(4);
        dm.note_dirty(&r).unwrap();
        dm.note_dirty(&r).unwrap(); // dedup of dirty set
        assert_eq!(dm.bytes_written(), 0);
        assert_eq!(dm.flushes(), 0);
        dm.commit_all(|name| if name == "t" { Some(&r) } else { None })
            .unwrap();
        assert_eq!(dm.bytes_written(), 4 * 2 * 8);
        assert_eq!(dm.flushes(), 1);
    }

    #[test]
    fn unchanged_table_is_not_rewritten() {
        let mut dm = DiskManager::new(CommitMode::PerQuery).unwrap();
        let r = rel(2);
        dm.note_dirty(&r).unwrap();
        let b = dm.bytes_written();
        dm.note_dirty(&r).unwrap();
        assert_eq!(dm.bytes_written(), b);
    }

    #[test]
    fn flush_temp_counts_bytes_in_per_query_mode_only() {
        let r = rel(3);
        let mut per_query = DiskManager::new(CommitMode::PerQuery).unwrap();
        per_query.flush_temp("t_delta", r.view()).unwrap();
        assert_eq!(per_query.bytes_written(), 3 * 2 * 8);
        assert_eq!(per_query.flushes(), 1);
        let mut eost = DiskManager::new(CommitMode::Eost).unwrap();
        eost.flush_temp("t_delta", r.view()).unwrap();
        assert_eq!(eost.bytes_written(), 0);
        // Empty views are skipped.
        let empty = Relation::new(Schema::with_arity("e", 2));
        per_query.flush_temp("e", empty.view()).unwrap();
        assert_eq!(per_query.flushes(), 1);
    }

    #[test]
    fn aborted_commit_leaves_previous_file_intact() {
        use recstep_common::fail;
        let mut dm = DiskManager::new(CommitMode::Eost).unwrap();
        let mut r = rel(3);
        dm.note_dirty(&r).unwrap();
        dm.commit_all(|name| (name == "t").then_some(&r)).unwrap();
        let committed = std::fs::read(dm.table_path("t")).unwrap();
        assert_eq!(committed.len(), 3 * 2 * 8);

        // A commit that dies between fsync and rename must not touch the
        // previously committed bytes.
        r.push_row(&[100, 200]);
        dm.note_dirty(&r).unwrap();
        fail::cfg("disk::before_rename", "return_io_err").unwrap();
        assert!(dm.commit_all(|name| (name == "t").then_some(&r)).is_err());
        fail::remove("disk::before_rename");
        assert_eq!(
            std::fs::read(dm.table_path("t")).unwrap(),
            committed,
            "old table file is byte-for-byte intact"
        );

        // Retrying after the fault lands the full new state atomically.
        dm.note_dirty(&r).unwrap();
        dm.commit_all(|name| (name == "t").then_some(&r)).unwrap();
        let len = std::fs::metadata(dm.table_path("t")).unwrap().len();
        assert_eq!(len, 4 * 2 * 8);
    }

    #[test]
    fn temp_dir_cleaned_on_drop() {
        let path;
        {
            let mut dm = DiskManager::new(CommitMode::PerQuery).unwrap();
            let r = rel(1);
            dm.note_dirty(&r).unwrap();
            path = dm.table_path("t");
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
