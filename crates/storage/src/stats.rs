//! Table statistics and the `analyze()` collection levels.
//!
//! The paper's OOF optimization (§5.1) hinges on *which* statistics are
//! collected *when*: re-optimizing every iteration with full statistics is
//! almost as bad as never re-optimizing (Figure 2: OOF-FA 41% vs. OOF-NA
//! 63% vs. selective 24%). The engine therefore asks for one of three
//! levels, and the collection cost is honest — `Full` really scans columns.

use crate::relation::RelView;
use recstep_common::Value;

/// How much work `analyze()` is allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsLevel {
    /// Row count only (O(1) on our columnar layout — this is what the
    /// selective OOF mode requests for join inputs).
    Counts,
    /// Counts plus per-column min/max/sum/avg (full scan — what OOF-FA
    /// collects on every updated table, and what aggregations need).
    Full,
}

/// Per-column statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColStats {
    /// Minimum value, if the column is non-empty and `Full` was collected.
    pub min: Option<Value>,
    /// Maximum value.
    pub max: Option<Value>,
    /// Sum of values (wrapping add to stay total).
    pub sum: Option<Value>,
}

/// Statistics of one table as of some catalog version.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column stats (empty unless `Full` was collected).
    pub cols: Vec<ColStats>,
    /// Level the stats were collected at.
    pub level: Option<StatsLevel>,
    /// Catalog version the stats were computed against.
    pub version: u64,
}

impl TableStats {
    /// Conservative distinct-count estimate used to pre-size the dedup hash
    /// table: the paper deliberately avoids counting distinct values and
    /// takes `min(available memory, table size)` instead (§5.1, OOF bullet
    /// "For deduplication...").
    pub fn distinct_estimate(&self, mem_budget_rows: usize) -> usize {
        self.rows.min(mem_budget_rows)
    }

    /// True if per-column stats are available.
    pub fn has_full(&self) -> bool {
        self.level == Some(StatsLevel::Full)
    }

    /// Bits needed to represent column `c` losslessly as an unsigned offset
    /// from its minimum — the input to compact-concatenated-key layout.
    /// Returns `None` without full stats or for empty columns.
    pub fn col_bits(&self, c: usize) -> Option<u32> {
        let cs = self.cols.get(c)?;
        let (min, max) = (cs.min?, cs.max?);
        let span = (max as i128 - min as i128) as u128;
        Some(if span == 0 {
            1
        } else {
            128 - span.leading_zeros()
        })
    }
}

/// Collect statistics of a view at the requested level.
///
/// Full-level collection consults the view's incrementally maintained
/// aggregates first (see [`crate::relation::ColAgg`]): a view spanning a
/// whole stored relation costs O(arity), and only raw operator
/// intermediates pay the column scan.
pub fn analyze_view(view: RelView<'_>, level: StatsLevel) -> TableStats {
    let rows = view.len();
    let cols = match level {
        StatsLevel::Counts => Vec::new(),
        StatsLevel::Full => (0..view.arity())
            .map(|c| {
                let data = view.col(c);
                if data.is_empty() {
                    ColStats::default()
                } else if let Some(agg) = view.cached_agg(c) {
                    // `cached_agg` only answers for full-relation views,
                    // where the incremental aggregates are exact.
                    ColStats {
                        min: Some(agg.min),
                        max: Some(agg.max),
                        sum: Some(agg.sum),
                    }
                } else {
                    let mut min = data[0];
                    let mut max = data[0];
                    let mut sum: Value = 0;
                    for &v in data {
                        min = min.min(v);
                        max = max.max(v);
                        sum = sum.wrapping_add(v);
                    }
                    ColStats {
                        min: Some(min),
                        max: Some(max),
                        sum: Some(sum),
                    }
                }
            })
            .collect(),
    };
    TableStats {
        rows,
        cols,
        level: Some(level),
        version: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Relation, Schema};

    fn sample() -> Relation {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        r.push_row(&[5, -1]);
        r.push_row(&[1, 7]);
        r.push_row(&[3, 0]);
        r
    }

    #[test]
    fn counts_level_skips_columns() {
        let s = analyze_view(sample().view(), StatsLevel::Counts);
        assert_eq!(s.rows, 3);
        assert!(s.cols.is_empty());
        assert!(!s.has_full());
    }

    #[test]
    fn full_level_computes_min_max_sum() {
        let s = analyze_view(sample().view(), StatsLevel::Full);
        assert_eq!(s.rows, 3);
        assert_eq!(
            s.cols[0],
            ColStats {
                min: Some(1),
                max: Some(5),
                sum: Some(9)
            }
        );
        assert_eq!(
            s.cols[1],
            ColStats {
                min: Some(-1),
                max: Some(7),
                sum: Some(6)
            }
        );
    }

    #[test]
    fn distinct_estimate_is_min_of_budget_and_rows() {
        let s = analyze_view(sample().view(), StatsLevel::Counts);
        assert_eq!(s.distinct_estimate(10), 3);
        assert_eq!(s.distinct_estimate(2), 2);
    }

    #[test]
    fn col_bits_span() {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        r.push_row(&[0, 100]);
        r.push_row(&[255, 100]);
        let s = analyze_view(r.view(), StatsLevel::Full);
        assert_eq!(s.col_bits(0), Some(8)); // span 255 → 8 bits
        assert_eq!(s.col_bits(1), Some(1)); // constant column → 1 bit
        let empty = analyze_view(
            Relation::new(Schema::with_arity("e", 1)).view(),
            StatsLevel::Full,
        );
        assert_eq!(empty.col_bits(0), None);
    }

    #[test]
    fn col_bits_handles_extreme_span() {
        let mut r = Relation::new(Schema::with_arity("t", 1));
        r.push_row(&[i64::MIN]);
        r.push_row(&[i64::MAX]);
        let s = analyze_view(r.view(), StatsLevel::Full);
        assert_eq!(s.col_bits(0), Some(64));
    }

    #[test]
    fn empty_view_stats() {
        let r = Relation::new(Schema::with_arity("t", 1));
        let s = analyze_view(r.view(), StatsLevel::Full);
        assert_eq!(s.rows, 0);
        assert_eq!(s.cols[0], ColStats::default());
    }
}
