//! The catalog: relation registry plus versioned statistics.
//!
//! `analyze()` in Algorithm 1 is an explicit call telling the backend to
//! collect statistics on a table; the interpreter controls precisely when it
//! happens and at which level (the OOF optimization). The catalog caches the
//! result together with the table's *modification version*, so a plan can
//! tell whether its cached estimates are stale.

use recstep_common::{Error, Result};

use crate::relation::{Relation, Schema};
use crate::stats::{analyze_view, StatsLevel, TableStats};

/// Index of a relation within a [`Catalog`].
pub type RelId = usize;

#[derive(Clone)]
struct Entry {
    rel: Relation,
    version: u64,
    stats: Option<TableStats>,
}

/// Relation registry. Cloning deep-copies every relation — the query
/// service's materialized views use this to publish an immutable result
/// snapshot per refresh while keeping the original mutable.
#[derive(Clone, Default)]
pub struct Catalog {
    entries: Vec<Entry>,
    by_name: recstep_common::hash::FxHashMap<String, RelId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new, empty relation. Errors if the name is taken.
    pub fn create(&mut self, schema: Schema) -> Result<RelId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(Error::exec(format!(
                "relation '{}' already exists",
                schema.name
            )));
        }
        let id = self.entries.len();
        self.by_name.insert(schema.name.clone(), id);
        self.entries.push(Entry {
            rel: Relation::new(schema),
            version: 0,
            stats: None,
        });
        Ok(id)
    }

    /// Register an already-populated relation. Errors if the name is taken.
    pub fn register(&mut self, rel: Relation) -> Result<RelId> {
        if self.by_name.contains_key(&rel.schema().name) {
            return Err(Error::exec(format!(
                "relation '{}' already exists",
                rel.schema().name
            )));
        }
        let id = self.entries.len();
        self.by_name.insert(rel.schema().name.clone(), id);
        self.entries.push(Entry {
            rel,
            version: 1,
            stats: None,
        });
        Ok(id)
    }

    /// Resolve a relation by name.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Immutable access.
    #[inline]
    pub fn rel(&self, id: RelId) -> &Relation {
        &self.entries[id].rel
    }

    /// Mutable access; bumps the modification version (invalidating cached
    /// statistics staleness checks).
    #[inline]
    pub fn rel_mut(&mut self, id: RelId) -> &mut Relation {
        self.entries[id].version += 1;
        &mut self.entries[id].rel
    }

    /// Current modification version of a relation.
    pub fn version(&self, id: RelId) -> u64 {
        self.entries[id].version
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.entries.iter().enumerate().map(|(i, e)| (i, &e.rel))
    }

    /// The paper's `analyze(R)`: collect statistics at `level` and cache
    /// them. Re-collection is skipped when cached stats are current *and*
    /// at least as detailed as requested.
    pub fn analyze(&mut self, id: RelId, level: StatsLevel) -> &TableStats {
        let entry = &mut self.entries[id];
        let fresh_enough = entry.stats.as_ref().is_some_and(|s| {
            s.version == entry.version
                && (s.level == Some(StatsLevel::Full) || level == StatsLevel::Counts)
        });
        if !fresh_enough {
            let mut stats = analyze_view(entry.rel.view(), level);
            stats.version = entry.version;
            entry.stats = Some(stats);
        }
        entry.stats.as_ref().unwrap()
    }

    /// Cached statistics, if any (possibly stale — check
    /// [`TableStats::version`] against [`Catalog::version`]).
    pub fn cached_stats(&self, id: RelId) -> Option<&TableStats> {
        self.entries[id].stats.as_ref()
    }

    /// Row count without collecting stats (O(1)).
    pub fn row_count(&self, id: RelId) -> usize {
        self.entries[id].rel.len()
    }

    /// Total heap bytes across all relations (engine-level memory estimate).
    pub fn heap_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.rel.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_roundtrip() {
        let mut cat = Catalog::new();
        let id = cat.create(Schema::new("arc", &["x", "y"])).unwrap();
        assert_eq!(cat.lookup("arc"), Some(id));
        assert_eq!(cat.lookup("nope"), None);
        assert_eq!(cat.rel(id).arity(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cat = Catalog::new();
        cat.create(Schema::with_arity("t", 1)).unwrap();
        assert!(cat.create(Schema::with_arity("t", 2)).is_err());
        assert!(cat
            .register(Relation::new(Schema::with_arity("t", 1)))
            .is_err());
    }

    #[test]
    fn mutation_bumps_version() {
        let mut cat = Catalog::new();
        let id = cat.create(Schema::with_arity("t", 1)).unwrap();
        let v0 = cat.version(id);
        cat.rel_mut(id).push_row(&[1]);
        assert!(cat.version(id) > v0);
    }

    #[test]
    fn analyze_caches_until_modified() {
        let mut cat = Catalog::new();
        let id = cat.create(Schema::with_arity("t", 1)).unwrap();
        cat.rel_mut(id).push_row(&[5]);
        let v = cat.version(id);
        let s = cat.analyze(id, StatsLevel::Counts).clone();
        assert_eq!(s.rows, 1);
        assert_eq!(s.version, v);
        // Unmodified: same stats object version.
        let s2 = cat.analyze(id, StatsLevel::Counts).clone();
        assert_eq!(s2.version, v);
        // Modified: re-collected.
        cat.rel_mut(id).push_row(&[6]);
        let s3 = cat.analyze(id, StatsLevel::Counts).clone();
        assert_eq!(s3.rows, 2);
        assert_eq!(s3.version, cat.version(id));
    }

    #[test]
    fn analyze_upgrades_level_but_never_downgrades() {
        let mut cat = Catalog::new();
        let id = cat.create(Schema::with_arity("t", 1)).unwrap();
        cat.rel_mut(id).push_row(&[3]);
        let s = cat.analyze(id, StatsLevel::Counts);
        assert!(!s.has_full());
        let s = cat.analyze(id, StatsLevel::Full);
        assert!(s.has_full());
        // Asking for Counts again keeps the Full stats (they subsume it).
        let s = cat.analyze(id, StatsLevel::Counts);
        assert!(s.has_full());
    }

    #[test]
    fn register_prepopulated() {
        let mut cat = Catalog::new();
        let rel = Relation::from_rows(Schema::with_arity("r", 2), &[vec![1, 2]]);
        let id = cat.register(rel).unwrap();
        assert_eq!(cat.row_count(id), 1);
        assert!(cat.heap_bytes() >= 16);
    }
}
