//! Append-only columnar relations and their views.

use recstep_common::Value;

/// Relation schema: a name plus named integer columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Relation name as it appears in Datalog programs.
    pub name: String,
    /// Column names (arity = `cols.len()`).
    pub cols: Vec<String>,
}

impl Schema {
    /// Build a schema from a name and column names.
    pub fn new(name: impl Into<String>, cols: &[&str]) -> Self {
        Schema {
            name: name.into(),
            cols: cols.iter().map(|c| (*c).to_string()).collect(),
        }
    }

    /// Build a schema with auto-named columns `c0..c{arity-1}`.
    pub fn with_arity(name: impl Into<String>, arity: usize) -> Self {
        Schema {
            name: name.into(),
            cols: (0..arity).map(|i| format!("c{i}")).collect(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }
}

/// Incrementally maintained per-column aggregates.
///
/// Because relations are strictly append-only between `clear`s, min/max
/// are monotone and the sum is a running total: every append folds the new
/// values in, so reading them is O(1) at any point. Only meaningful while
/// the relation is non-empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColAgg {
    /// Minimum value seen.
    pub min: Value,
    /// Maximum value seen.
    pub max: Value,
    /// Wrapping sum of all values.
    pub sum: Value,
}

impl ColAgg {
    fn absorb(&mut self, v: Value) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum = self.sum.wrapping_add(v);
    }

    fn merge(&mut self, other: &ColAgg) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    fn seed(v: Value) -> ColAgg {
        ColAgg {
            min: v,
            max: v,
            sum: v,
        }
    }
}

/// An in-memory columnar relation.
///
/// Storage is column-major (`cols[c][r]`), and strictly append-only
/// during evaluation: engines mutate stored relations through appends and
/// `clear` only (the former `set_cell`/`truncate` interior-mutation
/// helpers were unused and are gone), and result consumers read through
/// zero-copy views and [`crate::RelHandle`]s.
///
/// Per-column min/max/sum are maintained incrementally on every append
/// (see [`ColAgg`]), so statistics collection and compact-key layout
/// derivation never re-scan stored columns.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    cols: Vec<Vec<Value>>,
    aggs: Vec<ColAgg>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            cols: vec![Vec::new(); arity],
            aggs: Vec::new(),
        }
    }

    /// Relation pre-populated from row-major data.
    pub fn from_rows(schema: Schema, rows: &[Vec<Value>]) -> Self {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push_row(row);
        }
        rel
    }

    /// Schema accessor.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// True when the relation holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one row. Panics if the row arity mismatches the schema.
    #[inline]
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.arity(),
            "row arity mismatch for {}",
            self.schema.name
        );
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
        if self.aggs.is_empty() {
            self.aggs = row.iter().map(|&v| ColAgg::seed(v)).collect();
        } else {
            for (agg, &v) in self.aggs.iter_mut().zip(row) {
                agg.absorb(v);
            }
        }
    }

    /// Bulk-append column-major data produced by an operator.
    ///
    /// Panics if `data` has the wrong arity or ragged column lengths.
    pub fn append_columns(&mut self, data: Vec<Vec<Value>>) {
        assert_eq!(
            data.len(),
            self.arity(),
            "column-count mismatch for {}",
            self.schema.name
        );
        if let Some(first) = data.first() {
            let n = first.len();
            assert!(
                data.iter().all(|c| c.len() == n),
                "ragged columns for {}",
                self.schema.name
            );
        }
        let adding = data.first().is_some_and(|c| !c.is_empty());
        if adding {
            let seed = self.aggs.is_empty();
            if seed {
                self.aggs = data.iter().map(|c| ColAgg::seed(c[0])).collect();
            }
            // One pass over only the *new* values keeps the aggregates
            // incremental: cost is proportional to what is appended, never
            // to what is stored. The seed row is already folded in by
            // `ColAgg::seed`, so skip it here (absorbing it twice would
            // double-count it into the sum).
            let skip = usize::from(seed);
            for (agg, new) in self.aggs.iter_mut().zip(&data) {
                for &v in &new[skip..] {
                    agg.absorb(v);
                }
            }
        }
        for (col, mut new) in self.cols.iter_mut().zip(data) {
            if col.is_empty() {
                *col = new; // move, no copy
            } else {
                col.append(&mut new);
            }
        }
    }

    /// Append all rows of another relation (must have equal arity).
    pub fn append_relation(&mut self, other: &Relation) {
        assert_eq!(other.arity(), self.arity());
        if !other.is_empty() {
            if self.aggs.is_empty() {
                self.aggs = other.aggs.clone();
            } else {
                for (agg, oa) in self.aggs.iter_mut().zip(&other.aggs) {
                    agg.merge(oa);
                }
            }
        }
        for (col, new) in self.cols.iter_mut().zip(&other.cols) {
            col.extend_from_slice(new);
        }
    }

    /// Full column slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Delete every stored row equal to one of `rows` (whole-tuple match,
    /// all occurrences). Returns the number of rows removed. Column
    /// aggregates are recomputed from the survivors — deletion is the one
    /// mutation incremental min/max/sum cannot absorb.
    pub fn delete_rows(&mut self, rows: &[Vec<Value>]) -> usize {
        if rows.is_empty() || self.is_empty() {
            return 0;
        }
        let doomed: std::collections::HashSet<&[Value]> = rows.iter().map(Vec::as_slice).collect();
        let n = self.len();
        let mut row = Vec::with_capacity(self.arity());
        let keep: Vec<bool> = (0..n)
            .map(|r| {
                row.clear();
                for c in &self.cols {
                    row.push(c[r]);
                }
                !doomed.contains(row.as_slice())
            })
            .collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return 0;
        }
        for col in &mut self.cols {
            let mut w = 0;
            for r in 0..n {
                if keep[r] {
                    col[w] = col[r];
                    w += 1;
                }
            }
            col.truncate(w);
        }
        self.aggs = self
            .cols
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| {
                let mut agg = ColAgg::seed(c[0]);
                for &v in &c[1..] {
                    agg.absorb(v);
                }
                agg
            })
            .collect();
        removed
    }

    /// Drop all rows, keeping capacity.
    pub fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.aggs.clear();
    }

    /// Incrementally maintained aggregates of column `c`, or `None` while
    /// the relation is empty.
    #[inline]
    pub fn col_agg(&self, c: usize) -> Option<&ColAgg> {
        self.aggs.get(c)
    }

    /// Incrementally maintained `(min, max)` bounds of column `c`, or
    /// `None` while the relation is empty.
    #[inline]
    pub fn col_bounds(&self, c: usize) -> Option<(Value, Value)> {
        self.aggs.get(c).map(|a| (a.min, a.max))
    }

    fn agg_slice(&self) -> Option<&[ColAgg]> {
        if self.aggs.is_empty() {
            None
        } else {
            Some(&self.aggs)
        }
    }

    /// View over all rows.
    #[inline]
    pub fn view(&self) -> RelView<'_> {
        RelView {
            cols: &self.cols,
            start: 0,
            end: self.len(),
            aggs: self.agg_slice(),
        }
    }

    /// Zero-copy view over the first `len` rows (the *Old* view of
    /// semi-naïve evaluation: facts through iteration `t-1`).
    ///
    /// The view inherits the whole relation's cached bounds: they are a
    /// superset of any row range's true bounds, which is exactly what
    /// compact-key layout derivation needs (a covering range).
    #[inline]
    pub fn prefix_view(&self, len: usize) -> RelView<'_> {
        assert!(len <= self.len());
        RelView {
            cols: &self.cols,
            start: 0,
            end: len,
            aggs: if len == 0 { None } else { self.agg_slice() },
        }
    }

    /// Zero-copy view over rows `start..end` (bounds inherited as for
    /// [`Relation::prefix_view`]).
    #[inline]
    pub fn range_view(&self, start: usize, end: usize) -> RelView<'_> {
        assert!(start <= end && end <= self.len());
        RelView {
            cols: &self.cols,
            start,
            end,
            aggs: if start == end { None } else { self.agg_slice() },
        }
    }

    /// Copy row `r` into `out` (cleared first).
    pub fn copy_row(&self, r: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c[r]));
    }

    /// Materialize all rows (row-major); intended for tests and result export.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|r| self.cols.iter().map(|c| c[r]).collect())
            .collect()
    }

    /// Materialize rows in sorted order; handy for order-insensitive
    /// comparisons in tests.
    pub fn to_sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.to_rows();
        rows.sort_unstable();
        rows
    }

    /// Approximate heap footprint in bytes (column data only).
    pub fn heap_bytes(&self) -> usize {
        self.cols
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<Value>())
            .sum()
    }
}

/// A borrowed, contiguous row range of a relation.
///
/// All operators consume `RelView`s, which makes the *Full*/*Old*/*Delta*
/// distinction of semi-naïve evaluation free of copies.
#[derive(Clone, Copy, Debug)]
pub struct RelView<'a> {
    cols: &'a [Vec<Value>],
    start: usize,
    end: usize,
    /// Cached per-column aggregates of the *backing relation*, when it
    /// maintains them. Bounds cover every viewed row (possibly loosely for
    /// partial views); operators use them to skip whole-column scans.
    aggs: Option<&'a [ColAgg]>,
}

impl<'a> RelView<'a> {
    /// View over explicit column storage (for operator intermediates).
    pub fn over(cols: &'a [Vec<Value>]) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        RelView {
            cols,
            start: 0,
            end: len,
            aggs: None,
        }
    }

    /// Cached covering `(min, max)` bounds of column `c`, if the backing
    /// relation maintains them. `None` means "unknown" (intermediates and
    /// empty relations), not "empty".
    #[inline]
    pub fn cached_bounds(&self, c: usize) -> Option<(Value, Value)> {
        self.aggs.and_then(|a| a.get(c)).map(|a| (a.min, a.max))
    }

    /// Cached aggregates of column `c`. Returned only when the view spans
    /// the whole backing relation, so min/max/sum are exact (partial views
    /// would inherit merely covering values; use
    /// [`RelView::cached_bounds`] for those).
    #[inline]
    pub fn cached_agg(&self, c: usize) -> Option<&'a ColAgg> {
        if self.start == 0 && self.end == self.cols.first().map_or(0, Vec::len) {
            self.aggs.and_then(|a| a.get(c))
        } else {
            None
        }
    }

    /// Number of rows in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column `c` restricted to the viewed rows.
    #[inline]
    pub fn col(&self, c: usize) -> &'a [Value] {
        &self.cols[c][self.start..self.end]
    }

    /// Value at (row, col), row relative to the view.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.cols[col][self.start + row]
    }

    /// Copy row `r` (view-relative) into `out` (cleared first).
    pub fn copy_row(&self, r: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c[self.start + r]));
    }

    /// Materialize the viewed rows (row-major).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|r| self.cols.iter().map(|c| c[self.start + r]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_ab() -> Relation {
        let mut r = Relation::new(Schema::new("t", &["a", "b"]));
        r.push_row(&[1, 10]);
        r.push_row(&[2, 20]);
        r.push_row(&[3, 30]);
        r
    }

    #[test]
    fn push_and_read_back() {
        let r = rel_ab();
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.col(0), &[1, 2, 3]);
        assert_eq!(r.col(1), &[10, 20, 30]);
        assert_eq!(r.to_rows(), vec![vec![1, 10], vec![2, 20], vec![3, 30]]);
    }

    #[test]
    fn prefix_view_is_old_snapshot() {
        let mut r = rel_ab();
        let before = r.len();
        r.push_row(&[4, 40]); // the "delta merge"
        let old = r.prefix_view(before);
        assert_eq!(old.len(), 3);
        assert_eq!(old.col(0), &[1, 2, 3]);
        let full = r.view();
        assert_eq!(full.len(), 4);
        let delta = r.range_view(before, r.len());
        assert_eq!(delta.to_rows(), vec![vec![4, 40]]);
    }

    #[test]
    fn append_columns_moves_into_empty() {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        r.append_columns(vec![vec![1, 2], vec![3, 4]]);
        assert_eq!(r.len(), 2);
        r.append_columns(vec![vec![5], vec![6]]);
        assert_eq!(r.to_rows(), vec![vec![1, 3], vec![2, 4], vec![5, 6]]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = rel_ab();
        r.push_row(&[1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_append_panics() {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        r.append_columns(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn copy_row_and_views() {
        let r = rel_ab();
        let mut buf = Vec::new();
        r.copy_row(2, &mut buf);
        assert_eq!(buf, vec![3, 30]);
        let v = r.range_view(1, 3);
        assert_eq!(v.get(0, 0), 2);
        v.copy_row(1, &mut buf);
        assert_eq!(buf, vec![3, 30]);
    }

    #[test]
    fn sorted_rows_for_set_compare() {
        let mut r = Relation::new(Schema::with_arity("t", 1));
        r.push_row(&[3]);
        r.push_row(&[1]);
        r.push_row(&[2]);
        assert_eq!(r.to_sorted_rows(), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn heap_bytes_grows_with_data() {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        let b0 = r.heap_bytes();
        for i in 0..1000 {
            r.push_row(&[i, i]);
        }
        assert!(r.heap_bytes() > b0);
        assert!(r.heap_bytes() >= 2 * 1000 * 8);
    }

    #[test]
    fn view_over_raw_columns() {
        let cols = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let v = RelView::over(&cols);
        assert_eq!(v.len(), 3);
        assert_eq!(v.col(1), &[4, 5, 6]);
    }

    #[test]
    fn incremental_aggs_track_all_append_paths() {
        let mut r = Relation::new(Schema::with_arity("t", 2));
        assert_eq!(r.col_bounds(0), None);
        r.push_row(&[5, -1]);
        r.push_row(&[1, 7]);
        assert_eq!(r.col_bounds(0), Some((1, 5)));
        assert_eq!(r.col_bounds(1), Some((-1, 7)));
        r.append_columns(vec![vec![9, -4], vec![0, 0]]);
        assert_eq!(r.col_bounds(0), Some((-4, 9)));
        assert_eq!(r.col_agg(0).unwrap().sum, 11);
        assert_eq!(r.col_agg(1).unwrap().sum, 6);
        // Seeding from empty via append_columns must not double-count the
        // first value into the sum.
        let mut fresh = Relation::new(Schema::with_arity("f", 1));
        fresh.append_columns(vec![vec![3, 4]]);
        assert_eq!(fresh.col_agg(0).unwrap().sum, 7);
        assert_eq!(fresh.col_bounds(0), Some((3, 4)));
        let other = Relation::from_rows(Schema::with_arity("o", 2), &[vec![100, -100]]);
        r.append_relation(&other);
        assert_eq!(r.col_bounds(0), Some((-4, 100)));
        assert_eq!(r.col_bounds(1), Some((-100, 7)));
        r.clear();
        assert_eq!(r.col_bounds(0), None);
        // Re-seeding after clear starts fresh (no stale bounds).
        r.push_row(&[2, 2]);
        assert_eq!(r.col_bounds(0), Some((2, 2)));
    }

    #[test]
    fn view_bounds_are_covering_and_aggs_exact_only_when_full() {
        let mut r = Relation::new(Schema::with_arity("t", 1));
        r.push_row(&[10]);
        r.push_row(&[20]);
        let full = r.view();
        assert_eq!(full.cached_bounds(0), Some((10, 20)));
        assert_eq!(full.cached_agg(0).unwrap().sum, 30);
        let prefix = r.prefix_view(1);
        // Covering bounds are inherited; exact aggregates are not.
        assert_eq!(prefix.cached_bounds(0), Some((10, 20)));
        assert!(prefix.cached_agg(0).is_none());
        let empty = r.prefix_view(0);
        assert_eq!(empty.cached_bounds(0), None);
        // Raw operator intermediates carry no cache.
        let cols = vec![vec![1, 2]];
        assert_eq!(RelView::over(&cols).cached_bounds(0), None);
    }

    #[test]
    fn clear_drops_all_rows() {
        let mut r = rel_ab();
        r.clear();
        assert!(r.is_empty());
        r.push_row(&[4, 40]);
        assert_eq!(r.to_rows(), vec![vec![4, 40]]);
    }

    #[test]
    fn delete_rows_removes_all_occurrences_and_recomputes_aggs() {
        let mut r = Relation::new(Schema::new("t", &["a", "b"]));
        r.push_row(&[1, 10]);
        r.push_row(&[2, 20]);
        r.push_row(&[1, 10]);
        r.push_row(&[3, 30]);
        assert_eq!(r.delete_rows(&[vec![1, 10], vec![9, 9]]), 2);
        assert_eq!(r.to_rows(), vec![vec![2, 20], vec![3, 30]]);
        // Aggregates reflect the survivors, not the original extremes.
        assert_eq!(r.col_bounds(0), Some((2, 3)));
        assert_eq!(r.col_bounds(1), Some((20, 30)));
        // Deleting nothing and deleting everything both behave.
        assert_eq!(r.delete_rows(&[]), 0);
        assert_eq!(r.delete_rows(&[vec![2, 20], vec![3, 30]]), 2);
        assert!(r.is_empty());
        assert_eq!(r.col_bounds(0), None);
    }
}
