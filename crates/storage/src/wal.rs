//! Write-ahead log + snapshots: crash-safe durability for `/facts`.
//!
//! The service keeps the database in memory (the paper's engine is an
//! in-memory system); durability is layered underneath as the classic
//! single-node pair:
//!
//! * a **write-ahead log** (`wal.log`): every `/facts` commit is appended
//!   as one length-prefixed, checksummed record *before* it is applied to
//!   memory and acknowledged. With [`Durability::Commit`] the record is
//!   fsync'd per commit; [`Durability::Batch`] defers the fsync to the OS
//!   (and to snapshot/shutdown), trading a crash window for throughput.
//! * a **snapshot** (`snapshot/NAME.tbl` + `snapshot/MANIFEST`): a full
//!   checksummed copy of every relation, written atomically (temp file +
//!   fsync + rename; the MANIFEST rename is the commit point). After a
//!   snapshot the log is reset to a single [`WalRecord::Barrier`] carrying
//!   the snapshot version — that is the log-compaction step.
//!
//! Recovery order: load the snapshot (if any), then replay every WAL
//! commit with a version greater than the snapshot's. Replay stops at the
//! first torn or corrupt record and truncates the log there — bytes after
//! a torn tail are by construction unacknowledged. A corrupt *snapshot*
//! is not repairable by truncation and surfaces as
//! [`Error::Durability`](recstep_common::Error).
//!
//! Fault injection: `wal::before_append`, `wal::after_append`,
//! `wal::short_write`, `wal::before_reset`, `snapshot::before_rename` and
//! `snapshot::before_manifest_rename` (see [`recstep_common::fail`]).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use recstep_common::hash::mix64;
use recstep_common::{fail, fail_point, Error, Result, Value};

use crate::relation::Relation;

/// How hard the service tries to make an acknowledged commit survive a
/// crash.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// No WAL, no snapshots: the pre-durability in-memory behaviour.
    Off,
    /// Fsync the WAL on every `/facts` commit before acknowledging —
    /// an acked commit survives `kill -9`.
    #[default]
    Commit,
    /// Append without fsync; sync happens at snapshots and shutdown. A
    /// crash may lose the OS-buffered tail, never a prefix.
    Batch,
}

impl Durability {
    /// Parse the `--durability` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(Durability::Off),
            "commit" => Some(Durability::Commit),
            "batch" => Some(Durability::Batch),
            _ => None,
        }
    }

    /// Flag-style name (`off`/`commit`/`batch`).
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::Off => "off",
            Durability::Commit => "commit",
            Durability::Batch => "batch",
        }
    }
}

/// One relation's worth of rows inside a WAL commit, row-major.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalBatch {
    /// Relation name.
    pub name: String,
    /// Row width; `rows.len()` is a multiple of it.
    pub arity: usize,
    /// Row-major values (`rows.len() / arity` rows).
    pub rows: Vec<Value>,
}

/// One `/facts` commit as logged: the post-commit `data_version` plus the
/// staged inserts and deletes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalCommit {
    /// `data_version` after this commit applies.
    pub version: u64,
    /// Rows inserted, grouped by relation.
    pub inserts: Vec<WalBatch>,
    /// Rows deleted, grouped by relation.
    pub deletes: Vec<WalBatch>,
}

/// A log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A `/facts` commit.
    Commit(WalCommit),
    /// A snapshot barrier: everything at or below `version` is captured
    /// by the snapshot; written as the sole record of a freshly reset log.
    Barrier {
        /// The snapshot's `data_version`.
        version: u64,
    },
}

impl WalRecord {
    /// The `data_version` this record establishes.
    pub fn version(&self) -> u64 {
        match self {
            WalRecord::Commit(c) => c.version,
            WalRecord::Barrier { version } => *version,
        }
    }
}

/// What [`Wal::recover`] found in the log.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    /// Records that survived (including barriers).
    pub records: u64,
    /// Of those, commit records.
    pub commits: u64,
    /// Valid log bytes (the file is truncated to this length).
    pub bytes: u64,
    /// Whether a torn/corrupt tail was cut off.
    pub truncated: bool,
    /// Highest version seen in the surviving records.
    pub last_version: u64,
}

/// Cap on a single record; a longer length prefix is treated as
/// corruption (the log is truncated there).
const MAX_RECORD_BYTES: u32 = 64 << 20;

const TAG_COMMIT: u8 = 1;
const TAG_BARRIER: u8 = 2;

/// The append-only commit log. Created/recovered by [`Wal::recover`].
pub struct Wal {
    file: File,
    durability: Durability,
    /// Byte offset after the last fully appended record. Anything past it
    /// is a torn append being repaired or awaiting truncation at recovery.
    valid_len: u64,
    records: u64,
    /// True after a torn write the file handle can no longer be trusted
    /// to sit past cleanly; every further append fails until restart.
    poisoned: bool,
}

impl Wal {
    /// Open `dir/wal.log`, scan it, truncate any torn/corrupt tail, and
    /// return the surviving records for replay.
    pub fn recover(
        dir: &Path,
        durability: Durability,
    ) -> Result<(Self, Vec<WalRecord>, ReplayReport)> {
        fs::create_dir_all(dir)?;
        let path = dir.join("wal.log");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut records = Vec::new();
        let mut at = 0usize;
        let mut truncated = false;
        while at < buf.len() {
            match decode_frame(&buf[at..]) {
                Some((rec, used)) => {
                    records.push(rec);
                    at += used;
                }
                None => {
                    truncated = true;
                    break;
                }
            }
        }
        if truncated {
            file.set_len(at as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(at as u64))?;

        let report = ReplayReport {
            records: records.len() as u64,
            commits: records
                .iter()
                .filter(|r| matches!(r, WalRecord::Commit(_)))
                .count() as u64,
            bytes: at as u64,
            truncated,
            last_version: records.iter().map(WalRecord::version).max().unwrap_or(0),
        };
        let wal = Wal {
            file,
            durability,
            valid_len: at as u64,
            records: records.len() as u64,
            poisoned: false,
        };
        Ok((wal, records, report))
    }

    /// Append one record; with [`Durability::Commit`] the record is
    /// fsync'd before this returns. On failure the torn prefix is cut
    /// back off the file (or, if even that fails, the log is poisoned and
    /// every further append errors until restart) — so an `Err` here
    /// means the record is *not* in the log, and the caller must not
    /// apply or acknowledge the commit.
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        if self.poisoned {
            return Err(Error::durability(
                "wal poisoned by an earlier torn append; restart to recover",
            ));
        }
        let r = self.try_append(rec);
        if r.is_err() && !self.poisoned {
            let repaired = self.file.set_len(self.valid_len).is_ok()
                && self.file.seek(SeekFrom::Start(self.valid_len)).is_ok();
            if !repaired {
                self.poisoned = true;
            }
        }
        r
    }

    fn try_append(&mut self, rec: &WalRecord) -> Result<()> {
        fail_point!("wal::before_append");
        let payload = encode_record(rec);
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if fail::eval("wal::short_write").is_some() {
            // A simulated torn write: half the frame reaches the disk and
            // the "process" is gone — no repair, the torn tail must stay
            // for recovery to truncate. The in-process handle is poisoned.
            self.file.write_all(&frame[..frame.len() / 2])?;
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(Error::durability("failpoint wal::short_write: torn append"));
        }
        self.file.write_all(&frame)?;
        fail_point!("wal::after_append");
        if self.durability == Durability::Commit {
            self.file.sync_data()?;
        }
        self.valid_len += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Reset the log after a snapshot at `version`: truncate to empty and
    /// write the barrier record (the compaction step).
    pub fn reset(&mut self, version: u64) -> Result<()> {
        fail_point!("wal::before_reset");
        if self.poisoned {
            return Err(Error::durability(
                "wal poisoned by an earlier torn append; restart to recover",
            ));
        }
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.valid_len = 0;
        self.records = 0;
        self.append(&WalRecord::Barrier { version })?;
        // A barrier must be durable in every mode: the snapshot it points
        // at has already replaced the log's history.
        self.file.sync_data()?;
        Ok(())
    }

    /// Fsync the log (Batch mode's snapshot/shutdown sync point).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Records currently in the log (since the last reset).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Valid bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.valid_len
    }
}

/// True when `dir` holds durable state to recover from (a snapshot
/// manifest or a non-empty log) — the serve binary skips `.facts`
/// preloading in that case.
pub fn dir_has_state(dir: &Path) -> bool {
    if snapshot_dir(dir).join("MANIFEST").exists() {
        return true;
    }
    fs::metadata(dir.join("wal.log"))
        .map(|m| m.len() > 0)
        .unwrap_or(false)
}

/// The snapshot subdirectory of a data dir.
pub fn snapshot_dir(dir: &Path) -> PathBuf {
    dir.join("snapshot")
}

/// One relation restored from a snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotTable {
    /// Relation name.
    pub name: String,
    /// Row width.
    pub arity: usize,
    /// Row-major values.
    pub rows: Vec<Value>,
}

/// A decoded snapshot: the version it captures and every table.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// `data_version` at snapshot time.
    pub version: u64,
    /// All tables, EDB and stored IDB alike.
    pub tables: Vec<SnapshotTable>,
}

/// Write a full snapshot of `rels` at `version` into `dir/snapshot`.
///
/// Table files are versioned (`name.<version>.tbl`) and written atomically
/// (temp + fsync + rename); the MANIFEST — carrying the version and a
/// checksum per table — is renamed into place last and is the commit
/// point: a crash anywhere before it leaves the previous snapshot (its
/// manifest *and* its table files) fully intact. Stale-version files are
/// garbage-collected only after the new manifest is durable.
pub fn write_snapshot<'a>(
    dir: &Path,
    version: u64,
    rels: impl IntoIterator<Item = &'a Relation>,
) -> Result<()> {
    let sdir = snapshot_dir(dir);
    fs::create_dir_all(&sdir)?;
    let mut entries: Vec<(String, usize, usize, u64)> = Vec::new();
    for rel in rels {
        let name = rel.schema().name.clone();
        let mut bytes = Vec::with_capacity(rel.len() * rel.arity() * 8);
        for r in 0..rel.len() {
            for c in 0..rel.arity() {
                bytes.extend_from_slice(&rel.col(c)[r].to_le_bytes());
            }
        }
        let sum = checksum(&bytes);
        write_atomic(
            &sdir.join(format!("{name}.{version}.tbl")),
            &bytes,
            "snapshot::before_rename",
        )?;
        entries.push((name, rel.arity(), rel.len(), sum));
    }

    let mut m = Vec::new();
    put_u64(&mut m, version);
    put_u32(&mut m, entries.len() as u32);
    for (name, arity, rows, sum) in &entries {
        put_str(&mut m, name);
        put_u32(&mut m, *arity as u32);
        put_u64(&mut m, *rows as u64);
        put_u64(&mut m, *sum);
    }
    let mut framed = Vec::with_capacity(8 + m.len());
    framed.extend_from_slice(&checksum(&m).to_le_bytes());
    framed.extend_from_slice(&m);
    write_atomic(
        &sdir.join("MANIFEST"),
        &framed,
        "snapshot::before_manifest_rename",
    )?;
    // Best-effort directory sync so the renames themselves survive a
    // power cut (not portably supported everywhere; ignore failures).
    if let Ok(d) = File::open(&sdir) {
        let _ = d.sync_all();
    }
    // The new manifest is the only root anyone reads through; previous-
    // version tables and temp leftovers are now garbage.
    let keep_suffix = format!(".{version}.tbl");
    if let Ok(rd) = fs::read_dir(&sdir) {
        for e in rd.flatten() {
            let f = e.file_name().to_string_lossy().into_owned();
            if f != "MANIFEST" && !f.ends_with(&keep_suffix) {
                let _ = fs::remove_file(e.path());
            }
        }
    }
    Ok(())
}

/// Read the snapshot under `dir`, if one exists. Checksums are verified
/// for the MANIFEST and every table; a mismatch is a hard
/// `Error::Durability` — a corrupt snapshot cannot be repaired by
/// truncation.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>> {
    let sdir = snapshot_dir(dir);
    let framed = match fs::read(sdir.join("MANIFEST")) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if framed.len() < 8 {
        return Err(Error::durability("snapshot MANIFEST too short"));
    }
    let (sum_bytes, m) = framed.split_at(8);
    if checksum(m) != u64::from_le_bytes(sum_bytes.try_into().unwrap()) {
        return Err(Error::durability("snapshot MANIFEST failed its checksum"));
    }
    let corrupt = || Error::durability("snapshot MANIFEST is malformed");
    let mut cur = Cur::new(m);
    let version = cur.u64().ok_or_else(corrupt)?;
    let n = cur.u32().ok_or_else(corrupt)?;
    let mut tables = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = cur.str().ok_or_else(corrupt)?;
        let arity = cur.u32().ok_or_else(corrupt)? as usize;
        let rows = cur.u64().ok_or_else(corrupt)? as usize;
        let sum = cur.u64().ok_or_else(corrupt)?;
        let bytes = fs::read(sdir.join(format!("{name}.{version}.tbl")))?;
        if bytes.len() != rows.saturating_mul(arity).saturating_mul(8) {
            return Err(Error::durability(format!(
                "snapshot table {name}: {} bytes on disk, manifest says {rows} rows × {arity}",
                bytes.len()
            )));
        }
        if checksum(&bytes) != sum {
            return Err(Error::durability(format!(
                "snapshot table {name} failed its checksum"
            )));
        }
        let rows_vec: Vec<Value> = bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        tables.push(SnapshotTable {
            name,
            arity,
            rows: rows_vec,
        });
    }
    Ok(Some(Snapshot { version, tables }))
}

/// Write `bytes` to `path` atomically: temp file, fsync, rename. The
/// failpoint fires between fsync and rename — the crash window an atomic
/// replace must tolerate.
fn write_atomic(path: &Path, bytes: &[u8], failpoint: &str) -> Result<()> {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".new");
    let tmp = path.with_file_name(name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    drop(f);
    // A crash here leaves only the temp file; recovery never reads it.
    fail_point!(failpoint);
    fs::rename(&tmp, path)?;
    Ok(())
}

// ---- record encoding -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_batches(out: &mut Vec<u8>, batches: &[WalBatch]) {
    put_u32(out, batches.len() as u32);
    for b in batches {
        put_str(out, &b.name);
        put_u32(out, b.arity as u32);
        put_u64(out, b.rows.len() as u64);
        for v in &b.rows {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Commit(c) => {
            out.push(TAG_COMMIT);
            put_u64(&mut out, c.version);
            put_batches(&mut out, &c.inserts);
            put_batches(&mut out, &c.deletes);
        }
        WalRecord::Barrier { version } => {
            out.push(TAG_BARRIER);
            put_u64(&mut out, *version);
        }
    }
    out
}

/// Checksum used for WAL frames, snapshot tables and the MANIFEST:
/// `mix64` folded over 8-byte chunks, seeded with the length so a
/// truncated-but-zero-padded payload cannot collide.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = mix64(0x9e37_79b9_7f4a_7c15 ^ payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.bytes(8)
            .map(|b| i64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        if n > 4096 {
            return None;
        }
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn decode_batches(cur: &mut Cur<'_>) -> Option<Vec<WalBatch>> {
    let n = cur.u32()?;
    if n > 1 << 20 {
        return None;
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = cur.str()?;
        let arity = cur.u32()? as usize;
        if arity == 0 || arity > 1024 {
            return None;
        }
        let count = cur.u64()? as usize;
        if !count.is_multiple_of(arity) {
            return None;
        }
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            rows.push(cur.i64()?);
        }
        out.push(WalBatch { name, arity, rows });
    }
    Some(out)
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut cur = Cur::new(payload);
    let rec = match cur.u8()? {
        TAG_COMMIT => {
            let version = cur.u64()?;
            let inserts = decode_batches(&mut cur)?;
            let deletes = decode_batches(&mut cur)?;
            WalRecord::Commit(WalCommit {
                version,
                inserts,
                deletes,
            })
        }
        TAG_BARRIER => WalRecord::Barrier {
            version: cur.u64()?,
        },
        _ => return None,
    };
    // Trailing junk inside a checksummed frame means the encoder and
    // decoder disagree — treat as corruption.
    cur.done().then_some(rec)
}

/// Decode one frame from the head of `buf`; `None` on a torn or corrupt
/// frame (the caller truncates there).
fn decode_frame(buf: &[u8]) -> Option<(WalRecord, usize)> {
    if buf.len() < 12 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let sum = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let end = 12usize.checked_add(len as usize)?;
    let payload = buf.get(12..end)?;
    if checksum(payload) != sum {
        return None;
    }
    Some((decode_record(payload)?, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "recstep-wal-test-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn commit(version: u64, tag: i64) -> WalRecord {
        WalRecord::Commit(WalCommit {
            version,
            inserts: vec![WalBatch {
                name: "edge".into(),
                arity: 2,
                rows: vec![tag, tag + 1],
            }],
            deletes: vec![],
        })
    }

    #[test]
    fn append_then_recover_roundtrips() {
        let dir = tmpdir();
        let (mut wal, recs, _) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert!(recs.is_empty());
        wal.append(&commit(1, 10)).unwrap();
        wal.append(&commit(2, 20)).unwrap();
        wal.append(&WalRecord::Barrier { version: 2 }).unwrap();
        assert_eq!(wal.records(), 3);
        drop(wal);

        let (_, recs, report) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], commit(1, 10));
        assert_eq!(recs[1], commit(2, 20));
        assert!(!report.truncated);
        assert_eq!(report.commits, 2);
        assert_eq!(report.last_version, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let dir = tmpdir();
        let (mut wal, _, _) = Wal::recover(&dir, Durability::Commit).unwrap();
        wal.append(&commit(1, 10)).unwrap();
        let good_len = wal.bytes();
        drop(wal);
        // Simulate a torn append: garbage bytes after the good record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3]).unwrap();
        drop(f);

        let (_, recs, report) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert_eq!(recs.len(), 1, "the good record survives");
        assert!(report.truncated);
        assert_eq!(report.bytes, good_len);
        assert_eq!(
            fs::metadata(dir.join("wal.log")).unwrap().len(),
            good_len,
            "the torn tail is physically cut off"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_truncates_it_and_everything_after() {
        let dir = tmpdir();
        let (mut wal, _, _) = Wal::recover(&dir, Durability::Commit).unwrap();
        wal.append(&commit(1, 10)).unwrap();
        let first_len = wal.bytes();
        wal.append(&commit(2, 20)).unwrap();
        wal.append(&commit(3, 30)).unwrap();
        drop(wal);
        // Flip one payload byte inside the second record.
        let mut bytes = fs::read(dir.join("wal.log")).unwrap();
        let idx = first_len as usize + 13;
        bytes[idx] ^= 0xff;
        fs::write(dir.join("wal.log"), &bytes).unwrap();

        let (_, recs, report) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert_eq!(recs.len(), 1, "records after the corrupt one are gone too");
        assert_eq!(recs[0].version(), 1);
        assert!(report.truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_poisons_and_restart_recovers_the_prefix() {
        let dir = tmpdir();
        let (mut wal, _, _) = Wal::recover(&dir, Durability::Commit).unwrap();
        wal.append(&commit(1, 10)).unwrap();
        fail::cfg("wal::short_write", "return_io_err").unwrap();
        assert!(wal.append(&commit(2, 20)).is_err());
        fail::remove("wal::short_write");
        // The in-process handle is poisoned: no further appends.
        let err = wal.append(&commit(3, 30)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        drop(wal);

        let (_, recs, report) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert_eq!(recs.len(), 1, "only the acked commit survives");
        assert_eq!(recs[0].version(), 1);
        assert!(report.truncated, "the torn half-frame was cut off");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_leaves_no_partial_record() {
        let dir = tmpdir();
        let (mut wal, _, _) = Wal::recover(&dir, Durability::Commit).unwrap();
        wal.append(&commit(1, 10)).unwrap();
        fail::cfg("wal::after_append", "return_io_err").unwrap();
        assert!(wal.append(&commit(2, 20)).is_err());
        fail::remove("wal::after_append");
        // The fully-written-but-unacked record was repaired away; the log
        // keeps accepting appends.
        wal.append(&commit(3, 30)).unwrap();
        drop(wal);
        let (_, recs, report) = Wal::recover(&dir, Durability::Commit).unwrap();
        assert_eq!(
            recs.iter().map(WalRecord::version).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert!(!report.truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_compacts_to_a_barrier() {
        let dir = tmpdir();
        let (mut wal, _, _) = Wal::recover(&dir, Durability::Batch).unwrap();
        for i in 1..=5 {
            wal.append(&commit(i, i as i64)).unwrap();
        }
        wal.reset(5).unwrap();
        assert_eq!(wal.records(), 1);
        drop(wal);
        let (_, recs, report) = Wal::recover(&dir, Durability::Batch).unwrap();
        assert_eq!(recs, vec![WalRecord::Barrier { version: 5 }]);
        assert_eq!(report.last_version, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_roundtrips_and_detects_corruption() {
        use crate::relation::Schema;
        let dir = tmpdir();
        let mut edge = Relation::new(Schema::with_arity("edge", 2));
        edge.push_row(&[1, 2]);
        edge.push_row(&[2, 3]);
        let mut node = Relation::new(Schema::with_arity("node", 1));
        node.push_row(&[7]);
        write_snapshot(&dir, 42, [&edge, &node]).unwrap();
        assert!(dir_has_state(&dir));

        let snap = read_snapshot(&dir).unwrap().expect("snapshot exists");
        assert_eq!(snap.version, 42);
        assert_eq!(snap.tables.len(), 2);
        let e = snap.tables.iter().find(|t| t.name == "edge").unwrap();
        assert_eq!(e.arity, 2);
        assert_eq!(e.rows, vec![1, 2, 2, 3]);

        // A corrupt table byte fails loudly, not silently.
        let tbl = snapshot_dir(&dir).join("edge.42.tbl");
        let mut bytes = fs::read(&tbl).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&tbl, &bytes).unwrap();
        let err = read_snapshot(&dir).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_snapshot_preserves_the_previous_snapshot() {
        use crate::relation::Schema;
        let dir = tmpdir();
        let mut edge = Relation::new(Schema::with_arity("edge", 2));
        edge.push_row(&[1, 2]);
        write_snapshot(&dir, 1, [&edge]).unwrap();

        // Crash at either rename site of the second snapshot: the first
        // snapshot — manifest AND table files — must stay fully readable.
        for fp in [
            "snapshot::before_rename",
            "snapshot::before_manifest_rename",
        ] {
            edge.push_row(&[2, 3]);
            fail::cfg(fp, "return_io_err").unwrap();
            assert!(write_snapshot(&dir, 2, [&edge]).is_err(), "{fp}");
            fail::remove(fp);
            let s = read_snapshot(&dir).unwrap().expect("old snapshot intact");
            assert_eq!(s.version, 1, "{fp}: manifest rename is the commit point");
            assert_eq!(s.tables[0].rows, vec![1, 2], "{fp}: old rows intact");
        }

        // A completed snapshot takes over and garbage-collects version 1.
        write_snapshot(&dir, 2, [&edge]).unwrap();
        let s = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(s.version, 2);
        assert_eq!(s.tables[0].rows.len(), 3 * 2);
        assert!(!snapshot_dir(&dir).join("edge.1.tbl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_parses() {
        assert_eq!(Durability::parse("off"), Some(Durability::Off));
        assert_eq!(Durability::parse("commit"), Some(Durability::Commit));
        assert_eq!(Durability::parse("batch"), Some(Durability::Batch));
        assert_eq!(Durability::parse("paranoid"), None);
        assert_eq!(Durability::Batch.as_str(), "batch");
    }
}
