//! Run-scoped catalog access: exclusive mutation or a shared-base overlay.
//!
//! A classic evaluation owns its database exclusively (`&mut Catalog`) and
//! mutates relations in place. Serving-style workloads want the opposite:
//! N concurrent evaluations reading one frozen database, each producing
//! its own results. [`RunCatalog`] gives the evaluator one surface over
//! both shapes:
//!
//! * [`RunCatalog::Exclusive`] wraps `&mut Catalog` — today's behavior,
//!   IDB resets and merges mutate the stored relations directly.
//! * [`RunCatalog::Shared`] wraps `&Catalog` plus a run-local *overlay*
//!   catalog. Every write lands in the overlay: IDB relations are
//!   *shadowed* (an empty run-local relation hides the base one by name),
//!   and a base relation touched by a rare in-place write (inline facts)
//!   is copied into the overlay first. The base catalog is never mutated,
//!   which is what makes `&Database` runs sound from many threads.
//!
//! Relation ids form one space: base ids stay `0..base.len()`, overlay
//! relations get ids `base.len()..`. Name lookup prefers the overlay, so a
//! shadowed relation resolves to its run-local id; reads through a
//! shadowed *base* id are redirected as well, so stale ids cannot observe
//! pre-shadow data. Base ids that were never shadowed are exactly the
//! relations frozen for the whole run — the ones whose indexes are safe to
//! publish into a cross-run shared cache (see
//! [`RunCatalog::shared_version`]).

use recstep_common::hash::FxHashMap;
use recstep_common::Result;

use crate::catalog::{Catalog, RelId};
use crate::relation::{Relation, Schema};
use crate::stats::StatsLevel;

/// A run-local overlay over a frozen base catalog.
pub struct Overlay<'b> {
    base: &'b Catalog,
    local: Catalog,
    /// Base id → overlay id for shadowed relations.
    shadow: FxHashMap<RelId, RelId>,
}

/// The catalog surface one evaluation runs against (see module docs).
pub enum RunCatalog<'d> {
    /// Exclusive mutable access to the database's own catalog.
    Exclusive(&'d mut Catalog),
    /// Read-only base + run-local overlay for all writes.
    Shared(Overlay<'d>),
}

impl<'d> RunCatalog<'d> {
    /// Shared-mode accessor over a frozen base catalog.
    pub fn shared(base: &'d Catalog) -> Self {
        RunCatalog::Shared(Overlay {
            base,
            local: Catalog::new(),
            shadow: FxHashMap::default(),
        })
    }

    /// Shared-mode accessor whose overlay is pre-seeded with a previous
    /// run's results: every relation of `local` shadows the same-named
    /// base relation (when one exists), so a re-entered evaluation reads
    /// the prior run's relation contents instead of starting from the
    /// base rows. The base stays frozen, exactly as under
    /// [`RunCatalog::shared`] — this is the overlay-refresh entry point
    /// incremental view maintenance uses to re-run a program against a
    /// *mutated* base while carrying its previous IDB results forward.
    pub fn shared_with(base: &'d Catalog, local: Catalog) -> Self {
        let mut shadow = FxHashMap::default();
        for (j, rel) in local.iter() {
            if let Some(id) = base.lookup(&rel.schema().name) {
                shadow.insert(id, j);
            }
        }
        RunCatalog::Shared(Overlay {
            base,
            local,
            shadow,
        })
    }

    /// Resolve a relation by name; overlay relations shadow base ones.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        match self {
            RunCatalog::Exclusive(c) => c.lookup(name),
            RunCatalog::Shared(o) => match o.local.lookup(name) {
                Some(j) => Some(o.base.len() + j),
                None => o.base.lookup(name),
            },
        }
    }

    /// Immutable access. Shadowed base ids redirect to their overlay copy.
    pub fn rel(&self, id: RelId) -> &Relation {
        match self {
            RunCatalog::Exclusive(c) => c.rel(id),
            RunCatalog::Shared(o) => {
                if id >= o.base.len() {
                    o.local.rel(id - o.base.len())
                } else if let Some(&j) = o.shadow.get(&id) {
                    o.local.rel(j)
                } else {
                    o.base.rel(id)
                }
            }
        }
    }

    /// Mutable access. In shared mode, a base relation is copied into the
    /// overlay on first write (copy-on-write) and shadowed from then on.
    pub fn rel_mut(&mut self, id: RelId) -> &mut Relation {
        match self {
            RunCatalog::Exclusive(c) => c.rel_mut(id),
            RunCatalog::Shared(o) => {
                let local_id = if id >= o.base.len() {
                    id - o.base.len()
                } else if let Some(&j) = o.shadow.get(&id) {
                    j
                } else {
                    let copy = o.base.rel(id).clone();
                    let j = o.local.register(copy).expect("shadow name is unique");
                    o.shadow.insert(id, j);
                    j
                };
                o.local.rel_mut(local_id)
            }
        }
    }

    /// Create a new, empty relation (in the overlay under shared mode).
    pub fn create(&mut self, schema: Schema) -> Result<RelId> {
        match self {
            RunCatalog::Exclusive(c) => c.create(schema),
            RunCatalog::Shared(o) => Ok(o.base.len() + o.local.create(schema)?),
        }
    }

    /// Reset a relation for this run: exclusive mode clears it in place;
    /// shared mode shadows it with an empty overlay relation without ever
    /// copying (or touching) the base rows.
    pub fn reset_for_run(&mut self, id: RelId) {
        match self {
            RunCatalog::Exclusive(c) => c.rel_mut(id).clear(),
            RunCatalog::Shared(o) => {
                if id >= o.base.len() {
                    o.local.rel_mut(id - o.base.len()).clear();
                } else if let Some(&j) = o.shadow.get(&id) {
                    o.local.rel_mut(j).clear();
                } else {
                    let schema = o.base.rel(id).schema().clone();
                    let j = o
                        .local
                        .create(schema)
                        .expect("shadow name is unique in the overlay");
                    o.shadow.insert(id, j);
                }
            }
        }
    }

    /// Modification version of a *frozen, shareable* relation: the key a
    /// cross-run index cache is allowed to use. `None` for relations this
    /// run may mutate (overlay relations and shadowed base ids) — their
    /// indexes must stay run-local.
    pub fn shared_version(&self, id: RelId) -> Option<u64> {
        match self {
            // Exclusive mode: every id is a database id; the *caller*
            // additionally excludes the IDBs it is about to mutate.
            RunCatalog::Exclusive(c) => Some(c.version(id)),
            RunCatalog::Shared(o) => {
                if id < o.base.len() && !o.shadow.contains_key(&id) {
                    Some(o.base.version(id))
                } else {
                    None
                }
            }
        }
    }

    /// The paper's `analyze(R)` at `Full` level. Base relations in shared
    /// mode are analyzed without caching (the base catalog is immutable);
    /// everything else caches in its owning catalog as usual.
    pub fn analyze_full(&mut self, id: RelId) {
        match self {
            RunCatalog::Exclusive(c) => {
                c.analyze(id, StatsLevel::Full);
            }
            RunCatalog::Shared(o) => {
                if id >= o.base.len() {
                    o.local.analyze(id - o.base.len(), StatsLevel::Full);
                } else if let Some(&j) = o.shadow.get(&id) {
                    o.local.analyze(j, StatsLevel::Full);
                } else {
                    let _ = crate::stats::analyze_view(o.base.rel(id).view(), StatsLevel::Full);
                }
            }
        }
    }

    /// Total heap bytes visible to this run (base + overlay in shared
    /// mode; the base is counted because the run reads it, exactly like an
    /// exclusive run counts its own catalog).
    pub fn heap_bytes(&self) -> usize {
        match self {
            RunCatalog::Exclusive(c) => c.heap_bytes(),
            RunCatalog::Shared(o) => o.base.heap_bytes() + o.local.heap_bytes(),
        }
    }

    /// The exclusively-owned catalog, when in exclusive mode (the commit
    /// path needs plain `&Catalog` access for the store's flush closure).
    pub fn as_exclusive(&self) -> Option<&Catalog> {
        match self {
            RunCatalog::Exclusive(c) => Some(c),
            RunCatalog::Shared(_) => None,
        }
    }

    /// Consume a shared-mode accessor into its overlay catalog — the
    /// run-local results of a `&Database` evaluation. `None` in exclusive
    /// mode (results already live in the database).
    pub fn into_overlay(self) -> Option<Catalog> {
        match self {
            RunCatalog::Exclusive(_) => None,
            RunCatalog::Shared(o) => Some(o.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_with(name: &str, rows: &[Vec<i64>]) -> Catalog {
        let mut cat = Catalog::new();
        cat.register(Relation::from_rows(Schema::with_arity(name, 2), rows))
            .unwrap();
        cat
    }

    #[test]
    fn shared_reads_base_until_shadowed() {
        let base = base_with("arc", &[vec![1, 2], vec![3, 4]]);
        let mut run = RunCatalog::shared(&base);
        let id = run.lookup("arc").unwrap();
        assert_eq!(run.rel(id).len(), 2);
        assert!(run.shared_version(id).is_some());
        // Copy-on-write: the overlay absorbs the rows, the base is intact.
        run.rel_mut(id).push_row(&[5, 6]);
        assert_eq!(run.rel(id).len(), 3);
        assert_eq!(base.rel(0).len(), 2);
        // Shadowed relations are no longer shareable.
        assert!(run.shared_version(id).is_none());
        // Name lookup now resolves to the overlay id; reads through the
        // stale base id redirect there too.
        let new_id = run.lookup("arc").unwrap();
        assert_eq!(run.rel(new_id).len(), 3);
        assert_eq!(run.rel(id).len(), 3);
    }

    #[test]
    fn reset_for_run_shadows_without_copying() {
        let base = base_with("tc", &[vec![1, 2]]);
        let mut run = RunCatalog::shared(&base);
        let id = run.lookup("tc").unwrap();
        run.reset_for_run(id);
        let id = run.lookup("tc").unwrap();
        assert_eq!(run.rel(id).len(), 0, "shadow starts empty");
        assert_eq!(base.rel(0).len(), 1, "base untouched");
        run.rel_mut(id).push_row(&[7, 8]);
        assert_eq!(run.rel(id).len(), 1);
        // Results come back out as the overlay catalog.
        let overlay = run.into_overlay().unwrap();
        let j = overlay.lookup("tc").unwrap();
        assert_eq!(overlay.rel(j).to_rows(), vec![vec![7, 8]]);
    }

    #[test]
    fn create_and_lookup_span_both_id_spaces() {
        let base = base_with("arc", &[vec![1, 2]]);
        let mut run = RunCatalog::shared(&base);
        let new = run.create(Schema::with_arity("fresh", 1)).unwrap();
        assert!(new >= 1);
        assert_eq!(run.lookup("fresh"), Some(new));
        assert_eq!(run.rel(new).arity(), 1);
        assert!(run.shared_version(new).is_none());
        run.reset_for_run(new);
        assert_eq!(run.rel(new).len(), 0);
    }

    #[test]
    fn shared_with_preseeds_shadows_from_a_previous_overlay() {
        let base = base_with("arc", &[vec![1, 2]]);
        // First run: derive tc into the overlay.
        let mut run = RunCatalog::shared(&base);
        run.create(Schema::with_arity("tc", 2)).unwrap();
        let tc = run.lookup("tc").unwrap();
        run.rel_mut(tc).push_row(&[1, 2]);
        let prev = run.into_overlay().unwrap();

        // Second run re-enters with the previous results carried forward.
        let run = RunCatalog::shared_with(&base, prev);
        let tc = run.lookup("tc").unwrap();
        assert_eq!(run.rel(tc).len(), 1, "previous results visible");
        assert!(run.shared_version(tc).is_none());
        let arc = run.lookup("arc").unwrap();
        assert_eq!(run.rel(arc).len(), 1, "base still reads through");
        assert!(
            run.shared_version(arc).is_some(),
            "unshadowed base is frozen"
        );

        // A previous-run relation that shadows a same-named base relation
        // resolves to the carried rows, through both id spaces.
        let mut seeded = Catalog::new();
        seeded
            .register(Relation::from_rows(
                Schema::with_arity("arc", 2),
                &[vec![7, 8], vec![9, 10]],
            ))
            .unwrap();
        let run = RunCatalog::shared_with(&base, seeded);
        let arc = run.lookup("arc").unwrap();
        assert_eq!(run.rel(arc).len(), 2, "carried rows shadow the base");
        assert_eq!(run.rel(0).len(), 2, "stale base id redirects");
        assert!(run.shared_version(0).is_none(), "shadowed id not shareable");
    }

    #[test]
    fn exclusive_mode_passes_through() {
        let mut cat = base_with("arc", &[vec![1, 2]]);
        let mut run = RunCatalog::Exclusive(&mut cat);
        let id = run.lookup("arc").unwrap();
        run.reset_for_run(id);
        assert_eq!(run.rel(id).len(), 0);
        assert!(run.shared_version(id).is_some());
        assert!(run.as_exclusive().is_some());
        assert!(run.into_overlay().is_none());
    }
}
