//! Algorithm 3: parallel bit-matrix evaluation of same generation,
//! plus the coordinated variant of Figure 7.
//!
//! ```text
//! sg(x, y) :- arc(p, x), arc(p, y), x != y.
//! sg(x, y) :- arc(a, x), sg(a, b), arc(b, y).
//! ```
//!
//! Unlike TC, a pair `(a, b)` in δ produces pairs `(q, p)` in *arbitrary*
//! rows (`q ∈ Varc[a]`, `p ∈ Varc[b]`), so newly produced work is not tied
//! to the thread's row partition — the source of the data skew the paper
//! discusses. [`sg_closure`] is the zero-coordination variant (each thread
//! keeps everything it generates); [`sg_closure_coordinated`] re-balances by
//! packing local δ overflow into work orders on a global pool.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use recstep_common::sched::ThreadPool;

use crate::{AdjIndex, BitMatrix};

/// Seed `Msg` and return the adjacency index shared by both variants.
/// With `seeds = None` the same-parent pairs of Algorithm 3 line 9 are
/// generated; otherwise the provided pairs (e.g. an already-evaluated seed
/// stratum) initialize the matrix.
fn seed(
    pool: &ThreadPool,
    n: usize,
    edges: &[(u32, u32)],
    seeds: Option<&[(u32, u32)]>,
) -> (AdjIndex, BitMatrix) {
    let arc = AdjIndex::new(n, edges);
    let msg = BitMatrix::new(n);
    match seeds {
        Some(pairs) => {
            pool.parallel_for(pairs.len(), 4096, |range, _| {
                for e in range {
                    let (x, y) = pairs[e];
                    msg.set(x as usize, y as usize);
                }
            });
        }
        None => {
            pool.parallel_for(n, 64, |range, _| {
                for p in range {
                    let children = arc.neighbors(p as u32);
                    for &x in children {
                        for &y in children {
                            if x != y {
                                msg.set(x as usize, y as usize);
                            }
                        }
                    }
                }
            });
        }
    }
    (arc, msg)
}

/// Expand one δ pair, pushing newly set pairs onto `out`.
#[inline]
fn expand(arc: &AdjIndex, msg: &BitMatrix, a: u32, b: u32, out: &mut Vec<(u32, u32)>) {
    for &q in arc.neighbors(a) {
        for &p in arc.neighbors(b) {
            if msg.set(q as usize, p as usize) {
                out.push((q, p));
            }
        }
    }
}

/// Same-generation closure, zero-coordination variant (paper Algorithm 3).
pub fn sg_closure(pool: &ThreadPool, n: usize, edges: &[(u32, u32)]) -> BitMatrix {
    sg_closure_seeded(pool, n, edges, None)
}

/// Zero-coordination SG closure from explicit seed pairs (`None` = generate
/// the same-parent seed of Algorithm 3).
pub fn sg_closure_seeded(
    pool: &ThreadPool,
    n: usize,
    edges: &[(u32, u32)],
    seeds: Option<&[(u32, u32)]>,
) -> BitMatrix {
    let (arc, msg) = seed(pool, n, edges, seeds);
    pool.run(|ctx| {
        // Initial δ: the seeded bits of this thread's row partition
        // (round-robin, line 10).
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut row = ctx.worker;
        while row < n {
            for col in msg.row_ones(row) {
                stack.push((row as u32, col as u32));
            }
            row += ctx.threads;
        }
        // Work generated lands on the generating thread, wherever its row
        // partition is — the skew the coordinated variant fixes.
        while let Some((a, b)) = stack.pop() {
            expand(&arc, &msg, a, b, &mut stack);
        }
    });
    msg
}

/// Instrumentation of the coordinated variant.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordStats {
    /// Work orders posted to the global pool.
    pub orders_posted: u64,
    /// Work orders grabbed by idle threads.
    pub orders_grabbed: u64,
    /// Pairs shipped through the pool.
    pub pairs_shipped: u64,
}

/// Same-generation closure with work re-balancing (Figure 7's
/// SG-PBME-COORD): when a thread's local δ exceeds `threshold`, the
/// overflow is packed as a work order and published to a global pool;
/// idle threads grab orders. Termination is detected when every thread is
/// idle and the pool is empty.
pub fn sg_closure_coordinated(
    pool: &ThreadPool,
    n: usize,
    edges: &[(u32, u32)],
    threshold: usize,
) -> (BitMatrix, CoordStats) {
    sg_closure_coordinated_seeded(pool, n, edges, threshold, None)
}

/// Coordinated SG closure from explicit seed pairs (`None` = generate the
/// same-parent seed of Algorithm 3).
pub fn sg_closure_coordinated_seeded(
    pool: &ThreadPool,
    n: usize,
    edges: &[(u32, u32)],
    threshold: usize,
    seeds: Option<&[(u32, u32)]>,
) -> (BitMatrix, CoordStats) {
    let threshold = threshold.max(1);
    let (arc, msg) = seed(pool, n, edges, seeds);
    let global: Mutex<Vec<Vec<(u32, u32)>>> = Mutex::new(Vec::new());
    let idle = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let posted = AtomicU64::new(0);
    let grabbed = AtomicU64::new(0);
    let shipped = AtomicU64::new(0);

    pool.run(|ctx| {
        let mut local: Vec<(u32, u32)> = Vec::new();
        let mut row = ctx.worker;
        while row < n {
            for col in msg.row_ones(row) {
                local.push((row as u32, col as u32));
            }
            row += ctx.threads;
        }
        loop {
            if let Some((a, b)) = local.pop() {
                expand(&arc, &msg, a, b, &mut local);
                // Aggregate overflow into a work order (paper: "the δ is
                // aggregated and packed as a work order").
                if local.len() > threshold {
                    let order: Vec<(u32, u32)> = local.split_off(local.len() / 2);
                    shipped.fetch_add(order.len() as u64, Ordering::Relaxed);
                    posted.fetch_add(1, Ordering::Relaxed);
                    global.lock().push(order);
                }
                continue;
            }
            // Local queue drained: become idle and look for work orders.
            idle.fetch_add(1, Ordering::SeqCst);
            loop {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                let mut pool_guard = global.lock();
                if let Some(order) = pool_guard.pop() {
                    // Leave idle state while still holding the lock so the
                    // termination check below stays consistent.
                    idle.fetch_sub(1, Ordering::SeqCst);
                    drop(pool_guard);
                    grabbed.fetch_add(1, Ordering::Relaxed);
                    local = order;
                    break;
                }
                if idle.load(Ordering::SeqCst) == ctx.threads {
                    // Pool empty and everyone idle (checked under the pool
                    // lock): nothing can be produced any more.
                    done.store(true, Ordering::SeqCst);
                    return;
                }
                drop(pool_guard);
                std::thread::yield_now();
            }
        }
    });
    (
        msg,
        CoordStats {
            orders_posted: posted.load(Ordering::Relaxed),
            orders_grabbed: grabbed.load(Ordering::Relaxed),
            pairs_shipped: shipped.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Naïve fixpoint oracle for SG.
    fn oracle_sg(n: usize, edges: &[(u32, u32)]) -> HashSet<(u32, u32)> {
        let arc = AdjIndex::new(n, edges);
        let mut sg: HashSet<(u32, u32)> = HashSet::new();
        for p in 0..n as u32 {
            for &x in arc.neighbors(p) {
                for &y in arc.neighbors(p) {
                    if x != y {
                        sg.insert((x, y));
                    }
                }
            }
        }
        loop {
            let mut fresh = Vec::new();
            for &(a, b) in &sg {
                for &x in arc.neighbors(a) {
                    for &y in arc.neighbors(b) {
                        if !sg.contains(&(x, y)) {
                            fresh.push((x, y));
                        }
                    }
                }
            }
            if fresh.is_empty() {
                break;
            }
            sg.extend(fresh);
        }
        sg
    }

    fn rand_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..m).map(|_| (rnd() % n, rnd() % n)).collect()
    }

    fn as_set(m: &BitMatrix) -> HashSet<(u32, u32)> {
        m.to_pairs().into_iter().collect()
    }

    #[test]
    fn tree_same_generation() {
        // Binary tree: 0 -> 1,2; 1 -> 3,4; 2 -> 5,6.
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)];
        let pool = ThreadPool::new(3);
        let msg = sg_closure(&pool, 7, &edges);
        let expect = oracle_sg(7, &edges);
        assert_eq!(as_set(&msg), expect);
        // Siblings and cousins are same-generation.
        assert!(msg.get(1, 2));
        assert!(msg.get(3, 5));
        assert!(!msg.get(1, 3));
    }

    #[test]
    fn random_graphs_match_oracle_both_variants() {
        for seed in [7u64, 42, 99] {
            let n = 40;
            let edges = rand_edges(n, 150, seed);
            let expect = oracle_sg(n as usize, &edges);
            let pool = ThreadPool::new(4);
            let plain = sg_closure(&pool, n as usize, &edges);
            assert_eq!(as_set(&plain), expect, "plain, seed {seed}");
            let (coord, stats) = sg_closure_coordinated(&pool, n as usize, &edges, 8);
            assert_eq!(as_set(&coord), expect, "coordinated, seed {seed}");
            // Orders grabbed never exceeds orders posted.
            assert!(stats.orders_grabbed <= stats.orders_posted);
        }
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let msg = sg_closure(&pool, 5, &[]);
        assert_eq!(msg.count_ones(), 0);
        let (msg, stats) = sg_closure_coordinated(&pool, 5, &[], 4);
        assert_eq!(msg.count_ones(), 0);
        assert_eq!(stats.orders_posted, 0);
    }

    #[test]
    fn single_threaded_variants_agree() {
        let edges = rand_edges(25, 80, 5);
        let pool = ThreadPool::new(1);
        let a = sg_closure(&pool, 25, &edges);
        let (b, _) = sg_closure_coordinated(&pool, 25, &edges, 2);
        assert_eq!(as_set(&a), as_set(&b));
    }

    #[test]
    fn skewed_graph_ships_work_orders() {
        // A "hub" fanning out: one thread's partition generates nearly all
        // work, forcing re-balancing through the pool.
        let mut edges = Vec::new();
        let fan = 48u32;
        for i in 0..fan {
            edges.push((0, 1 + i)); // shared parent -> dense sg seed rows
            edges.push((1 + i, 1 + (i + 1) % fan));
        }
        let n = fan as usize + 1;
        let expect = oracle_sg(n, &edges);
        let pool = ThreadPool::new(4);
        let (coord, stats) = sg_closure_coordinated(&pool, n, &edges, 4);
        assert_eq!(as_set(&coord), expect);
        assert!(stats.orders_posted > 0, "skew must trigger work orders");
    }
}
