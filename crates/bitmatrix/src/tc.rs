//! Algorithm 2: parallel bit-matrix evaluation of transitive closure.
//!
//! Rows of `Mtc` are partitioned round-robin over `k` threads; each thread
//! runs the per-row frontier loop (lines 8–21) with **zero coordination**:
//! row `i`'s evaluation only ever updates row `i`, so threads never contend.

use recstep_common::sched::ThreadPool;

use crate::{AdjIndex, BitMatrix};

/// Compute the transitive closure of `edges` over vertices `0..n`.
///
/// Returns `Mtc` with `Mtc[i, j] = 1` iff `j` is reachable from `i` by a
/// non-empty path.
pub fn tc_closure(pool: &ThreadPool, n: usize, edges: &[(u32, u32)]) -> BitMatrix {
    tc_closure_seeded(pool, n, edges, edges)
}

/// Generalized Algorithm 2: close `seeds` under right-composition with
/// `edges` — the fixpoint of `R(x, y) :- R(x, z), arc(z, y)` with `R`
/// initialized to `seeds`. With `seeds = edges` this is the paper's TC
/// (`Mtc ← Marc`, line 5).
pub fn tc_closure_seeded(
    pool: &ThreadPool,
    n: usize,
    seeds: &[(u32, u32)],
    edges: &[(u32, u32)],
) -> BitMatrix {
    let arc = AdjIndex::new(n, edges);
    let mtc = BitMatrix::new(n);
    pool.parallel_for(seeds.len(), 4096, |range, _| {
        for e in range {
            let (s, t) = seeds[e];
            mtc.set(s as usize, t as usize);
        }
    });
    // Round-robin row partitions (line 6), one frontier loop per row.
    pool.run(|ctx| {
        let mut delta: Vec<u32> = Vec::new();
        let mut delta_next: Vec<u32> = Vec::new();
        let mut row = ctx.worker;
        while row < n {
            // δ ← {u | Mtc[i, u] = 1} (line 9).
            delta.clear();
            delta.extend(mtc.row_ones(row).map(|u| u as u32));
            while !delta.is_empty() {
                delta_next.clear();
                for &t in &delta {
                    for &j in arc.neighbors(t) {
                        // Lines 14-16: test-and-set fused join/dedup.
                        if mtc.set(row, j as usize) {
                            delta_next.push(j);
                        }
                    }
                }
                std::mem::swap(&mut delta, &mut delta_next);
            }
            row += ctx.threads;
        }
    });
    mtc
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use recstep_common::sched::ThreadPool;

    /// Floyd–Warshall oracle.
    fn oracle_tc(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<bool>> {
        let mut reach = vec![vec![false; n]; n];
        for &(s, t) in edges {
            reach[s as usize][t as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        reach
    }

    fn check(n: usize, edges: &[(u32, u32)], threads: usize) {
        let pool = ThreadPool::new(threads);
        let mtc = tc_closure(&pool, n, edges);
        let oracle = oracle_tc(n, edges);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(mtc.get(i, j), oracle[i][j], "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn chain_and_cycle() {
        check(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], 2);
        check(4, &[(0, 1), (1, 2), (2, 0)], 3);
    }

    #[test]
    fn empty_and_self_loops() {
        check(3, &[], 2);
        check(3, &[(1, 1)], 2);
    }

    #[test]
    fn random_graph_matches_oracle() {
        let n = 60;
        let mut edges = Vec::new();
        let mut state = 123456789u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..250 {
            edges.push((rnd() % n as u32, rnd() % n as u32));
        }
        check(n, &edges, 4);
        check(n, &edges, 1);
    }

    #[test]
    fn dense_block_closure() {
        // Complete bipartite-ish structure: 0..5 -> 5..10 -> 0..5.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 5..10u32 {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
        let pool = ThreadPool::new(4);
        let mtc = tc_closure(&pool, 10, &edges);
        // Everything reaches everything.
        assert_eq!(mtc.count_ones(), 100);
    }
}
