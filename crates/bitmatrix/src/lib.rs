//! Parallel Bit-Matrix Evaluation (PBME) — paper §5.3.
//!
//! For dense graphs over small active domains, tuple-based evaluation of TC
//! and SG materializes intermediate results orders of magnitude larger than
//! the input; the paper replaces hash-based join + dedup with an `n × n`
//! bit matrix, "naturally merging the join and deduplication into one single
//! stage". This crate implements:
//!
//! * [`matrix::BitMatrix`] — the atomic bit matrix;
//! * [`tc`] — Algorithm 2: zero-coordination row-partitioned transitive
//!   closure;
//! * [`sg`] — Algorithm 3: same-generation with the `Varc` vector index,
//!   plus the coordinated variant of Figure 7 (work re-balancing through a
//!   global pool once a thread's local δ exceeds a threshold).

pub mod matrix;
pub mod sg;
pub mod tc;

pub use matrix::BitMatrix;
pub use sg::{
    sg_closure, sg_closure_coordinated, sg_closure_coordinated_seeded, sg_closure_seeded,
    CoordStats,
};
pub use tc::{tc_closure, tc_closure_seeded};

/// Adjacency-list index `Varc[x] = { y | arc(x, y) }` (paper Algorithm 3
/// line 4). Also serves as the `Marc` virtual bit matrix of Algorithm 2 —
/// scanning a row of `Marc` is iterating `Varc[x]`.
#[derive(Clone, Debug)]
pub struct AdjIndex {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl AdjIndex {
    /// Build from an edge list over vertices `0..n` (CSR layout).
    pub fn new(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        AdjIndex { offsets, targets }
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.targets.capacity()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_lists_group_by_source() {
        let idx = AdjIndex::new(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(idx.neighbors(0), &[1, 2]);
        assert!(idx.neighbors(1).is_empty());
        assert_eq!(idx.neighbors(2), &[3]);
        assert_eq!(idx.neighbors(3), &[0]);
        assert_eq!(idx.vertices(), 4);
        assert_eq!(idx.edges(), 4);
        assert!(idx.heap_bytes() >= 4 * 4);
    }
}
