//! The `n × n` atomic bit matrix.
//!
//! Bits are packed 64 per word, row-major. Writes use `fetch_or` so rows can
//! be updated from any thread (Algorithm 3's δ is not tied to row
//! partitions); reads are relaxed loads. [`BitMatrix::set`] reports whether
//! the bit was newly set, which is exactly the duplicate test fused into the
//! join ("merging the join and deduplication into one single stage").

use std::sync::atomic::{AtomicU64, Ordering};

/// Square bit matrix over vertices `0..n`.
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<AtomicU64>,
}

impl BitMatrix {
    /// All-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        let total = words_per_row.checked_mul(n).expect("bit matrix too large");
        let mut bits = Vec::with_capacity(total);
        bits.resize_with(total, || AtomicU64::new(0));
        BitMatrix {
            n,
            words_per_row,
            bits,
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes the matrix itself would occupy (the paper's memory-fit check
    /// uses this *before* allocating).
    pub fn bytes_for(n: usize) -> usize {
        n.div_ceil(64) * n * 8
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }

    /// Set bit `(i, j)`; returns `true` iff it was previously 0.
    #[inline]
    pub fn set(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let word = i * self.words_per_row + j / 64;
        let mask = 1u64 << (j % 64);
        let prev = self.bits[word].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Read bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        let word = i * self.words_per_row + j / 64;
        let mask = 1u64 << (j % 64);
        self.bits[word].load(Ordering::Relaxed) & mask != 0
    }

    /// Iterate the set columns of row `i`.
    pub fn row_ones(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let base = i * self.words_per_row;
        let n = self.n;
        (0..self.words_per_row).flat_map(move |w| {
            let mut word = self.bits[base + w].load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(w * 64 + bit)
            })
            .filter(move |&j| j < n)
        })
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Materialize all set bits as `(row, col)` pairs.
    pub fn to_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.count_ones());
        for i in 0..self.n {
            for j in self.row_ones(i) {
                out.push((i as u32, j as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_reports_novelty() {
        let m = BitMatrix::new(10);
        assert!(m.set(3, 7));
        assert!(!m.set(3, 7));
        assert!(m.get(3, 7));
        assert!(!m.get(7, 3));
    }

    #[test]
    fn row_iteration_across_word_boundaries() {
        let m = BitMatrix::new(130);
        for j in [0usize, 63, 64, 65, 127, 128, 129] {
            m.set(5, j);
        }
        let got: Vec<usize> = m.row_ones(5).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 127, 128, 129]);
        assert_eq!(m.count_ones(), 7);
    }

    #[test]
    fn to_pairs_round_trips() {
        let m = BitMatrix::new(6);
        let pairs = [(0u32, 5u32), (2, 2), (5, 0)];
        for &(i, j) in &pairs {
            m.set(i as usize, j as usize);
        }
        let mut got = m.to_pairs();
        got.sort_unstable();
        assert_eq!(got, pairs.to_vec());
    }

    #[test]
    fn bytes_estimate_matches_allocation() {
        assert_eq!(BitMatrix::bytes_for(64), 64 * 8);
        assert_eq!(BitMatrix::bytes_for(65), 2 * 65 * 8);
        let m = BitMatrix::new(65);
        assert_eq!(m.heap_bytes(), BitMatrix::bytes_for(65));
    }

    #[test]
    fn concurrent_sets_count_once() {
        let m = std::sync::Arc::new(BitMatrix::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut fresh = 0usize;
                for i in 0..64 {
                    for j in 0..64 {
                        if m.set(i, j) {
                            fresh += 1;
                        }
                    }
                }
                fresh
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 64 * 64);
        assert_eq!(m.count_ones(), 64 * 64);
    }
}
