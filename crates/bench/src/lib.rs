//! Shared harness for the per-figure benchmark targets.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target (`cargo bench -p recstep-bench --bench figNN_*`) that prints the
//! same rows/series the paper reports. Absolute numbers differ (laptop vs.
//! the paper's 2×10-core Xeon; scaled datasets), but the *shape* — who
//! wins, by what factor, where crossovers fall — is the reproduction
//! target; EXPERIMENTS.md records both.
//!
//! Dataset sizes default to laptop scale; set `RECSTEP_SCALE=<divisor>`
//! (smaller divisor = closer to the paper's sizes, 1 = paper scale) to
//! grow them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use recstep::{Config, Database, Engine, MaterializedView, PreparedProgram, Value};
use recstep_common::sched::ThreadPool;

/// Divisor applied to the paper's dataset sizes (default laptop scale).
pub fn scale() -> u32 {
    std::env::var("RECSTEP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Default divisor: paper sizes / 50 keeps the whole suite in minutes.
pub const DEFAULT_SCALE: u32 = 50;

/// Threads used by "full parallelism" runs.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Outcome of one measured run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Completed in the given wall time with a result-size witness.
    Ok {
        /// Wall time.
        time: Duration,
        /// Output tuples (sanity witness that engines agree).
        rows: usize,
    },
    /// Ran out of its memory budget (the paper's OOM bars).
    Oom,
    /// The engine cannot express the workload (paper's missing bars,
    /// e.g. Soufflé on recursive aggregation).
    Unsupported,
}

impl Outcome {
    /// Seconds, if completed.
    pub fn secs(&self) -> Option<f64> {
        match self {
            Outcome::Ok { time, .. } => Some(time.as_secs_f64()),
            _ => None,
        }
    }

    /// Output rows, if completed.
    pub fn rows(&self) -> Option<usize> {
        match self {
            Outcome::Ok { rows, .. } => Some(*rows),
            _ => None,
        }
    }

    /// Render like the paper's bar labels.
    pub fn cell(&self) -> String {
        match self {
            Outcome::Ok { time, .. } => format!("{:.3}s", time.as_secs_f64()),
            Outcome::Oom => "OOM".into(),
            Outcome::Unsupported => "-".into(),
        }
    }
}

/// Time a fallible engine run, mapping memory-budget errors to OOM.
pub fn measure<F: FnOnce() -> recstep::Result<usize>>(f: F) -> Outcome {
    let t0 = Instant::now();
    match f() {
        Ok(rows) => Outcome::Ok {
            time: t0.elapsed(),
            rows,
        },
        Err(e) if e.to_string().contains("out of memory") => Outcome::Oom,
        Err(e) => panic!("benchmark run failed: {e}"),
    }
}

/// Build an engine with the benchmark default memory budget.
pub fn recstep_engine(cfg: Config) -> Engine {
    Engine::from_config(cfg.mem_budget(budget_bytes())).expect("engine construction")
}

/// Compile `src` once on a budgeted engine (the prepared program keeps its
/// engine alive, so the caller only holds one value).
pub fn prepared(cfg: Config, src: &str) -> PreparedProgram {
    recstep_engine(cfg).prepare(src).expect("program compiles")
}

/// Fresh database preloaded with binary edge relations (one transaction).
pub fn db_with_edges(loads: &[(&str, &[(Value, Value)])]) -> Database {
    let mut db = Database::new().expect("database");
    let mut tx = db.transaction();
    for (name, data) in loads {
        tx.load_edges(name, data).expect("stage edges");
    }
    tx.commit().expect("commit edges");
    db
}

/// The common bench shape: compile once, load edges, time exactly one run,
/// and witness the result size of `rel`.
pub fn run_recstep(
    cfg: Config,
    src: &str,
    loads: &[(&str, &[(Value, Value)])],
    rel: &str,
) -> Outcome {
    let prog = prepared(cfg, src);
    let mut db = db_with_edges(loads);
    measure(|| prog.run(&mut db).map(|_| db.row_count(rel)))
}

/// One fused-vs-unfused measurement of the streaming delta pipeline (the
/// record behind `BENCH_pipeline.json`, so the perf trajectory of the hot
/// path is recorded run over run).
#[derive(Clone, Debug)]
pub struct PipelineBench {
    /// Workload label.
    pub workload: String,
    /// Input edges.
    pub edges: usize,
    /// Output (closure) rows — identical across modes by assertion.
    pub rows: usize,
    /// Fixpoint iterations of the fused run.
    pub iterations: usize,
    /// Candidate tuples evaluated per run (equal across modes).
    pub tuples: usize,
    /// Best wall seconds with the fused pipeline on.
    pub fused_secs: f64,
    /// Best wall seconds with `--no-fused-pipeline`.
    pub unfused_secs: f64,
    /// Peak engine-estimated bytes, fused.
    pub fused_peak_bytes: usize,
    /// Peak engine-estimated bytes, unfused.
    pub unfused_peak_bytes: usize,
    /// Candidate rows the fused run dropped at the probe site.
    pub rt_rows_skipped_at_source: usize,
    /// Bytes never materialized thanks to those drops.
    pub rt_bytes_never_materialized: usize,
    /// `Rt` bytes the unfused run materialized and merged.
    pub unfused_rt_merge_bytes: usize,
    /// Shared-cache misses of the first fused run over a fresh database
    /// (indexes built and published).
    pub cache_misses: usize,
    /// Shared-cache hits of a *second* fused run over the same database —
    /// the cross-run reuse this cache exists for.
    pub cache_hits: usize,
    /// Entries evicted across the two cache-measurement runs.
    pub cache_evictions: usize,
    /// Cache resident bytes after the second run.
    pub cache_bytes: usize,
    /// Group-at-source streaming aggregation measurement (the `"agg"`
    /// block of `BENCH_pipeline.json`), when the caller ran one.
    pub agg: Option<AggBench>,
}

/// One fused-vs-unfused measurement of group-at-source streaming
/// aggregation: connected components (recursive `MIN` + a non-recursive
/// group-by tail) with `fused_agg` on vs. `--no-fused-agg`.
#[derive(Clone, Debug)]
pub struct AggBench {
    /// Workload label.
    pub workload: String,
    /// Input edges.
    pub edges: usize,
    /// Output (`cc3`) rows — identical across modes by assertion.
    pub rows: usize,
    /// Fixpoint iterations of the fused run.
    pub iterations: usize,
    /// Best wall seconds with group-at-source streaming on.
    pub fused_secs: f64,
    /// Best wall seconds with `--no-fused-agg`.
    pub unfused_secs: f64,
    /// Candidate rows the fused run folded into aggregate state at the
    /// probe site (what the unfused run buffered into `Rt`).
    pub rows_folded_at_source: usize,
    /// Groups the aggregation sinks emitted as ∆ across the fused run.
    pub groups_improved: usize,
}

impl AggBench {
    /// Fused speedup over unfused (wall-clock ratio).
    pub fn speedup(&self) -> f64 {
        self.unfused_secs / self.fused_secs.max(1e-9)
    }

    /// Render as the single-line JSON block [`splice_json_block`] takes
    /// (also embedded by [`PipelineBench::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"edges\": {}, \"rows\": {}, \
             \"iterations\": {}, \"fused\": {:.6}, \"unfused\": {:.6}, \
             \"rows_folded_at_source\": {}, \"groups_improved\": {}, \
             \"speedup\": {:.3}}}",
            self.workload,
            self.edges,
            self.rows,
            self.iterations,
            self.fused_secs,
            self.unfused_secs,
            self.rows_folded_at_source,
            self.groups_improved,
            self.speedup(),
        )
    }
}

/// Run connected components with group-at-source streaming aggregation on
/// and off, best-of-`repeats` wall time per mode (interleaved), asserting
/// both modes compute the identical relation and that the fused mode
/// really folded at source.
pub fn run_agg_bench(
    workload: &str,
    edges: &[(Value, Value)],
    threads: usize,
    repeats: usize,
) -> AggBench {
    let cfg = |fused: bool| {
        Config::default()
            .threads(threads)
            .pbme(recstep::PbmeMode::Off)
            .fused_agg(fused)
    };
    let run_once = |fused: bool| {
        let prog = prepared(cfg(fused), recstep::programs::CC);
        let mut db = db_with_edges(&[("arc", edges)]);
        let t0 = Instant::now();
        let stats = prog.run(&mut db).expect("CC completes");
        (t0.elapsed().as_secs_f64(), stats, db.row_count("cc3"))
    };
    let mut best: [Option<(f64, recstep::EvalStats, usize)>; 2] = [None, None];
    for _ in 0..repeats.max(1) {
        for (slot, fused) in [(0, true), (1, false)] {
            let (secs, stats, rows) = run_once(fused);
            let better = best[slot].as_ref().is_none_or(|(b, _, _)| secs < *b);
            if better {
                best[slot] = Some((secs, stats, rows));
            }
        }
    }
    let (fused_secs, fused_stats, fused_rows) = best[0].take().expect("ran");
    let (unfused_secs, unfused_stats, unfused_rows) = best[1].take().expect("ran");
    assert_eq!(
        fused_rows, unfused_rows,
        "fused and unfused aggregation must agree on the components"
    );
    assert_eq!(
        fused_stats.rt_merge_bytes, 0,
        "fused aggregation must not materialize the pre-aggregation Rt"
    );
    assert!(
        fused_stats.agg_rows_folded_at_source > 0,
        "CC must fold candidate rows at source"
    );
    assert_eq!(
        unfused_stats.agg_sink_runs, 0,
        "--no-fused-agg must keep the materializing aggregation path"
    );
    AggBench {
        workload: workload.to_string(),
        edges: edges.len(),
        rows: fused_rows,
        iterations: fused_stats.iterations,
        fused_secs,
        unfused_secs,
        rows_folded_at_source: fused_stats.agg_rows_folded_at_source,
        groups_improved: fused_stats.agg_groups_improved,
    }
}

impl PipelineBench {
    /// Candidate tuples per second, fused.
    pub fn fused_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.fused_secs.max(1e-9)
    }

    /// Candidate tuples per second, unfused.
    pub fn unfused_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.unfused_secs.max(1e-9)
    }

    /// Fused speedup over unfused (wall-clock ratio).
    pub fn speedup(&self) -> f64 {
        self.unfused_secs / self.fused_secs.max(1e-9)
    }

    /// Render as a small JSON document.
    pub fn to_json(&self) -> String {
        let mut json = self.to_json_base();
        if let Some(a) = &self.agg {
            let block = format!(",\n  \"agg\": {}", a.to_json());
            let at = json.rfind("\n}").expect("base document closes");
            json.insert_str(at, &block);
        }
        json
    }

    fn to_json_base(&self) -> String {
        format!(
            "{{\n  \"workload\": \"{}\",\n  \"edges\": {},\n  \"rows\": {},\n  \
             \"iterations\": {},\n  \"tuples\": {},\n  \
             \"fused\": {{\"secs\": {:.6}, \"tuples_per_sec\": {:.1}, \"peak_bytes\": {}}},\n  \
             \"unfused\": {{\"secs\": {:.6}, \"tuples_per_sec\": {:.1}, \"peak_bytes\": {}}},\n  \
             \"rt_rows_skipped_at_source\": {},\n  \"rt_bytes_never_materialized\": {},\n  \
             \"unfused_rt_merge_bytes\": {},\n  \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"resident_bytes\": {}}},\n  \"speedup\": {:.3}\n}}\n",
            self.workload,
            self.edges,
            self.rows,
            self.iterations,
            self.tuples,
            self.fused_secs,
            self.fused_tuples_per_sec(),
            self.fused_peak_bytes,
            self.unfused_secs,
            self.unfused_tuples_per_sec(),
            self.unfused_peak_bytes,
            self.rt_rows_skipped_at_source,
            self.rt_bytes_never_materialized,
            self.unfused_rt_merge_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_bytes,
            self.speedup(),
        )
    }

    /// Write the JSON record to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A fig10-style TC workload with both acceptance properties: a dense
/// G(n,p) cluster gives the UNION-ALL intermediate a large duplication
/// factor (where the fused pipeline wins), and a disjoint path of
/// `path_len` edges forces `path_len` fixpoint iterations.
pub fn pipeline_workload(
    cluster_n: u32,
    cluster_p: f64,
    path_len: u32,
    seed: u64,
) -> Vec<(Value, Value)> {
    let mut edges: Vec<(Value, Value)> = recstep_graphgen::gnp::gnp(cluster_n, cluster_p, seed)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect();
    let base = cluster_n as Value;
    for i in 0..path_len as Value {
        edges.push((base + i, base + i + 1));
    }
    edges
}

/// Run transitive closure fused and unfused over `edges`, best-of-`repeats`
/// wall time per mode (interleaved to even out machine noise), and assert
/// both modes compute the identical relation.
pub fn run_pipeline_bench(
    workload: &str,
    edges: &[(Value, Value)],
    threads: usize,
    repeats: usize,
) -> PipelineBench {
    // PBME off: the point is the tuple pipeline, not the bit-matrix path.
    let cfg = |fused: bool| {
        Config::default()
            .threads(threads)
            .pbme(recstep::PbmeMode::Off)
            .fused_pipeline(fused)
    };
    let run_once = |fused: bool| {
        let prog = prepared(cfg(fused), recstep::programs::TC);
        let mut db = db_with_edges(&[("arc", edges)]);
        let t0 = Instant::now();
        let stats = prog.run(&mut db).expect("TC completes");
        (t0.elapsed().as_secs_f64(), stats, db.row_count("tc"))
    };
    let mut best: [Option<(f64, recstep::EvalStats, usize)>; 2] = [None, None];
    for _ in 0..repeats.max(1) {
        for (slot, fused) in [(0, true), (1, false)] {
            let (secs, stats, rows) = run_once(fused);
            let better = best[slot].as_ref().is_none_or(|(b, _, _)| secs < *b);
            if better {
                best[slot] = Some((secs, stats, rows));
            }
        }
    }
    let (fused_secs, fused_stats, fused_rows) = best[0].take().expect("ran");
    let (unfused_secs, unfused_stats, unfused_rows) = best[1].take().expect("ran");
    assert_eq!(
        fused_rows, unfused_rows,
        "fused and unfused runs must agree on the closure"
    );
    assert_eq!(
        fused_stats.tuples_considered, unfused_stats.tuples_considered,
        "both modes evaluate the same candidate stream"
    );
    assert_eq!(fused_stats.rt_merge_bytes, 0, "fused run must not merge Rt");
    // Cross-run cache measurement (untimed): two fused runs over *one*
    // database — the second run's shared-cache hits witness the cross-run
    // index reuse the database-owned cache exists for.
    let (cache_first, cache_second) = {
        let prog = prepared(cfg(true), recstep::programs::TC);
        let mut db = db_with_edges(&[("arc", edges)]);
        let first = prog.run(&mut db).expect("TC completes");
        let second = prog.run(&mut db).expect("TC completes");
        (first, second)
    };
    PipelineBench {
        workload: workload.to_string(),
        edges: edges.len(),
        rows: fused_rows,
        iterations: fused_stats.iterations,
        tuples: fused_stats.tuples_considered,
        fused_secs,
        unfused_secs,
        fused_peak_bytes: fused_stats.peak_bytes,
        unfused_peak_bytes: unfused_stats.peak_bytes,
        rt_rows_skipped_at_source: fused_stats.rt_rows_skipped_at_source,
        rt_bytes_never_materialized: fused_stats.rt_bytes_never_materialized,
        unfused_rt_merge_bytes: unfused_stats.rt_merge_bytes,
        cache_misses: cache_first.index.cache_misses,
        cache_hits: cache_second.index.cache_hits,
        cache_evictions: cache_first.index.cache_evictions + cache_second.index.cache_evictions,
        cache_bytes: cache_second.index.cache_bytes,
        agg: None,
    }
}

/// One scratch-rerun vs incremental-refresh measurement over a standing
/// [`MaterializedView`] (a sub-block of the `"ivm"` record in
/// `BENCH_pipeline.json`).
#[derive(Clone, Debug)]
pub struct IvmBench {
    /// Workload label.
    pub workload: String,
    /// Base edges before the delta applies.
    pub edges: usize,
    /// Rows inserted into (or deleted from) the base relation.
    pub delta_rows: usize,
    /// Output rows after the delta — identical across modes by assertion.
    pub rows: usize,
    /// Best wall seconds of a from-scratch shared run over the
    /// post-delta database (what the service paid per version bump
    /// before standing views).
    pub scratch_secs: f64,
    /// Best wall seconds of `MaterializedView::refresh` absorbing the
    /// same delta.
    pub refresh_secs: f64,
}

impl IvmBench {
    /// Scratch-rerun over incremental-refresh (wall-clock ratio).
    pub fn speedup(&self) -> f64 {
        self.scratch_secs / self.refresh_secs.max(1e-9)
    }

    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"edges\": {}, \"delta_rows\": {}, \"rows\": {}, \
             \"scratch_secs\": {:.6}, \"refresh_secs\": {:.6}, \"speedup\": {:.3}}}",
            self.workload,
            self.edges,
            self.delta_rows,
            self.rows,
            self.scratch_secs,
            self.refresh_secs,
            self.speedup(),
        )
    }
}

/// Measure incremental view maintenance against the scratch rerun it
/// replaces: stand a view over `base`, commit `delta` (inserts, or
/// whole-tuple deletes with `delete = true`), and time
/// [`MaterializedView::refresh`] vs a shared run over a fresh database
/// already holding the post-delta facts. Best-of-`repeats` per mode,
/// interleaved; asserts the maintained result matches scratch every
/// repeat.
#[allow(clippy::too_many_arguments)]
pub fn run_ivm_bench(
    workload: &str,
    src: &str,
    edge_rel: &str,
    out_rel: &str,
    base: &[(Value, Value)],
    delta: &[(Value, Value)],
    delete: bool,
    threads: usize,
    repeats: usize,
) -> IvmBench {
    // PBME off: maintenance re-enters the tuple pipeline, so the scratch
    // side must run the same engine for an honest wall-clock ratio.
    let cfg = Config::default()
        .threads(threads)
        .pbme(recstep::PbmeMode::Off);
    let prog = Arc::new(recstep_engine(cfg).prepare(src).expect("program compiles"));
    assert!(
        MaterializedView::eligible(&prog),
        "IVM bench program must be maintainable"
    );
    let mut with_delta: Vec<(Value, Value)> = base.to_vec();
    with_delta.extend_from_slice(delta);
    // The view starts pre-delta and the commit moves it to post-delta.
    let (initial, finale) = if delete {
        (with_delta.as_slice(), base)
    } else {
        (base, with_delta.as_slice())
    };
    let rows: Vec<Vec<Value>> = delta.iter().map(|&(a, b)| vec![a, b]).collect();
    let commit: Vec<(String, Vec<Vec<Value>>)> = vec![(edge_rel.to_string(), rows)];
    let empty: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
    let (ins, del) = if delete {
        (&empty, &commit)
    } else {
        (&commit, &empty)
    };

    let mut best_refresh = f64::MAX;
    let mut best_scratch = f64::MAX;
    let mut rows_witness = 0usize;
    for _ in 0..repeats.max(1) {
        let mut db = db_with_edges(&[(edge_rel, initial)]);
        let mut view =
            MaterializedView::create(Arc::clone(&prog), &db).expect("view creation completes");
        assert!(view.incremental(), "bench view must maintain incrementally");
        let mut tx = db.transaction();
        for (name, rows) in ins {
            tx.load_rows(name, 2, rows.iter().map(Vec::as_slice))
                .expect("stage delta inserts");
        }
        for (name, rows) in del {
            tx.delete_rows(name, 2, rows.iter().map(Vec::as_slice))
                .expect("stage delta deletes");
        }
        tx.commit().expect("commit delta");
        let t0 = Instant::now();
        view.refresh(&db, ins, del).expect("refresh completes");
        best_refresh = best_refresh.min(t0.elapsed().as_secs_f64());
        let maintained = view.output().row_count(out_rel);

        let scratch_db = db_with_edges(&[(edge_rel, finale)]);
        let t0 = Instant::now();
        let out = prog.run_shared(&scratch_db).expect("scratch run completes");
        best_scratch = best_scratch.min(t0.elapsed().as_secs_f64());
        let scratch = out.row_count(out_rel);
        assert_eq!(
            maintained, scratch,
            "maintained '{out_rel}' diverged from scratch on {workload}"
        );
        rows_witness = scratch;
    }
    IvmBench {
        workload: workload.to_string(),
        edges: initial.len(),
        delta_rows: delta.len(),
        rows: rows_witness,
        scratch_secs: best_scratch,
        refresh_secs: best_refresh,
    }
}

/// One generic-join-vs-binary-chain measurement of triangle enumeration:
/// [`recstep::programs::TRIANGLE`] with the worst-case optimal join on
/// vs. `--no-wcoj`. The same compiled program carries both plans — the
/// flag picks at run time — so the two arms differ only in the operator
/// walking the cyclic body.
#[derive(Clone, Debug)]
pub struct WcojBench {
    /// Workload label.
    pub workload: String,
    /// Input edges.
    pub edges: usize,
    /// Output (`triangle`) rows — identical across modes by assertion.
    pub triangles: usize,
    /// Rows the WCOJ leaf enumeration emitted into its sink, pre-dedup
    /// (one per distinct variable binding; the binary chain's 2-path
    /// intermediate is what this number refuses to be).
    pub wcoj_rows_emitted: usize,
    /// Best wall seconds with the generic join on.
    pub wcoj_secs: f64,
    /// Best wall seconds with `--no-wcoj` (binary join chain).
    pub binary_secs: f64,
}

impl WcojBench {
    /// Generic-join speedup over the binary chain (wall-clock ratio).
    pub fn speedup(&self) -> f64 {
        self.binary_secs / self.wcoj_secs.max(1e-9)
    }

    /// Render as the single-line JSON block [`splice_json_block`] takes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"edges\": {}, \"triangles\": {}, \
             \"wcoj_rows_emitted\": {}, \"wcoj_secs\": {:.6}, \
             \"binary_secs\": {:.6}, \"speedup\": {:.3}}}",
            self.workload,
            self.edges,
            self.triangles,
            self.wcoj_rows_emitted,
            self.wcoj_secs,
            self.binary_secs,
            self.speedup(),
        )
    }
}

/// A G(n,p) workload for the cyclic-body benchmarks: moderate density,
/// so the binary chain's 2-path intermediate dwarfs both the input and
/// the triangle output (the regime the AGM bound says a worst-case
/// optimal join must not touch).
pub fn triangle_workload(n: u32, p: f64, seed: u64) -> Vec<(Value, Value)> {
    recstep_graphgen::gnp::gnp(n, p, seed)
        .into_iter()
        .map(|(a, b)| (a as Value, b as Value))
        .collect()
}

/// The skewed triangle workload the wcoj bench gate measures: a G(n,p)
/// background (which contributes the actual triangles) plus one hub
/// vertex with `k` in-spokes from the background vertices and `k`
/// out-spokes to `k` fresh vertices. Every in×out spoke pair is a 2-path
/// through the hub and none closes into a triangle, so a binary triangle
/// plan materializes (and then discards) a `k²`-row intermediate the
/// generic join never touches — the canonical degree-skew regime where
/// worst-case optimal joins beat any binary plan asymptotically.
pub fn skewed_triangle_workload(n: u32, p: f64, k: u32, seed: u64) -> Vec<(Value, Value)> {
    let mut edges = triangle_workload(n, p, seed);
    let hub = n as Value;
    // In-spokes stay distinct (capped at the background's vertex count):
    // duplicate input rows would inflate the binary chain's intermediate
    // beyond what the graph shape justifies.
    for i in 0..k.min(n) {
        edges.push((i as Value, hub));
    }
    for i in 0..k {
        edges.push((hub, (n + 1 + i) as Value));
    }
    edges
}

/// Run triangle enumeration with the generic join on and off,
/// best-of-`repeats` wall time per mode (interleaved), asserting both
/// modes compute the identical relation and that the flag really moved
/// evaluation between the generic join and the binary chain.
pub fn run_wcoj_bench(
    workload: &str,
    edges: &[(Value, Value)],
    threads: usize,
    repeats: usize,
) -> WcojBench {
    let cfg = |wcoj: bool| {
        Config::default()
            .threads(threads)
            .pbme(recstep::PbmeMode::Off)
            .wcoj(wcoj)
    };
    let run_once = |wcoj: bool| {
        let prog = prepared(cfg(wcoj), recstep::programs::TRIANGLE);
        let mut db = db_with_edges(&[("arc", edges)]);
        let t0 = Instant::now();
        let stats = prog.run(&mut db).expect("TRIANGLE completes");
        (t0.elapsed().as_secs_f64(), stats, db.row_count("triangle"))
    };
    let mut best: [Option<(f64, recstep::EvalStats, usize)>; 2] = [None, None];
    for _ in 0..repeats.max(1) {
        for (slot, on) in [(0, true), (1, false)] {
            let (secs, stats, rows) = run_once(on);
            if best[slot].as_ref().is_none_or(|(b, _, _)| secs < *b) {
                best[slot] = Some((secs, stats, rows));
            }
        }
    }
    let (wcoj_secs, wcoj_stats, wcoj_rows) = best[0].take().expect("ran");
    let (binary_secs, binary_stats, binary_rows) = best[1].take().expect("ran");
    assert_eq!(
        wcoj_rows, binary_rows,
        "generic join and binary chain must agree on the triangles"
    );
    assert!(
        wcoj_stats.wcoj_runs > 0,
        "the cyclic body must dispatch to the generic join"
    );
    assert_eq!(
        binary_stats.wcoj_runs, 0,
        "--no-wcoj must keep the binary join chain"
    );
    WcojBench {
        workload: workload.to_string(),
        edges: edges.len(),
        triangles: wcoj_rows,
        wcoj_rows_emitted: wcoj_stats.wcoj_rows_emitted,
        wcoj_secs,
        binary_secs,
    }
}

/// The `"speedup"` floor a gated bench block must clear before
/// [`splice_json_block`] records it — the same thresholds CI asserts
/// over `BENCH_pipeline.json` (see `docs/benchmarks.md`), enforced at
/// the recorder so a regressed measurement cannot land silently.
fn speedup_gate(key: &str) -> Option<f64> {
    match key {
        "agg" => Some(1.1),
        "wcoj" => Some(2.0),
        _ => None,
    }
}

/// Splice a `"key": <block>` member into the top level of the JSON
/// document at `path` (a minimal document is created if absent, so
/// recorders can run in any order), replacing any stale single-line block
/// with the same key from a previous run. The block must be rendered on
/// one line.
///
/// Gated keys (`"agg"`, `"wcoj"`) are refused — panicking instead of
/// writing — when the block's `"speedup"` member falls below the CI
/// gate; `RECSTEP_SKIP_SPEEDUP_GATE=1` records it anyway (for heavily
/// loaded machines — CI leaves the gate enforced).
pub fn splice_json_block(path: &std::path::Path, key: &str, block: &str) {
    if std::env::var_os("RECSTEP_SKIP_SPEEDUP_GATE").is_none() {
        if let Some(gate) = speedup_gate(key) {
            let needle = "\"speedup\": ";
            let sp = block
                .rfind(needle)
                .map(|at| &block[at + needle.len()..])
                .and_then(|rest| {
                    let end = rest
                        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                        .unwrap_or(rest.len());
                    rest[..end].parse::<f64>().ok()
                })
                .unwrap_or_else(|| panic!("gated block \"{key}\" must carry \"speedup\""));
            assert!(
                sp >= gate,
                "refusing to record \"{key}\" speedup {sp:.3} below its {gate:.1}x gate \
                 (set RECSTEP_SKIP_SPEEDUP_GATE=1 to record anyway)"
            );
        }
    }
    let mut doc = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".into());
    let needle = format!("\n  \"{key}\": ");
    if let Some(at) = doc.find(&needle) {
        if let Some(len) = doc[at + 1..].find('\n') {
            let line_end = at + 1 + len;
            // A middle member carries its own trailing comma — dropping
            // the line alone keeps the document balanced; only for the
            // last member must the *preceding* comma go with it.
            let start = if !doc[..line_end].ends_with(',') && doc[..at].ends_with(',') {
                at - 1
            } else {
                at
            };
            doc.replace_range(start..line_end, "");
        }
    }
    let at = doc.rfind("\n}").expect("JSON document closes");
    let lead = if doc[..at].trim_end().ends_with('{') {
        "\n  "
    } else {
        ",\n  "
    };
    doc.insert_str(at, &format!("{lead}\"{key}\": {block}"));
    std::fs::write(path, &doc).expect("write bench record");
}

/// Per-run memory budget (scaled stand-in for the paper's 160 GB server).
pub fn budget_bytes() -> usize {
    std::env::var("RECSTEP_BUDGET_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3072)
        * (1 << 20)
}

/// Tuple budget equivalent for the set-based baselines (≈ 48 B per binary
/// tuple including index overhead).
pub fn budget_tuples() -> usize {
    budget_bytes() / 48
}

/// Print a figure/table header.
pub fn header(id: &str, caption: &str) {
    println!();
    println!("## {id}: {caption}");
    println!(
        "   (scale divisor {}, budget {} MiB)",
        scale(),
        budget_bytes() >> 20
    );
}

/// Print one aligned data row.
pub fn row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("  {}", line.join(" "));
}

/// Convenience: stringify column headers.
pub fn cells(strs: &[&str]) -> Vec<String> {
    strs.iter().map(|s| s.to_string()).collect()
}

/// Sample a pool's utilization over a run executed on another thread.
/// Returns `(elapsed, utilization)` pairs plus the run's wall time.
pub fn sample_utilization<F>(
    pool: std::sync::Arc<ThreadPool>,
    every: Duration,
    run: F,
) -> (Vec<(Duration, f64)>, Duration)
where
    F: FnOnce() + Send + 'static,
{
    let threads = pool.threads();
    let handle = std::thread::spawn(run);
    let t0 = Instant::now();
    let mut series = Vec::new();
    let mut last_busy = pool.busy_ns_total();
    let mut last_t = t0;
    while !handle.is_finished() {
        std::thread::sleep(every);
        let now = Instant::now();
        let busy = pool.busy_ns_total();
        let wall = now.duration_since(last_t).as_nanos() as f64 * threads as f64;
        let util = ((busy.saturating_sub(last_busy)) as f64 / wall.max(1.0)).min(1.0);
        series.push((now.duration_since(t0), util));
        last_busy = busy;
        last_t = now;
    }
    handle.join().expect("bench run panicked");
    (series, t0.elapsed())
}

/// Downsample a series to at most `n` points for printing.
pub fn downsample<T: Clone>(series: &[T], n: usize) -> Vec<T> {
    if series.len() <= n || n == 0 {
        return series.to_vec();
    }
    let step = series.len() as f64 / n as f64;
    (0..n)
        .map(|i| series[(i as f64 * step) as usize].clone())
        .collect()
}

/// Deterministic source-vertex choice for REACH/SSSP (the paper averages
/// over ten random sources; we fix them for reproducibility).
pub fn source_vertices(n: u32, k: usize) -> Vec<Value> {
    (0..k as u32)
        .map(|i| ((i.wrapping_mul(2654435761)) % n.max(1)) as Value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_cells() {
        assert_eq!(Outcome::Oom.cell(), "OOM");
        assert_eq!(Outcome::Unsupported.cell(), "-");
        let ok = Outcome::Ok {
            time: Duration::from_millis(1500),
            rows: 3,
        };
        assert_eq!(ok.cell(), "1.500s");
        assert!(ok.secs().unwrap() > 1.4);
        assert_eq!(ok.rows(), Some(3));
    }

    #[test]
    fn measure_maps_oom() {
        let out = measure(|| Err(recstep::Error::exec("out of memory: 1 > 0")));
        assert!(matches!(out, Outcome::Oom));
        let ok = measure(|| Ok(7));
        assert!(matches!(ok, Outcome::Ok { rows: 7, .. }));
    }

    #[test]
    fn downsample_caps_length() {
        let s: Vec<u32> = (0..1000).collect();
        let d = downsample(&s, 20);
        assert_eq!(d.len(), 20);
        assert_eq!(d[0], 0);
        let short = downsample(&s[..5], 20);
        assert_eq!(short.len(), 5);
    }

    #[test]
    fn sources_are_in_range() {
        let s = source_vertices(1000, 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| (0..1000).contains(&v)));
    }
}
