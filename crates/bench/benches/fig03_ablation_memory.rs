//! Figure 3: memory effect of each optimization (CSPA on the httpd
//! stand-in) — peak engine bytes plus a live-bytes time series from the
//! counting allocator.

use recstep::{Config, DedupImpl, OofMode, PbmeMode, SetDiffStrategy};
use recstep_bench::*;
use recstep_common::mem::{self, CountingAlloc, MemSampler};
use recstep_graphgen::program_analysis::{cspa, paper_system_programs};
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let spec = &paper_system_programs(scale())[2]; // httpd-sim
    let input = cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
    header(
        "Figure 3",
        &format!("Memory effects of optimizations: CSPA on {}", spec.name),
    );
    let base = || Config::default().pbme(PbmeMode::Off);
    let variants: Vec<(&str, Config)> = vec![
        ("RecStep", base()),
        ("UIE-off", base().uie(false)),
        ("DSD-off", base().setdiff(SetDiffStrategy::AlwaysOpsd)),
        ("OOF-FA", base().oof(OofMode::Full)),
        ("EOST-off", base().eost(false)),
        ("FASTDEDUP-off", base().dedup(DedupImpl::Generic)),
        ("OOF-NA", base().oof(OofMode::None)),
        ("RecStep-NO-OP", Config::no_op()),
    ];
    row(&cells(&["variant", "peak alloc", "peak engine", "time"]));
    for (name, cfg) in variants {
        let prog = prepared(cfg.threads(max_threads()), recstep::programs::CSPA);
        let mut db = db_with_edges(&[
            ("assign", &input.assign),
            ("dereference", &input.dereference),
        ]);
        mem::reset_peak();
        let sampler = MemSampler::start(Duration::from_millis(5));
        let out = measure(|| prog.run(&mut db).map(|s| s.peak_bytes));
        let series = sampler.finish();
        let peak_alloc = mem::peak_bytes();
        row(&[
            name.to_string(),
            mem::fmt_bytes(peak_alloc),
            out.rows().map(mem::fmt_bytes).unwrap_or_default(),
            out.cell(),
        ]);
        if name == "RecStep" || name == "RecStep-NO-OP" {
            let pts = downsample(&series, 8);
            let line: Vec<String> = pts
                .iter()
                .map(|s| {
                    format!(
                        "{:.2}s:{}",
                        s.elapsed.as_secs_f64(),
                        mem::fmt_bytes(s.live_bytes)
                    )
                })
                .collect();
            println!("    series[{name}]: {}", line.join(" "));
        }
    }
}
