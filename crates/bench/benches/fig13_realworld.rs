//! Figure 13: REACH / CC / SSSP on the real-world graph stand-ins.

use recstep::{Config, PbmeMode};
use recstep_baselines::setbased::SetEngine;
use recstep_bench::*;
use recstep_graphgen::{as_values, realworld, with_weights};

fn main() {
    let s = scale();
    header(
        "Figure 13",
        "REACH / CC / SSSP on real-world graph stand-ins",
    );
    // The crawls are far past laptop RAM; scale them further than Gn-p.
    let specs = realworld::paper_realworld_specs(s.saturating_mul(60).max(60));
    for workload in ["REACH", "CC", "SSSP"] {
        println!("  ({workload})");
        row(&cells(&["graph", "RecStep", "BigDatalog~", "Souffle~"]));
        for spec in &specs {
            let raw = spec.generate(7);
            let src = source_vertices(spec.n, 1)[0];
            let run_one = |cfg: Config| -> Outcome {
                match workload {
                    "REACH" => {
                        let prog =
                            prepared(cfg.clone().threads(max_threads()), recstep::programs::REACH);
                        let mut db = db_with_edges(&[("arc", &as_values(&raw))]);
                        db.load_relation("id", 1, &[vec![src]]).unwrap();
                        measure(|| prog.run(&mut db).map(|_| db.row_count("reach")))
                    }
                    "CC" => run_recstep(
                        cfg.clone().threads(max_threads()),
                        recstep::programs::CC,
                        &[("arc", &as_values(&raw))],
                        "cc3",
                    ),
                    _ => {
                        let prog =
                            prepared(cfg.clone().threads(max_threads()), recstep::programs::SSSP);
                        let mut db = recstep::Database::new().unwrap();
                        db.load_weighted_edges("arc", &with_weights(&raw, 100, 9))
                            .unwrap();
                        db.load_relation("id", 1, &[vec![src]]).unwrap();
                        measure(|| prog.run(&mut db).map(|_| db.row_count("sssp")))
                    }
                }
            };
            let rs = run_one(Config::default().pbme(PbmeMode::Off));
            let bigd = run_one(Config::no_op());
            let souffle = if workload == "REACH" {
                let mut e = SetEngine::new(true);
                e.tuple_budget = Some(budget_tuples());
                e.load_edges("arc", &as_values(&raw));
                e.load("id", [vec![src]]);
                measure(|| {
                    e.run_source(recstep::programs::REACH)
                        .map(|_| e.row_count("reach"))
                })
            } else {
                Outcome::Unsupported
            };
            row(&[
                spec.name.to_string(),
                rs.cell(),
                bigd.cell(),
                souffle.cell(),
            ]);
        }
    }
}
