//! Figure 8: speedup when scaling up cores — CSPA on the httpd stand-in
//! and CC on the livejournal stand-in, threads 1..max.

use recstep::{Config, PbmeMode};
use recstep_bench::*;
use recstep_graphgen::{as_values, program_analysis, realworld};

fn main() {
    let s = scale();
    header("Figure 8", "Scaling-up on cores (speedup over 1 thread)");
    let mut threads = vec![1usize, 2, 4, 8, 16, 32];
    threads.retain(|&t| t <= max_threads());

    // (a) CSPA on httpd-sim.
    let spec = &program_analysis::paper_system_programs(s)[2];
    let input = program_analysis::cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
    println!("  (a) CSPA on {}", spec.name);
    row(&cells(&["threads", "time", "speedup"]));
    let mut base = None;
    for &t in &threads {
        let out = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(t),
            recstep::programs::CSPA,
            &[
                ("assign", &input.assign),
                ("dereference", &input.dereference),
            ],
            "valueFlow",
        );
        let secs = out.secs().unwrap();
        let b = *base.get_or_insert(secs);
        row(&[t.to_string(), out.cell(), format!("{:.2}x", b / secs)]);
    }

    // (b) CC on livejournal-sim.
    let lj = realworld::paper_realworld_specs(s * 4)[0];
    let edges = as_values(&lj.generate(11));
    println!("  (b) CC on {} (n={}, m={})", lj.name, lj.n, lj.m);
    row(&cells(&["threads", "time", "speedup"]));
    let mut base = None;
    for &t in &threads {
        let out = run_recstep(
            Config::default().threads(t),
            recstep::programs::CC,
            &[("arc", &edges)],
            "cc3",
        );
        let secs = out.secs().unwrap();
        let b = *base.get_or_insert(secs);
        row(&[t.to_string(), out.cell(), format!("{:.2}x", b / secs)]);
    }
}
