//! Table 1: qualitative comparison between the engines in this repository.

use recstep::capabilities::table1;
use recstep_bench::{cells, header, row};

fn main() {
    header("Table 1", "Summary of Comparison Between Different Systems");
    row(&cells(&[
        "system",
        "scale-up",
        "scale-out",
        "memory",
        "cpu-util",
        "cpu-eff",
        "tuning",
        "mutual-rec",
        "agg",
        "rec-agg",
    ]));
    for c in table1() {
        row(&[
            c.name.split(' ').next().unwrap_or(c.name).to_string(),
            yesno(c.scale_up),
            yesno(c.scale_out),
            c.memory_consumption.to_string(),
            c.cpu_utilization.to_string(),
            c.cpu_efficiency.to_string(),
            c.tuning_required
                .split(' ')
                .next()
                .unwrap_or("")
                .to_string(),
            yesno(c.mutual_recursion),
            yesno(c.non_recursive_aggregation),
            yesno(c.recursive_aggregation),
        ]);
    }
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}
