//! Figure 16: CPU utilization over time on program analyses — Andersen's
//! dataset 5, CSPA on the linux and httpd stand-ins.

use recstep::{Config, PbmeMode};
use recstep_bench::*;
use recstep_graphgen::program_analysis as pa;
use std::time::Duration;

fn main() {
    let s = scale();
    header("Figure 16", "CPU utilization on program analyses");

    // (a) Andersen's analysis, dataset 5.
    let (_, vars) = pa::paper_andersen_specs(s).swap_remove(4);
    let input = pa::andersen(vars, 104);
    let engine = recstep_engine(Config::default().pbme(PbmeMode::Off).threads(max_threads()));
    let prog = engine.prepare(recstep::programs::ANDERSEN).unwrap();
    let mut db = db_with_edges(&[
        ("addressOf", &input.address_of),
        ("assign", &input.assign),
        ("load", &input.load),
        ("store", &input.store),
    ]);
    let pool = engine.pool_handle();
    let (series, wall) = sample_utilization(pool, Duration::from_millis(5), move || {
        if let Err(err) = prog.run(&mut db) {
            eprintln!("  AA run: {err}");
        }
    });
    print_series("AA on dataset 5", &series, wall);

    // (b)+(c) CSPA on linux-sim and httpd-sim.
    for idx in [0usize, 2] {
        let spec = &pa::paper_system_programs(s)[idx];
        let input = pa::cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
        let engine = recstep_engine(Config::default().pbme(PbmeMode::Off).threads(max_threads()));
        let prog = engine.prepare(recstep::programs::CSPA).unwrap();
        let mut db = db_with_edges(&[
            ("assign", &input.assign),
            ("dereference", &input.dereference),
        ]);
        let pool = engine.pool_handle();
        let (series, wall) = sample_utilization(pool, Duration::from_millis(5), move || {
            if let Err(err) = prog.run(&mut db) {
                eprintln!("  CSPA run: {err}");
            }
        });
        print_series(&format!("CSPA on {}", spec.name), &series, wall);
    }
}

fn print_series(name: &str, series: &[(Duration, f64)], wall: Duration) {
    let mean = if series.is_empty() {
        0.0
    } else {
        series.iter().map(|(_, u)| u).sum::<f64>() / series.len() as f64
    };
    println!(
        "  {name}: wall {:.3}s, mean utilization {:.0}%",
        wall.as_secs_f64(),
        mean * 100.0
    );
    let pts = downsample(series, 10);
    let line: Vec<String> = pts
        .iter()
        .map(|(t, u)| format!("{:.2}s:{:.0}%", t.as_secs_f64(), u * 100.0))
        .collect();
    println!("    series: {}", line.join(" "));
}
