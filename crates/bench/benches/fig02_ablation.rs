//! Figure 2: effect of each optimization — CSPA on the httpd stand-in,
//! runtime as a percentage of RecStep-NO-OP (all optimizations off).
//! Also prints Figure 4's UIE vs. IIE SQL for the Andersen program.

use recstep::{compile_source, Config, DedupImpl, OofMode, PbmeMode, SetDiffStrategy};
use recstep_bench::*;
use recstep_graphgen::program_analysis::{cspa, paper_system_programs};

fn run_cspa(cfg: Config, assign: &[(i64, i64)], deref: &[(i64, i64)]) -> Outcome {
    run_recstep(
        cfg.threads(max_threads()),
        recstep::programs::CSPA,
        &[("assign", assign), ("dereference", deref)],
        "valueFlow",
    )
}

fn main() {
    let spec = &paper_system_programs(scale())[2]; // httpd-sim
    let input = cspa(spec.cspa_clusters, spec.cspa_cluster_size, 42);
    header(
        "Figure 2",
        &format!(
            "Optimizations ablation: CSPA on {} ({} assigns, {} derefs)",
            spec.name,
            input.assign.len(),
            input.dereference.len()
        ),
    );
    // PBME off everywhere: CSPA never matches the bit-matrix pattern, but
    // keep the config uniform.
    let base = || Config::default().pbme(PbmeMode::Off);
    let variants: Vec<(&str, Config)> = vec![
        ("RecStep", base()),
        ("FUSED-off", base().fused_pipeline(false)),
        ("UIE-off", base().uie(false)),
        ("DSD-off", base().setdiff(SetDiffStrategy::AlwaysOpsd)),
        ("OOF-FA", base().oof(OofMode::Full)),
        ("EOST-off", base().eost(false)),
        ("FASTDEDUP-off", base().dedup(DedupImpl::Generic)),
        ("INDEXREUSE-off", base().index_reuse(false)),
        ("OOF-NA", base().oof(OofMode::None)),
        ("RecStep-NO-OP", Config::no_op()),
    ];
    let mut results = Vec::new();
    for (name, cfg) in variants {
        let out = run_cspa(cfg, &input.assign, &input.dereference);
        results.push((name, out));
    }
    let noop_secs = results.last().unwrap().1.secs().expect("NO-OP completes");
    row(&cells(&["variant", "time", "% of NO-OP", "vf rows"]));
    for (name, out) in &results {
        let pct = out.secs().map(|s| format!("{:.0}%", 100.0 * s / noop_secs));
        row(&[
            name.to_string(),
            out.cell(),
            pct.unwrap_or_else(|| "-".into()),
            out.rows().map(|r| r.to_string()).unwrap_or_default(),
        ]);
    }
    // All variants must agree on the result.
    let witness: Vec<usize> = results.iter().filter_map(|(_, o)| o.rows()).collect();
    assert!(
        witness.windows(2).all(|w| w[0] == w[1]),
        "variants disagree: {witness:?}"
    );

    // Rebuild vs. incremental and the streaming pipeline's drop-at-source
    // effect, plotted directly from the engine counters.
    println!("\n## Pipeline + index counters (same CSPA input)");
    row(&cells(&[
        "variant",
        "full builds",
        "appends",
        "join built",
        "join reused",
        "rt skipped",
        "rt KiB saved",
        "rt KiB merged",
        "pipeline ms",
        "index KiB",
    ]));
    for (name, cfg) in [
        ("fused", base()),
        ("fused off", base().fused_pipeline(false)),
        ("reuse off", base().index_reuse(false)),
    ] {
        let prog = prepared(cfg.threads(max_threads()), recstep::programs::CSPA);
        let mut db = db_with_edges(&[
            ("assign", input.assign.as_slice()),
            ("dereference", input.dereference.as_slice()),
        ]);
        let stats = prog.run(&mut db).expect("CSPA completes");
        row(&[
            name.to_string(),
            stats.index.full_builds.to_string(),
            stats.index.full_appends.to_string(),
            stats.index.join_builds.to_string(),
            stats.index.join_reuses.to_string(),
            stats.rt_rows_skipped_at_source.to_string(),
            (stats.rt_bytes_never_materialized >> 10).to_string(),
            (stats.rt_merge_bytes >> 10).to_string(),
            format!("{:.1}", stats.phase.pipeline.as_secs_f64() * 1e3),
            (stats.index.bytes_peak >> 10).to_string(),
        ]);
    }

    println!("\n## Figure 4: UIE vs. individual-IDB SQL (Andersen analysis)");
    let prog = compile_source(recstep::programs::ANDERSEN).unwrap();
    let pt = prog
        .strata
        .iter()
        .find(|s| s.recursive)
        .unwrap()
        .idbs
        .iter()
        .find(|i| i.rel == "pointsTo")
        .unwrap();
    println!(
        "--- Unified IDB Evaluation ---\n{}",
        recstep::sqlgen::render_uie(pt)
    );
    println!(
        "--- Individual IDB Evaluation ---\n{}",
        recstep::sqlgen::render_iie(pt)
    );
}
