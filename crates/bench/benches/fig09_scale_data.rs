//! Figure 9: scaling-up on data size — CC on the RMAT family and
//! Andersen's analysis on datasets 1–7.

use recstep::{Config, PbmeMode};
use recstep_bench::*;
use recstep_graphgen::{as_values, program_analysis, rmat};

fn main() {
    let s = scale();
    header("Figure 9", "Scaling-up on data");

    println!("  (a) CC on RMAT graphs");
    row(&cells(&["graph", "n", "m", "time", "cc3 rows"]));
    // First five of the paper's 8 sizes (the tail grows past laptop scale).
    for spec in rmat::paper_rmat_specs(s * 8).into_iter().take(5) {
        let edges = as_values(&rmat::rmat(spec.n, spec.m, 5));
        let out = run_recstep(
            Config::default().threads(max_threads()),
            recstep::programs::CC,
            &[("arc", &edges)],
            "cc3",
        );
        row(&[
            spec.name.to_string(),
            spec.n.to_string(),
            spec.m.to_string(),
            out.cell(),
            out.rows().map(|r| r.to_string()).unwrap_or_default(),
        ]);
    }

    println!("  (b) Andersen's analysis on synthetic datasets 1-7");
    row(&cells(&["dataset", "vars", "input", "time", "pointsTo"]));
    for (i, (name, vars)) in program_analysis::paper_andersen_specs(s)
        .into_iter()
        .enumerate()
    {
        let input = program_analysis::andersen(vars, 100 + i as u64);
        let out = run_recstep(
            Config::default().pbme(PbmeMode::Off).threads(max_threads()),
            recstep::programs::ANDERSEN,
            &[
                ("addressOf", &input.address_of),
                ("assign", &input.assign),
                ("load", &input.load),
                ("store", &input.store),
            ],
            "pointsTo",
        );
        row(&[
            name,
            vars.to_string(),
            input.len().to_string(),
            out.cell(),
            out.rows().map(|r| r.to_string()).unwrap_or_default(),
        ]);
    }
}
